"""Packet-simulator edge cases: RTO backoff sequencing, fast-retransmit
racing a link failure, and retransmission accounting when the *final*
segment of a transfer is dropped."""

import pytest

from repro.common.units import MBPS
from repro.packetsim import PacketSimulation, TcpParams
from repro.packetsim.tcp import TcpReceiver, TcpSender
from repro.simulator.engine import EventEngine
from repro.topology import FatTree


def topology():
    return FatTree(p=4, link_bandwidth_bps=100 * MBPS)


# ---------------------------------------------------------------------------
# Exponential RTO backoff
# ---------------------------------------------------------------------------

class TestRtoBackoff:
    def test_consecutive_timeouts_double_the_rto(self):
        """A black-holed sender (every segment vanishes) must retransmit
        on an exponentially growing schedule: RTO, 2*RTO, 4*RTO, ..."""
        engine = EventEngine()
        params = TcpParams(min_rto_s=0.1)
        sender = TcpSender(engine, 10, lambda seq: None, params)
        fire_times = []
        original = sender._on_timeout

        def recording():
            fire_times.append(engine.now)
            original()

        sender._on_timeout = recording
        sender.start()
        engine.run_until(0.1 * (1 + 2 + 4 + 8) + 0.05)  # room for 4 timeouts
        assert len(fire_times) == 4
        gaps = [b - a for a, b in zip(fire_times, fire_times[1:])]
        # First timeout after base RTO; each later gap doubles.
        assert fire_times[0] == pytest.approx(0.1)
        assert gaps == pytest.approx([0.2, 0.4, 0.8])
        assert sender.timeouts == 4

    def test_backoff_caps_at_64x(self):
        engine = EventEngine()
        sender = TcpSender(engine, 10, lambda seq: None, TcpParams(min_rto_s=0.01))
        sender.start()
        engine.run_until(10.0)
        assert sender._backoff == 64.0
        assert sender.rto_s == pytest.approx(0.01 * 64.0)

    def test_new_data_ack_resets_backoff(self):
        engine = EventEngine()
        sender = TcpSender(engine, 10, lambda seq: None, TcpParams(min_rto_s=0.1))
        sender.start()
        engine.run_until(0.35)  # two timeouts: backoff now 4x
        assert sender._backoff == 4.0
        sender.on_ack(1)  # the path came back and delivered new data
        assert sender._backoff == 1.0
        assert sender.rto_s < 0.1 * 4.0

    def test_dupacks_do_not_touch_backoff(self):
        engine = EventEngine()
        sender = TcpSender(engine, 10, lambda seq: None, TcpParams(min_rto_s=0.1))
        sender.start()
        engine.run_until(0.15)  # one timeout: backoff 2x
        assert sender._backoff == 2.0
        sender.on_ack(0)  # duplicate ACK, no new data
        assert sender._backoff == 2.0


# ---------------------------------------------------------------------------
# Fast retransmit racing a link failure
# ---------------------------------------------------------------------------

class TestFailureRaces:
    def test_flow_survives_mid_transfer_failure_and_restore(self):
        """Fail the flow's only path mid-transfer, restore it shortly
        after: the sender must recover via RTO backoff and finish, with
        the stall visible in both FCT and retransmission count."""
        topo = topology()
        sim = PacketSimulation(topo, params=TcpParams(min_rto_s=0.05))
        sim.add_flow("h_0_0_0", "h_1_0_0", 2_000_000, path_index=0)
        path = topo.host_path(
            "h_0_0_0", "h_1_0_0",
            topo.equal_cost_paths("tor_0_0", "tor_1_0")[0],
        )
        u, v = path[2], path[3]  # a switch-switch hop mid-path
        sim.fail_link_at(0.05, u, v)
        sim.restore_link_at(0.30, u, v)
        (result,) = sim.run(deadline_s=60.0)
        clean = PacketSimulation(topology(), params=TcpParams(min_rto_s=0.05))
        clean.add_flow("h_0_0_0", "h_1_0_0", 2_000_000, path_index=0)
        (baseline,) = clean.run(deadline_s=60.0)
        assert result.retransmissions > baseline.retransmissions
        assert result.fct_s > baseline.fct_s + 0.2  # the outage is visible
        assert result.fct_s < 60.0

    def test_fast_retransmit_during_failure_window(self):
        """Two-path striping with one path failed: the live path's ACKs
        turn into duplicate ACKs for the black-holed segments, so fast
        retransmit fires *while the failure is still in place* and reroutes
        recovery over the surviving path — no RTO stall required."""
        topo = topology()
        sim = PacketSimulation(topo, params=TcpParams(min_rto_s=5.0))
        switch_paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        paths = [
            topo.host_path("h_0_0_0", "h_1_0_0", switch_paths[0]),
            topo.host_path("h_0_0_0", "h_1_0_0", switch_paths[1]),
        ]
        sim.add_flow(
            "h_0_0_0", "h_1_0_0", 1_500_000, paths=paths, weights=[0.5, 0.5]
        )
        # Kill a hop unique to path 0 for one segment's serialization time
        # (1500 B at 100 Mbps = 0.12 ms) mid-transfer, once the congestion
        # window holds plenty of in-flight segments whose ACKs become the
        # duplicate ACKs. The micro-outage blackholes a segment or two —
        # the loss pattern Reno fast retransmit recovers without an RTO
        # (a longer outage leaves multiple holes, which cumulative-ACK
        # recovery can only clear by timeout; that regime is the previous
        # test's). min_rto_s=5 is far beyond the transfer, so completing
        # fast proves the RTO never fired.
        unique = next(
            (a, b) for a, b in zip(paths[0][1:-1], paths[0][2:-1])
            if (a, b) not in set(zip(paths[1], paths[1][1:]))
        )
        sim.fail_link_at(0.05000, *unique)
        sim.restore_link_at(0.05012, *unique)
        (result,) = sim.run(deadline_s=30.0)
        assert result.retransmissions > 0
        assert result.fct_s < 5.0  # finished without ever waiting out an RTO
        assert sim._flows[0].sender.timeouts == 0
        assert sim.total_drops > 0  # the dead link really blackholed packets

    def test_drops_counted_on_downed_link(self):
        topo = topology()
        sim = PacketSimulation(topo)
        sim.add_flow("h_0_0_0", "h_1_0_0", 150_000, path_index=0)
        sim.fail_link_at(0.0, "tor_0_0", "agg_0_0")
        sim.restore_link_at(0.5, "tor_0_0", "agg_0_0")
        (result,) = sim.run(deadline_s=30.0)
        link = sim.links.link("tor_0_0", "agg_0_0")
        assert link.drops > 0
        assert link.up


# ---------------------------------------------------------------------------
# Final-segment drop accounting
# ---------------------------------------------------------------------------

class TestFinalSegmentDrop:
    def run_with_blackholed_seq(self, drop_seq, total=8):
        """Loopback harness: every segment is delivered after a fixed
        delay except ``drop_seq``, which vanishes exactly once."""
        engine = EventEngine()
        receiver = TcpReceiver(total)
        dropped = []

        def send(seq):
            if seq == drop_seq and not dropped:
                dropped.append(seq)
                return
            engine.schedule_in(
                0.001, lambda: sender.on_ack(receiver.on_segment(seq))
            )

        sender = TcpSender(engine, total, send, TcpParams(min_rto_s=0.05))
        sender.start()
        engine.run_until(5.0)
        return sender, receiver

    def test_final_segment_drop_recovers_via_rto(self):
        """The last segment has no successors to generate dupacks, so the
        only recovery is the RTO; accounting must show exactly that."""
        sender, receiver = self.run_with_blackholed_seq(drop_seq=7, total=8)
        assert sender.completed_at is not None
        assert receiver.complete
        assert sender.timeouts == 1
        assert sender.retransmissions == 1  # the resent final segment, only

    def test_middle_drop_recovers_via_dupacks_without_timeout(self):
        sender, receiver = self.run_with_blackholed_seq(drop_seq=2, total=16)
        assert sender.completed_at is not None
        assert sender.retransmissions >= 1
        assert sender.timeouts == 0  # dupacks got there first

    def test_completion_time_reflects_the_rto_stall(self):
        fast_sender, _ = self.run_with_blackholed_seq(drop_seq=2, total=16)
        slow_sender, _ = self.run_with_blackholed_seq(drop_seq=15, total=16)
        assert slow_sender.completed_at > 0.05  # waited out one full RTO
        assert fast_sender.completed_at < slow_sender.completed_at
