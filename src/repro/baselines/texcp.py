"""TeXCP: distributed, load-responsive packet-level traffic engineering
(Kandula et al., SIGCOMM 2005; compared against DARD in paper §4.3.3).

Each ToR pair runs an agent that stripes its traffic across all available
paths and adapts the split ratios toward less-utilized paths using probe
feedback. The paper ports TeXCP to the datacenter by shrinking the probe
interval (RTTs are ~ms or smaller) and, lacking flowlets, schedules at
packet granularity — our flows therefore carry *all* paths simultaneously
as weighted components, and the simulator's reordering model charges the
resulting TCP retransmissions (Fig. 14).

Adaptation follows TeXCP's load balancer: every control interval (five
probe intervals, as required by the TeXCP paper) each agent measures path
utilization ``u_i`` and moves split weight toward paths below the mean:

    x_i <- x_i + kappa * x_i * (u_bar - u_i) / u_bar        (u_bar > 0)

with a floor keeping every path alive for exploration, then renormalizes.
Weight changes are pure re-weightings (``count_switch=False``) — TeXCP
never performs discrete per-flow path switches.

**Flowlet granularity** (``granularity="flowlet"``) implements the paper's
future-work hypothesis (§4.3.3): scheduling TCP packet *bursts* instead of
individual packets eliminates reordering, because consecutive flowlets are
separated by idle gaps longer than the cross-path delay spread (Sinha et
al., HotNets 2004). Each flow then rides a single path at a time, redrawn
from the agent's split ratios every control interval — switching between
flowlets is seamless (no window loss, no reordering), but load balancing
becomes granular, which is the trade-off the comparison bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.scheduling.base import Scheduler, SchedulerContext
from repro.simulator.flows import Flow, FlowComponent
from repro.topology.multirooted import SwitchPath

DEFAULT_PROBE_INTERVAL_S = 0.05
DEFAULT_KAPPA = 0.4
MIN_RATIO = 0.02


@dataclass
class TexcpAgent:
    """Split-ratio state for one (source ToR, destination ToR) pair."""

    src_tor: str
    dst_tor: str
    paths: List[SwitchPath]
    ratios: List[float] = field(default_factory=list)
    flow_ids: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.ratios:
            self.ratios = [1.0 / len(self.paths)] * len(self.paths)

    def rebalance(self, utils: List[float], kappa: float) -> None:
        """One TeXCP control-interval update of the split ratios."""
        mean = sum(r * u for r, u in zip(self.ratios, utils))
        if mean <= 0:
            return
        updated = [
            max(MIN_RATIO, r + kappa * r * (mean - u) / mean)
            for r, u in zip(self.ratios, utils)
        ]
        total = sum(updated)
        self.ratios = [r / total for r in updated]


class TexcpScheduler(Scheduler):
    """Packet-granularity multipath striping with adaptive split ratios."""

    name = "texcp"

    def __init__(
        self,
        probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
        kappa: float = DEFAULT_KAPPA,
        granularity: str = "packet",
    ) -> None:
        super().__init__()
        if granularity not in ("packet", "flowlet"):
            raise ValueError(
                f"granularity must be 'packet' or 'flowlet', got {granularity!r}"
            )
        self.probe_interval_s = probe_interval_s
        self.control_interval_s = 5.0 * probe_interval_s  # TeXCP requirement
        self.kappa = kappa
        self.granularity = granularity
        self._agents: Dict[Tuple[str, str], TexcpAgent] = {}

    def attach(self, ctx: SchedulerContext) -> None:
        super().attach(ctx)
        ctx.network.flow_completed_listeners.append(self._forget_flow)
        ctx.engine.schedule_every(self.control_interval_s, self._control_round)

    # -- placement ---------------------------------------------------------------

    def choose_components(self, src: str, dst: str) -> List[FlowComponent]:
        topo = self.ctx.topology
        src_tor, dst_tor = topo.tor_of(src), topo.tor_of(dst)
        paths = topo.equal_cost_paths(src_tor, dst_tor)
        if len(paths) == 1:
            return [self.component_for(src, dst, paths[0])]
        agent = self._agents.get((src_tor, dst_tor))
        if agent is None:
            agent = TexcpAgent(src_tor, dst_tor, paths)
            self._agents[(src_tor, dst_tor)] = agent
        if self.granularity == "flowlet":
            return [self._flowlet_component(src, dst, agent)]
        return self._striped_components(src, dst, agent)

    def _flowlet_component(self, src: str, dst: str, agent: TexcpAgent) -> FlowComponent:
        """One path drawn from the agent's split ratios (flowlet mode)."""
        network = self.ctx.network
        topo = self.ctx.topology
        weights = []
        candidates = []
        for path, ratio in zip(agent.paths, agent.ratios):
            full = topo.host_path(src, dst, path)
            if network.failed_links and not network.path_alive(full):
                continue
            candidates.append(full)
            weights.append(ratio)
        if not candidates:
            return FlowComponent(topo.host_path(src, dst, agent.paths[0]))
        total = sum(weights)
        probabilities = [w / total for w in weights]
        index = int(self.ctx.rng.choice(len(candidates), p=probabilities))
        return FlowComponent(candidates[index])

    def place(self, src: str, dst: str, size_bytes: float) -> Flow:
        flow = super().place(src, dst, size_bytes)
        topo = self.ctx.topology
        agent = self._agents.get((topo.tor_of(src), topo.tor_of(dst)))
        if agent is not None and len(agent.paths) > 1:
            agent.flow_ids.add(flow.flow_id)
        return flow

    def _striped_components(
        self, src: str, dst: str, agent: TexcpAgent
    ) -> List[FlowComponent]:
        """Components over the agent's paths, skipping any that are down."""
        topo = self.ctx.topology
        network = self.ctx.network
        components = []
        for path, ratio in zip(agent.paths, agent.ratios):
            full = topo.host_path(src, dst, path)
            if network.failed_links and not network.path_alive(full):
                continue
            components.append(FlowComponent(full, weight=ratio))
        if not components:
            # Everything is down (e.g. access link): pin to the first path
            # and stall until the failure heals.
            components = [FlowComponent(topo.host_path(src, dst, agent.paths[0]))]
        return components

    # -- the distributed control loop --------------------------------------------

    def _path_utilization(self, path: SwitchPath) -> float:
        """Probe result: the most utilized switch link along a path.

        A failed hop reads as fully overloaded (probes are lost), so the
        load balancer drains the path's split ratio organically.
        """
        network = self.ctx.network
        if network.failed_links and not all(
            network.link_is_up(u, v) for u, v in zip(path, path[1:])
        ):
            return 2.0
        return max(
            (network.utilization(u, v) for u, v in zip(path, path[1:])),
            default=0.0,
        )

    def _control_round(self) -> None:
        network = self.ctx.network
        for agent in self._agents.values():
            if not agent.flow_ids:
                continue
            utils = [self._path_utilization(p) for p in agent.paths]
            before = list(agent.ratios)
            agent.rebalance(utils, self.kappa)
            # Converged agents barely move; skip the no-op re-weighting
            # (a real TeXCP agent would likewise leave its splitters alone) —
            # unless a flow is sitting on a path that just died.
            changed = max(abs(a - b) for a, b in zip(before, agent.ratios)) >= 0.005
            for flow_id in sorted(agent.flow_ids):
                flow = network.flows.get(flow_id)
                if flow is None:
                    agent.flow_ids.discard(flow_id)
                    continue
                dead = network.failed_links and any(
                    not network.path_alive(c.path) for c in flow.components
                )
                if not changed and not dead:
                    continue
                if self.granularity == "flowlet":
                    component = self._flowlet_component(flow.src, flow.dst, agent)
                    if component.path == flow.components[0].path:
                        continue
                    # Flowlet switches land between bursts: no window loss,
                    # no reordering — but they are path switches and are
                    # counted as such.
                    network.reroute_flow(
                        flow, [component], count_switch=True, retx_penalty=False
                    )
                else:
                    components = self._striped_components(flow.src, flow.dst, agent)
                    network.reroute_flow(
                        flow, components, count_switch=False, retx_penalty=False
                    )

    def _forget_flow(self, flow: Flow) -> None:
        topo = self.ctx.topology
        agent = self._agents.get((topo.tor_of(flow.src), topo.tor_of(flow.dst)))
        if agent is not None:
            agent.flow_ids.discard(flow.flow_id)
