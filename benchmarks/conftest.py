"""Benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures by calling
the corresponding function in :mod:`repro.experiments.figures`. Each run is
timed by pytest-benchmark (single round — these are full simulations, not
microbenchmarks) and the rendered rows/series are saved to
``benchmarks/results/<experiment>.txt`` so the reproduced artifacts persist
after the run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_output():
    """Persist an ExperimentOutput and echo it to the terminal."""

    def _save(output):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{output.experiment_id}.txt"
        path.write_text(output.render() + "\n")
        print()
        print(output.render())
        return output

    return _save


def run_once(benchmark, fn, **kwargs):
    """Run one experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
