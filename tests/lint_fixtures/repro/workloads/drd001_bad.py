"""DRD001 bad fixture: a suppression comment that suppresses nothing."""


def scale_rates(values):
    """No DET002 fires here, so the disable comment is dead weight."""
    return [value * 2.0 for value in values]  # dardlint: disable=DET002
