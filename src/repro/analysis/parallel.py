"""Parallel scenario execution across processes.

Scenario runs are embarrassingly parallel — each builds its own topology,
network, and RNG streams from a picklable :class:`ScenarioConfig` — so a
sweep can use every core. Results are returned in deterministic grid
order regardless of completion order, and each scenario is exactly as
reproducible as under the serial runner.

Two axes of parallelism compose here. This module fans *scenarios*
across worker processes; ``repro.simulator.parallel`` fans the work
*inside* one scenario (component-parallel reallocation) across a
backend. ``parallel_backend``/``parallel_workers`` pass the intra-
scenario backend through to every scenario's network, so a grid sweep
can run, say, process-per-scenario with a threads backend inside each —
results stay bit-identical either way (the deterministic merge
contract).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario
from repro.analysis.sweep import _apply_override
from repro.simulator.parallel import resolve_workers


def _with_intra_backend(
    config: ScenarioConfig,
    parallel_backend: Optional[str],
    parallel_workers: Optional[int],
) -> ScenarioConfig:
    """``config`` with the intra-scenario backend injected (no-op if None)."""
    if parallel_backend is None:
        return config
    params = {**config.network_params, "parallel_backend": parallel_backend}
    if parallel_workers is not None:
        params["parallel_workers"] = parallel_workers
    return dataclasses.replace(config, network_params=params)


def run_scenarios_parallel(
    configs: Sequence[ScenarioConfig],
    max_workers: Optional[int] = None,
    parallel_backend: Optional[str] = None,
    parallel_workers: Optional[int] = None,
) -> List[ScenarioResult]:
    """Run many scenarios across processes; results in input order.

    ``max_workers`` defaults to one less than the CPUs this process may
    actually use (scheduler affinity via
    :func:`repro.simulator.parallel.resolve_workers`, not the machine's
    raw core count — in a container pinned to 4 of 64 cores the default
    is 3), at least 1. With one config or one worker the serial path is
    used — no process-pool overhead, identical results. An empty
    ``configs`` returns ``[]`` before any pool is created.

    ``parallel_backend``/``parallel_workers`` select the intra-scenario
    execution backend for every scenario's network (see module
    docstring); ``None`` leaves each config's own ``network_params``
    untouched.
    """
    configs = [
        _with_intra_backend(config, parallel_backend, parallel_workers)
        for config in configs
    ]
    if not configs:
        return []
    if max_workers is None:
        max_workers = max(1, resolve_workers(None) - 1)
    if max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    if max_workers == 1 or len(configs) == 1:
        return [run_scenario(config) for config in configs]
    # Chunk the work so large sweeps amortize inter-process pickling
    # instead of round-tripping one config at a time; capped so every
    # worker still gets several chunks for load balance.
    chunksize = max(1, min(8, len(configs) // (max_workers * 4)))
    with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(run_scenario, configs, chunksize=chunksize))


def parallel_sweep(
    base: ScenarioConfig,
    grid: Dict[str, Sequence],
    max_workers: Optional[int] = None,
    parallel_backend: Optional[str] = None,
    parallel_workers: Optional[int] = None,
) -> List[Tuple[Dict[str, object], ScenarioResult]]:
    """The parallel counterpart of :func:`repro.analysis.sweep.sweep`.

    Same grid semantics and the same deterministic ordering; only the
    execution is concurrent. ``parallel_backend``/``parallel_workers``
    pass the intra-scenario backend through to every grid point (and to
    the single base run when ``grid`` is empty).
    """
    if not grid:
        base = _with_intra_backend(base, parallel_backend, parallel_workers)
        return [({}, run_scenario(base))]
    keys = sorted(grid)
    overrides_list: List[Dict[str, object]] = []
    configs: List[ScenarioConfig] = []
    for values in itertools.product(*(grid[k] for k in keys)):
        overrides = dict(zip(keys, values))
        config = base
        for key, value in overrides.items():
            config = _apply_override(config, key, value)
        overrides_list.append(overrides)
        configs.append(config)
    results = run_scenarios_parallel(
        configs,
        max_workers=max_workers,
        parallel_backend=parallel_backend,
        parallel_workers=parallel_workers,
    )
    return list(zip(overrides_list, results))
