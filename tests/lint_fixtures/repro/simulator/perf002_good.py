"""PERF002 good fixture: columnar settle, scalar loop in the oracle twin."""


class FakeNetwork:
    """Minimal shape for the rule: only the method names matter."""

    def _settle(self, dt):
        """One masked array op over the store columns."""
        rows = self.store.live_rows()
        self.store.remaining_bytes[rows] -= self.store.rate_bps[rows] * dt / 8.0

    def _settle_reference(self, dt):
        """The designated scalar oracle may iterate flows by design."""
        for flow in self.flows.values():
            flow.remaining_bytes -= flow.rate_bps * dt / 8.0
