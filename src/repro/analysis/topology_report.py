"""Structural analysis of a multi-rooted tree topology.

Computes the figures of merit the datacenter-network literature quotes:
bisection bandwidth (and whether the fabric is rearrangeably non-blocking,
i.e. oversubscription 1:1), per-layer oversubscription, and equal-cost
path diversity between ToR pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.topology.graph import NodeKind
from repro.topology.multirooted import MultiRootedTopology


@dataclass(frozen=True)
class TopologyReport:
    """Summary statistics of one topology instance."""

    num_hosts: int
    num_switches: int
    num_links: int
    host_capacity_bps: float
    #: aggregate capacity of the ToR->agg layer (one direction).
    tor_uplink_capacity_bps: float
    #: aggregate capacity of the agg->core layer (one direction).
    core_layer_capacity_bps: float
    #: min over layers of layer capacity / host capacity, times half the
    #: host capacity: the fabric's worst-case bisection bandwidth.
    bisection_bandwidth_bps: float
    access_oversubscription: float
    aggregation_oversubscription: float
    #: equal-cost path counts: ToR-pair path diversity.
    min_paths_inter_pod: int
    max_paths_inter_pod: int

    @property
    def full_bisection(self) -> bool:
        """True when the fabric can carry any half-half traffic split."""
        return (
            self.access_oversubscription <= 1.0 + 1e-9
            and self.aggregation_oversubscription <= 1.0 + 1e-9
        )

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"hosts={self.num_hosts} switches={self.num_switches} links={self.num_links}",
            f"host capacity      : {self.host_capacity_bps / 1e9:.1f} Gbps",
            f"ToR uplink layer   : {self.tor_uplink_capacity_bps / 1e9:.1f} Gbps "
            f"(access oversub {self.access_oversubscription:.2f}:1)",
            f"core layer         : {self.core_layer_capacity_bps / 1e9:.1f} Gbps "
            f"(aggregation oversub {self.aggregation_oversubscription:.2f}:1)",
            f"bisection bandwidth: {self.bisection_bandwidth_bps / 1e9:.1f} Gbps "
            f"({'full' if self.full_bisection else 'oversubscribed'})",
            f"inter-pod path diversity: {self.min_paths_inter_pod}"
            + (
                f"-{self.max_paths_inter_pod}"
                if self.max_paths_inter_pod != self.min_paths_inter_pod
                else ""
            ),
        ]
        return "\n".join(lines)


def _directed_layer_capacity(topo: MultiRootedTopology, low: NodeKind, high: NodeKind) -> float:
    total = 0.0
    for link in topo.links():
        kinds = {topo.node(link.u).kind, topo.node(link.v).kind}
        if kinds == {low, high}:
            total += link.bandwidth_bps
    return total


def analyze_topology(topo: MultiRootedTopology) -> TopologyReport:
    """Compute a :class:`TopologyReport` for any multi-rooted tree."""
    host_capacity = _directed_layer_capacity(topo, NodeKind.HOST, NodeKind.TOR)
    tor_uplinks = _directed_layer_capacity(topo, NodeKind.TOR, NodeKind.AGG)
    core_layer = _directed_layer_capacity(topo, NodeKind.AGG, NodeKind.CORE)
    access_over = host_capacity / tor_uplinks if tor_uplinks else float("inf")
    # Aggregation oversubscription: ToR-facing over core-facing capacity.
    agg_over = tor_uplinks / core_layer if core_layer else float("inf")
    # Bisection: half the hosts talk to the other half; the tightest layer
    # (relative to host demand) bounds it.
    limiting = min(host_capacity, tor_uplinks, core_layer)
    bisection = limiting / 2.0

    # Path diversity over a sample of inter-pod ToR pairs (all pairs on
    # small fabrics; capped for big ones).
    tors = sorted(topo.tors())
    counts = []
    budget = 200
    for i, src in enumerate(tors):
        for dst in tors[i + 1:]:
            if topo.pod_of(src) == topo.pod_of(dst):
                continue
            counts.append(len(topo.equal_cost_paths(src, dst)))
            budget -= 1
            if budget == 0:
                break
        if budget == 0:
            break
    if not counts:  # single-pod topology: fall back to intra-pod pairs
        counts = [
            len(topo.equal_cost_paths(tors[0], dst)) for dst in tors[1:]
        ] or [1]

    return TopologyReport(
        num_hosts=len(topo.hosts()),
        num_switches=len(topo.switches()),
        num_links=topo.num_links,
        host_capacity_bps=host_capacity,
        tor_uplink_capacity_bps=tor_uplinks,
        core_layer_capacity_bps=core_layer,
        bisection_bandwidth_bps=bisection,
        access_oversubscription=access_over,
        aggregation_oversubscription=agg_over,
        min_paths_inter_pod=min(counts),
        max_paths_inter_pod=max(counts),
    )
