"""Switches and the fabric-wide forwarding plane.

:class:`SwitchFabric` builds one :class:`Switch` per switch node, installs
the static downhill/uphill tables from a :class:`HierarchicalAddressing`
(this is the one-time NOX initialization of the prototype, §3.1), and can
trace a packet hop by hop from source host to destination host — the ground
truth the address codec is validated against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import RoutingError
from repro.topology.graph import NodeKind
from repro.topology.multirooted import MultiRootedTopology
from repro.addressing.hierarchy import HierarchicalAddressing
from repro.addressing.prefix import Prefix
from repro.switches.flowtable import FlowTable


class Switch:
    """One switch: a port map plus static downhill and uphill LPM tables."""

    def __init__(self, name: str, neighbors: List[str]) -> None:
        self.name = name
        #: port number -> neighbor, 1-based in deterministic neighbor order.
        self.ports: Dict[int, str] = {i + 1: n for i, n in enumerate(neighbors)}
        self.port_of: Dict[str, int] = {n: p for p, n in self.ports.items()}
        self.downhill = FlowTable()
        self.uphill = FlowTable()

    def forward(self, src_addr: int, dst_addr: int) -> str:
        """Next-hop neighbor for a packet, per the downhill-uphill rule.

        The destination address is looked up in the downhill table first;
        on a miss, the source address is looked up in the uphill table.
        """
        port = self.downhill.lookup(dst_addr)
        if port is None:
            port = self.uphill.lookup(src_addr)
        if port is None:
            raise RoutingError(
                f"switch {self.name!r} has no route for src={src_addr} dst={dst_addr}"
            )
        return self.ports[port]

    def merged_routing_table(self) -> FlowTable:
        """The single ordinary destination-only table (paper Table 3).

        Valid for fat-trees, where picking a core uniquely determines both
        path segments, so destination-only longest-prefix matching suffices.
        """
        merged = FlowTable()
        for entry in self.downhill.entries():
            merged.add(entry.prefix, entry.port)
        for entry in self.uphill.entries():
            merged.add(entry.prefix, entry.port)
        return merged


class SwitchFabric:
    """Every switch in the topology with tables installed once, statically."""

    def __init__(self, addressing: HierarchicalAddressing) -> None:
        self.addressing = addressing
        self.topology: MultiRootedTopology = addressing.topology
        self.switches: Dict[str, Switch] = {}
        for name in self.topology.switches():
            neighbors = sorted(self.topology.neighbors(name))
            self.switches[name] = Switch(name, neighbors)
        self._install_tables()

    def _install_tables(self) -> None:
        topo = self.topology
        addressing = self.addressing
        for core, agg, tor in topo.downhill_chains():
            core_sw = self.switches[core]
            agg_sw = self.switches[agg]
            tor_sw = self.switches[tor]
            # Core: the prefix it allocated to each subtree points down.
            core_sw.downhill.add(addressing.agg_prefix(core, agg), core_sw.port_of[agg])
            # Aggregation: chain prefixes point down to ToRs; the core's own
            # prefix points up (cores have no uphill table, §2.3).
            agg_sw.downhill.add(addressing.chain_prefix((core, agg, tor)), agg_sw.port_of[tor])
            agg_sw.uphill.add(addressing.core_prefix(core), agg_sw.port_of[core])
            # ToR: host addresses point down; the chain prefix points up to
            # the aggregation switch that allocated it.
            tor_sw.uphill.add(addressing.chain_prefix((core, agg, tor)), tor_sw.port_of[agg])
            for host in topo.hosts_of_tor(tor):
                addr = addressing.address_of(host, (core, agg, tor))
                tor_sw.downhill.add(Prefix(addr, 32), tor_sw.port_of[host])

    def switch(self, name: str) -> Switch:
        """Look up one switch by name."""
        try:
            return self.switches[name]
        except KeyError:
            raise RoutingError(f"no such switch {name!r}") from None

    def forward_trace(
        self, src_host: str, src_addr: int, dst_addr: int, max_hops: int = 16
    ) -> Tuple[str, ...]:
        """Forward a packet hop by hop; returns the full node path.

        Starts at ``src_host`` (which hands the packet to its ToR) and runs
        the per-switch :meth:`Switch.forward` rule until a host is reached.
        Raises :class:`RoutingError` on a forwarding loop or table miss.
        """
        path = [src_host]
        current = self.topology.tor_of(src_host)
        hops = 0
        while True:
            path.append(current)
            node = self.topology.node(current)
            if node.kind is NodeKind.HOST:
                return tuple(path)
            next_hop = self.switches[current].forward(src_addr, dst_addr)
            hops += 1
            if hops > max_hops:
                raise RoutingError(
                    f"forwarding loop for src={src_addr} dst={dst_addr}: {path}"
                )
            current = next_hop

    def num_table_entries(self) -> int:
        """Total rules installed fabric-wide (a scalability statistic)."""
        return sum(len(sw.downhill) + len(sw.uphill) for sw in self.switches.values())
