"""Ablation: the elephant detection age (paper fixes 10 s).

A lower threshold lets DARD start managing flows earlier (more shifts,
more probe traffic); a higher one leaves congestion unmanaged longer.
"""

from repro.experiments.figures import ablation_elephant_threshold
from conftest import run_once


def test_ablation_elephant(benchmark, save_output):
    output = run_once(
        benchmark, ablation_elephant_threshold, thresholds_s=(5.0, 10.0, 20.0),
        duration_s=90.0,
    )
    save_output(output)
    rows = sorted(output.rows, key=lambda r: r["elephant_age_s"])
    # Earlier detection -> at least as much control traffic.
    assert rows[0]["control_kb_per_s"] >= rows[-1]["control_kb_per_s"]
    # Earlier detection never hurts transfer time materially.
    assert rows[0]["mean_fct_s"] <= rows[-1]["mean_fct_s"] * 1.10
