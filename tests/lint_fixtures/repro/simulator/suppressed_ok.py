"""Suppression fixture: real violations silenced by disable comments."""


def set_order_rows(pairs):
    """Both suppression placements: trailing comment and comment-above."""
    crossing = {(u, v) for (u, v) in pairs}
    rows = []
    for link in crossing:  # dardlint: disable=DET001 (order irrelevant here)
        rows.append(link)
    # dardlint: disable=DET001
    for link in crossing:
        rows.append(link)
    return rows
