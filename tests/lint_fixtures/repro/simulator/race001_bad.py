"""RACE001 bad fixture: cross-owner write inside a component round.

``_refill_dirty`` is a component-scoped root; ``_total_array`` is owned
by Network with writers ``__init__``/``_adjust_link_counts`` only.
"""


class RoundRunner:
    """Minimal shape for the rule: only the names matter."""

    def __init__(self, num_links):
        self._total_array = [0] * num_links

    def _refill_dirty(self, link_ids):
        for link_id in link_ids:
            self._total_array[link_id] += 1
