"""Figure 6: CDF of DARD path-switch counts on the testbed.

Paper shape: staggered flows almost all stick to their first path; stride
flows switch a handful of times at most; the maximum stays below the
number of available paths (4 on p=4); average ~0.9 under stride.
"""

from repro.experiments.figures import fig6_path_switches
from conftest import run_once


def test_fig6_path_switches(benchmark, save_output):
    output = run_once(benchmark, fig6_path_switches, duration_s=90.0)
    save_output(output)
    rows = {row["pattern"]: row for row in output.rows}
    assert set(rows) == {"random", "staggered", "stride"}
    # Staggered: ~90% never switch in the paper; accept >= 70%.
    assert rows["staggered"]["never_switched"] >= 0.7
    # Stride: bounded oscillation, far below the 4 available paths.
    assert rows["stride"]["p90"] <= 3
    assert rows["stride"]["max"] <= 6
    # Random sits between staggered and stride.
    assert (
        rows["staggered"]["mean"] <= rows["random"]["mean"] + 0.2
    )
