"""OWN001 bad fixture: shared state created outside its owner module.

``_row_band`` is a MonitorRegistry cache owned by ``repro.core.registry``;
rebinding it to a fresh array from simulator code bypasses the ownership
table (and any runtime write barrier on the old object).
"""

import numpy as np


def hijack_band_cache(registry):
    registry._row_band = np.zeros(4)
