"""DARD: Distributed Adaptive Routing for Datacenter Networks — reproduction.

Public API tour:

>>> from repro import FatTree, Network, DardScheduler, run_scenario
>>> from repro.experiments import ScenarioConfig
>>> result = run_scenario(ScenarioConfig(
...     topology="fattree", topology_params={"p": 4},
...     pattern="stride", scheduler="dard",
...     arrival_rate_per_host=0.05, duration_s=60.0,
...     flow_size_bytes=128_000_000))
>>> result.mean_fct  # doctest: +SKIP

Subpackages:

* :mod:`repro.topology` — fat-tree / Clos / 3-tier topologies;
* :mod:`repro.addressing` — NIRA-style hierarchical addressing and the
  path <-> address-pair codec;
* :mod:`repro.switches` — static downhill/uphill LPM tables and forwarding;
* :mod:`repro.simulator` — flow-level max-min-fair discrete-event simulator;
* :mod:`repro.workloads` — random / staggered / stride traffic;
* :mod:`repro.baselines` — ECMP, periodic VLB, Hedera, TeXCP;
* :mod:`repro.core` — DARD itself (detector, monitors, selfish scheduler);
* :mod:`repro.gametheory` — the congestion-game model and theorem checks;
* :mod:`repro.experiments` — the per-figure/table reproduction harness.
"""

from repro.addressing import HierarchicalAddressing, IdMapper, PathCodec, Prefix
from repro.baselines import (
    EcmpScheduler,
    HederaScheduler,
    PeriodicVlbScheduler,
    TexcpScheduler,
)
from repro.common import RngStreams
from repro.core import DardScheduler
from repro.experiments import ScenarioConfig, run_scenario
from repro.gametheory import CongestionGame, GameFlow
from repro.scheduling import Scheduler, SchedulerContext
from repro.simulator import EventEngine, Flow, FlowComponent, Network
from repro.switches import SwitchFabric
from repro.topology import ClosNetwork, FatTree, ThreeTier, build_topology
from repro.workloads import ArrivalProcess, WorkloadSpec, make_pattern

__version__ = "1.0.0"

__all__ = [
    "ArrivalProcess",
    "ClosNetwork",
    "CongestionGame",
    "DardScheduler",
    "EcmpScheduler",
    "EventEngine",
    "FatTree",
    "Flow",
    "FlowComponent",
    "GameFlow",
    "HederaScheduler",
    "HierarchicalAddressing",
    "IdMapper",
    "Network",
    "PathCodec",
    "PeriodicVlbScheduler",
    "Prefix",
    "RngStreams",
    "ScenarioConfig",
    "Scheduler",
    "SchedulerContext",
    "SwitchFabric",
    "TexcpScheduler",
    "ThreeTier",
    "WorkloadSpec",
    "build_topology",
    "make_pattern",
    "run_scenario",
    "__version__",
]
