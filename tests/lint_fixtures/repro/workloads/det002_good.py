"""DET002 good fixture: a locally seeded generator, no global state."""

import random


def jitter_s(seed):
    """Pure function of the seed."""
    rng = random.Random(seed)
    return rng.random() * 0.5
