"""Tests for CLI export flags, the analyze subcommand, and miscellaneous
configuration switches not covered elsewhere."""

import csv
import json

import pytest

from repro.cli import main as cli_main
from repro.common.units import MB, MBPS
from repro.simulator import FlowComponent, Network
from repro.topology import ClosNetwork, FatTree


class TestCliExports:
    def test_run_with_csv_and_json(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        code = cli_main([
            "run", "ablation_sync", "--duration", "25",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        assert {row["mode"] for row in rows} == {"randomized", "synchronized"}
        data = json.loads(json_path.read_text())
        assert data["experiment_id"] == "ablation_sync"

    def test_compare_paired_flag(self, capsys):
        code = cli_main([
            "compare", "--rate", "0.06", "--duration", "40",
            "--schedulers", "ecmp", "vlb", "--paired",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "paired per-flow statistics" in out

    def test_analyze_fattree(self, capsys):
        assert cli_main(["analyze", "--topology", "fattree", "--pods", "4"]) == 0
        out = capsys.readouterr().out
        assert "bisection" in out and "full" in out

    def test_analyze_clos(self, capsys):
        assert cli_main(["analyze", "--topology", "clos", "--d", "4"]) == 0
        out = capsys.readouterr().out
        assert "ClosNetwork" in out


class TestNetworkConfigSwitches:
    def test_reordering_model_disabled(self):
        net = Network(
            FatTree(p=4, link_bandwidth_bps=100 * MBPS), model_reordering=False
        )
        topo = net.topology
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        components = [
            FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", p), weight=0.25)
            for p in paths
        ]
        flow = net.start_flow("h_0_0_0", "h_1_0_0", 50 * MB, components)
        net.engine.run_until(1.0)
        assert flow.reorder_retx_fraction == 0.0

    def test_zero_switch_penalty(self):
        net = Network(
            FatTree(p=4, link_bandwidth_bps=100 * MBPS), path_switch_retx_bytes=0
        )
        topo = net.topology
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        flow = net.start_flow(
            "h_0_0_0", "h_1_0_0", 50 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", paths[0]))],
        )
        net.engine.run_until(1.0)
        net.reroute_flow(
            flow, [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", paths[2]))]
        )
        assert flow.retransmitted_bytes == 0.0
        assert flow.path_switches == 1

    def test_clos_simulation_end_to_end(self):
        """The simulator isn't fat-tree specific: full run on a Clos."""
        topo = ClosNetwork(d_i=4, d_a=4, hosts_per_tor=2, link_bandwidth_bps=100 * MBPS)
        net = Network(topo)
        src, dst = "h_0_0", "h_2_0"
        paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
        assert len(paths) == 8
        for index in (0, 3, 7):
            net.start_flow(
                src, dst, 10 * MB,
                [FlowComponent(topo.host_path(src, dst, paths[index]))],
            )
        net.engine.run_until_idle()
        assert len(net.records) == 3
        # All three shared the src access link: ~3x the lone-flow time.
        assert max(r.fct for r in net.records) == pytest.approx(2.4, rel=0.01)

    def test_run_until_idle_hard_limit(self):
        net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        net.engine.schedule_every(1.0, lambda: None)
        net.engine.run_until_idle(hard_limit=10.0)
        assert net.engine.now == pytest.approx(10.0)


class TestHederaInternals:
    def test_legacy_energy_helper(self):
        """The full-recompute energy helper agrees with a hand count."""
        import numpy as np
        from repro.addressing import HierarchicalAddressing, PathCodec
        from repro.baselines import HederaScheduler
        from repro.baselines.hedera import PathSelector
        from repro.scheduling import SchedulerContext

        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        net = Network(topo)
        ctx = SchedulerContext(
            network=net,
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )
        scheduler = HederaScheduler()
        scheduler.attach(ctx)
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        flow = net.start_flow(
            "h_0_0_0", "h_1_0_0", 500 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", paths[0]))],
        )
        assignment = {"h_1_0_0": PathSelector(core=0)}
        energy = scheduler._energy([flow], [50 * MBPS], assignment)
        # One 50 Mbps demand on 100 Mbps links -> max utilization 0.5.
        assert energy == pytest.approx(0.5)
