"""DET001 good fixture: set iteration goes through sorted() first."""


def link_rows(pairs):
    """Rows in sorted link order — stable across processes."""
    crossing = {(u, v) for (u, v) in pairs}
    rows = []
    for link in sorted(crossing):
        rows.append(link)
    return rows
