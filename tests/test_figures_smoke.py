"""Smoke tests for every experiment function at miniature parameters.

The real reproductions live in ``benchmarks/`` with full durations and
shape assertions; these only verify that each experiment runs end to end,
returns well-formed rows/series, and renders. Durations are cut to the
bone so the whole module stays in the tens of seconds.
"""

import math

import pytest

from repro.experiments.figures import (
    EXPERIMENTS,
    ExperimentOutput,
    ablation_delta,
    ablation_synchronization,
    ext_failure_recovery,
    ext_flowlet_texcp,
    fig4_improvement,
    fig5_testbed_cdf,
    fig6_path_switches,
    fig15_overhead,
    run_experiment,
)

FAST = {"duration_s": 25.0, "seed": 1}


def check_output(output, expect_series=False):
    assert isinstance(output, ExperimentOutput)
    assert output.rows, output.experiment_id
    for row in output.rows:
        for value in row.values():
            if isinstance(value, float):
                assert not math.isnan(value), (output.experiment_id, row)
    if expect_series:
        assert output.series
    text = output.render()
    assert output.experiment_id in text


class TestFigureFunctions:
    def test_fig4(self):
        check_output(fig4_improvement(rates=(0.06,), **FAST))

    def test_fig5(self):
        check_output(fig5_testbed_cdf(rate=0.08, **FAST), expect_series=True)

    def test_fig6(self):
        check_output(fig6_path_switches(rate=0.08, **FAST), expect_series=True)

    def test_fig15(self):
        check_output(fig15_overhead(rates=(0.04,), **FAST))

    def test_ablation_delta(self):
        check_output(ablation_delta(deltas_mbps=(10.0,), rate=0.08, **FAST))

    def test_ablation_sync(self):
        check_output(ablation_synchronization(rate=0.08, **FAST))

    def test_ext_flowlet(self):
        check_output(ext_flowlet_texcp(rate=0.08, **FAST))

    def test_ext_failures(self):
        output = ext_failure_recovery(
            rate=0.08, duration_s=40.0, fail_at_s=12.0, restore_at_s=30.0, seed=1
        )
        check_output(output)
        assert {row["scheduler"] for row in output.rows} == {
            "ecmp", "vlb", "hedera", "dard",
        }


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig4", "fig5", "fig6", "fig7", "fig8_tab5", "fig9", "fig10_tab7",
            "fig11", "fig12", "tab4", "tab6", "fig13_fig14", "fig15",
            "ablation_delta", "ablation_sync", "ablation_query",
            "ablation_elephant", "ext_flowlet", "ext_centralized",
            "ext_failures", "theory_convergence",
        }
        assert set(EXPERIMENTS) == expected

    def test_every_experiment_documented(self):
        for name, fn in EXPERIMENTS.items():
            assert fn.__doc__, f"{name} lacks a docstring"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_dispatch(self):
        output = run_experiment("ablation_sync", rate=0.08, **FAST)
        assert output.experiment_id == "ablation_sync"
