"""Time-series sampling of a live simulation.

The fluid simulator only exposes instantaneous state; these samplers hook
a periodic engine event to record per-flow rates or per-link utilizations
over time — the raw material for throughput timelines and hotspot plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.simulator.network import Network


@dataclass
class RateSample:
    """One snapshot of a flow's aggregate rate."""

    time_s: float
    flow_id: int
    rate_bps: float


class RateSampler:
    """Record every active flow's rate at a fixed sampling interval."""

    def __init__(self, network: Network, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval_s}")
        self.network = network
        self.interval_s = interval_s
        self.samples: List[RateSample] = []
        network.engine.schedule_every(interval_s, self._sample, start_delay=interval_s)

    def _sample(self) -> None:
        now = self.network.now
        for flow in self.network.flows.values():
            self.samples.append(RateSample(now, flow.flow_id, flow.rate_bps))

    def series_for(self, flow_id: int) -> List[Tuple[float, float]]:
        """(time, rate) points for one flow."""
        return [
            (s.time_s, s.rate_bps) for s in self.samples if s.flow_id == flow_id
        ]

    def aggregate_throughput(self) -> List[Tuple[float, float]]:
        """(time, total rate) across all flows, per sampling instant."""
        totals: Dict[float, float] = {}
        for sample in self.samples:
            totals[sample.time_s] = totals.get(sample.time_s, 0.0) + sample.rate_bps
        return sorted(totals.items())


class LinkUtilizationSampler:
    """Record the utilization of selected directed links over time."""

    def __init__(
        self,
        network: Network,
        links: Sequence[Tuple[str, str]],
        interval_s: float = 1.0,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval_s}")
        for link in links:
            if link not in network.capacities:
                raise ConfigurationError(f"unknown link {link}")
        self.network = network
        self.links = list(links)
        self.interval_s = interval_s
        self.series: Dict[Tuple[str, str], List[Tuple[float, float]]] = {
            link: [] for link in self.links
        }
        network.engine.schedule_every(interval_s, self._sample, start_delay=interval_s)

    def _sample(self) -> None:
        now = self.network.now
        for link in self.links:
            self.series[link].append((now, self.network.utilization(*link)))

    def peak_utilization(self, link: Tuple[str, str]) -> float:
        """The highest sampled utilization of one directed link."""
        points = self.series[link]
        return max((u for _, u in points), default=0.0)
