"""RACE002 bad fixture: dirty cross-component state read directly.

``_dirty`` is a cross-component invalidation buffer owned by
``repro.simulator.components``; outside that module it may only be
consumed through the declared merge points.
"""


def count_pending_departures(components):
    """Peeks at the dirty-root set instead of draining it."""
    return len(components._dirty)
