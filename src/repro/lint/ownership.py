"""The ownership registry: who owns each piece of shared simulator state.

One auditable table (`OWNERSHIP`) declaring, for every piece of shared
mutable simulator state, which module/class owns it, which functions are
its sanctioned writers, and whether the runtime sanitizer write-barriers
it during fuzz runs. The parallelism rule family (RACE001-003, OWN001 in
``rules/parallelism.py``) checks the table statically through the call
graph; :mod:`repro.validation.sanitizer` asserts the same table
dynamically. DESIGN.md "Ownership & parallel-safety" is the prose form.

The table exists to make component-parallel control-plane rounds a
checked contract instead of a convention: a function listed in
``COMPONENT_SCOPED`` (and everything reachable from it) may only write
state whose ``writers`` tuple names it, may only consume cross-component
dirty state through ``MERGE_POINTS``, and may not call the shared
structure mutators in ``SHARED_MUTATOR_METHODS`` at all. ``BOUNDARIES``
are the declared exits from a component round — calls into them are not
traversed (``_request_realloc`` only sets an idempotent coalescing flag
and schedules the merge, which is commutative across components).

Matching is by attribute/function *name* (the analysis is AST-based), so
registered attribute names must be unambiguous across the codebase; the
module asserts uniqueness at import. Deliberately **not** registered:

* ``Network._cap_array`` — the fuzz harness's ``--inject-bug`` corrupts
  it on purpose; guarding it would make the negative control impossible;
* ``FlowLinkComponents._size`` / ``FlowStore._free`` — generic names
  that collide across classes and are only ever touched by their owner;
* ``MonitorRegistry.mark_links_dirty`` is not a shared mutator: it only
  appends dirty marks (commutative, order-free), the sanctioned
  dirty-producer pattern, like ``FlowLinkComponents.attach``/``detach``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "BOUNDARIES",
    "COMPONENT_SCOPED",
    "MERGE_POINTS",
    "OWNERSHIP",
    "SHARED_MUTATOR_METHODS",
    "SharedState",
    "state_by_attr",
]

#: Functions whose bodies (and transitive callees) form a per-component
#: round: the incremental refill of one dirty component set, the
#: per-monitor slice of the batched Algorithm 1 round, and the parallel
#: backend's worker entry points (``repro.simulator.parallel``) — the
#: code that actually executes concurrently on pool workers, one demand
#: bucket per task, so its closure must be provably free of shared-state
#: writes. ``batch_path_state_arrays`` is the control-plane chunk task
#: the backend fans across threads (a pure gather over network arrays).
COMPONENT_SCOPED: Tuple[str, ...] = (
    "_refill_dirty",
    "_schedule_one_arrays",
    "_fill_bucket_worker",
    "_fill_bucket_worker_shm",
    "batch_path_state_arrays",
)

#: The declared merge points: the only functions through which
#: cross-component dirty state may be consumed (``consume_dirty`` pops
#: the dirty-root set; ``scatter_link_loads`` is the ordered accumulation
#: that merges per-component rates into the persistent load array).
MERGE_POINTS: Tuple[str, ...] = ("consume_dirty", "scatter_link_loads")

#: Declared exits from a component round; the call-graph traversal stops
#: here. ``_request_realloc`` is safe to invoke from component-scoped
#: code because it only sets the idempotent ``_realloc_pending``
#: coalescing flag — concurrent rounds requesting a reallocation commute.
BOUNDARIES: Tuple[str, ...] = ("_request_realloc",)

#: Method names whose call sites mutate globally shared structures: the
#: component-partition epoch rebuild, the event heap, and the monitor
#: registry's CSR layout. RACE003 flags any call to these from
#: component-scoped code.
SHARED_MUTATOR_METHODS: Tuple[str, ...] = (
    "rebuild",
    "schedule_at",
    "schedule_in",
    "reschedule",
    "_append_pair",
    "_reserve",
    "_refresh",
    "_compact",
)


@dataclass(frozen=True)
class SharedState:
    """One registered piece of shared mutable simulator state.

    ``writers`` are bare function names (methods or property setters)
    allowed to mutate the state — the granularity RACE001 checks inside
    component-scoped code and the set the runtime sanitizer unlocks
    write barriers for. ``owner_modules`` are the dotted modules allowed
    to *create* (rebind) the attribute (OWN001). ``category`` is
    ``"global"`` (one structure for the whole fabric), ``"partitioned"``
    (naturally sliced per component/flow/monitor), or ``"dirty"`` (a
    cross-component invalidation buffer, readable only at merge points —
    RACE002).
    """

    name: str
    attr: str
    owner_class: str
    owner_modules: Tuple[str, ...]
    writers: Tuple[str, ...]
    category: str
    runtime_guarded: bool = False

    def __post_init__(self) -> None:
        if self.category not in ("global", "partitioned", "dirty"):
            raise ValueError(f"bad category {self.category!r} for {self.name}")


#: Modules that may create/rebind FlowStore columns: the store itself
#: (allocation, growth), the Flow view (the sanctioned per-flow write
#: path), and the network (settle/refill write columns directly).
_COLUMN_OWNERS: Tuple[str, ...] = (
    "repro.simulator.flowstore",
    "repro.simulator.flows",
    "repro.simulator.network",
)

#: Store/view mechanism writers shared by every column: row lifecycle
#: plus the bind/unbind push/snapshot.
_COLUMN_MECHANISM: Tuple[str, ...] = (
    "__init__",
    "acquire",
    "release",
    "_reset_row",
    "_grow",
    "bind_store",
)


def _column(attr: str, *writers: str) -> SharedState:
    return SharedState(
        name=f"flow-store column {attr}",
        attr=attr,
        owner_class="FlowStore",
        owner_modules=_COLUMN_OWNERS,
        writers=_COLUMN_MECHANISM + writers,
        category="partitioned",
        runtime_guarded=True,
    )


def _network(attr: str, category: str, guarded: bool, *writers: str) -> SharedState:
    return SharedState(
        name=f"network per-link array {attr}" if guarded else f"network {attr}",
        attr=attr,
        owner_class="Network",
        owner_modules=("repro.simulator.network",),
        writers=("__init__",) + writers,
        category=category,
        runtime_guarded=guarded,
    )


def _owned(
    cls: str, module: str, attr: str, category: str, *writers: str
) -> SharedState:
    return SharedState(
        name=f"{cls}.{attr}",
        attr=attr,
        owner_class=cls,
        owner_modules=(module,),
        writers=("__init__",) + writers,
        category=category,
    )


#: The table. Writer names are audited against the real classes by
#: ``tests/test_parallel_safety.py`` (ownership-registry completeness),
#: so entries cannot silently rot as the simulator evolves.
OWNERSHIP: Tuple[SharedState, ...] = (
    # -- Network per-link arrays (global fabric state) ---------------------
    _network("_load_array", "global", True, "_refill_full", "_refill_dirty"),
    _network("_util_array", "global", True, "_refill_full", "_refill_dirty"),
    _network("_peak_util_array", "global", True, "_refill_full", "_refill_dirty"),
    _network("_total_array", "global", True, "_adjust_link_counts"),
    _network("_eleph_array", "global", True, "_adjust_link_counts"),
    _network("_failed_mask", "global", True, "fail_link", "restore_link"),
    _network(
        "_retired_link_ids",
        "dirty",
        False,
        "reroute_flow",
        "_on_completion_event",
        "_refill_full",
        "_refill_dirty",
    ),
    # -- FlowStore columns (partitioned per-flow hot state) ----------------
    _column("flow_id"),
    _column(
        "rate_bps", "_refill_full", "_refill_dirty", "_scatter_store_rates",
        "reroute_flow",
    ),
    _column("goodput_factor", "reorder_retx_fraction", "_refill_full", "_refill_dirty"),
    _column("retx_fraction", "reorder_retx_fraction", "_refill_full", "_refill_dirty"),
    _column(
        "remaining_bytes", "_settle_store", "_settle_reference", "reroute_flow",
    ),
    _column("start_time"),
    _column("end_time", "_on_completion_event"),
    _column(
        "retransmitted_bytes", "_settle_store", "_settle_reference", "reroute_flow",
    ),
    _column("elephant", "is_elephant"),
    _column("live"),
    _column("monitored_path", "monitored_path_index"),
    # "component_id" here is the Flow property setter: every caller
    # below funnels through it, and the runtime sanitizer wraps it.
    _column("component_id", "component_id", "start_flow", "reroute_flow", "rebuild"),
    _column("path_switches", "reroute_flow"),
    # -- FlowLinkComponents union-find (the component partition itself) ----
    _owned(
        "FlowLinkComponents", "repro.simulator.components", "_parent",
        "partitioned", "find", "_union", "rebuild",
    ),
    _owned(
        "FlowLinkComponents", "repro.simulator.components", "_flow_sets",
        "partitioned", "_union", "_attach_links", "detach", "rebuild",
    ),
    _owned(
        "FlowLinkComponents", "repro.simulator.components", "_dirty",
        "dirty", "attach", "detach", "_union", "consume_dirty", "rebuild",
    ),
    _owned(
        "FlowLinkComponents", "repro.simulator.components", "departures",
        "partitioned", "detach", "rebuild",
    ),
    # -- MonitorRegistry CSR (global control-plane cache) ------------------
    _owned(
        "MonitorRegistry", "repro.core.registry", "_indices",
        "global", "_append_pair", "_reserve",
    ),
    _owned(
        "MonitorRegistry", "repro.core.registry", "_indptr",
        "global", "_append_pair", "_reserve",
    ),
    _owned(
        "MonitorRegistry", "repro.core.registry", "_row_band",
        "global", "_reserve", "_refresh",
    ),
    _owned(
        "MonitorRegistry", "repro.core.registry", "_row_eleph",
        "global", "_reserve", "_refresh",
    ),
    _owned(
        "MonitorRegistry", "repro.core.registry", "_link_rows",
        "global", "_append_pair", "_compact",
    ),
    _owned(
        "MonitorRegistry", "repro.core.registry", "_pending_links",
        "dirty", "mark_links_dirty", "_compact", "_refresh",
    ),
    _owned(
        "MonitorRegistry", "repro.core.registry", "_pending_rows",
        "dirty", "_append_pair", "_compact", "_refresh",
    ),
    # -- EventEngine heap (global event order; see also API002) ------------
    _owned(
        "EventEngine", "repro.simulator.engine", "_heap",
        "global", "schedule_at", "run_until",
    ),
    _owned("EventEngine", "repro.simulator.engine", "_seq", "global"),
    _owned(
        "EventEngine", "repro.simulator.engine", "_live_events",
        "global", "schedule_at", "cancel", "run_until",
    ),
    # -- PathMonitor per-pair state caches (partitioned per monitor) -------
    _owned(
        "PathMonitor", "repro.core.monitor", "state_band",
        "partitioned", "refresh", "path_states",
    ),
    _owned(
        "PathMonitor", "repro.core.monitor", "state_eleph",
        "partitioned", "refresh", "path_states", "note_shift",
    ),
)


def state_by_attr() -> Dict[str, SharedState]:
    """The table keyed by attribute name (asserted unique at import)."""
    return dict(_BY_ATTR)


_BY_ATTR: Dict[str, SharedState] = {}
for _entry in OWNERSHIP:
    if _entry.attr in _BY_ATTR:
        raise ValueError(f"ambiguous registered attribute {_entry.attr!r}")
    _BY_ATTR[_entry.attr] = _entry
