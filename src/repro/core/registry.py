"""Fleet-wide batching of DARD path-state queries.

Every live :class:`~repro.core.monitor.PathMonitor` polls the bottleneck
state of its (source ToR, destination ToR) pair's equal-cost paths once a
second. Run standalone, each poll is one ``batch_path_state`` numpy call —
thousands of tiny vectorized calls per simulated second at p=32. The
:class:`MonitorRegistry` collapses them: it stacks every registered pair's
per-path link-id CSR into **one network-wide CSR**, caches the per-row
bottleneck ``(bandwidth, elephant count)`` arrays, and answers monitor
polls from that cache. The cache is invalidated *by link*: the network
calls :meth:`mark_links_dirty` (via ``Network.link_state_watchers``)
whenever a link's elephant count or up/down state changes, and the next
poll refreshes **only the rows crossing a dirtied link** with a single
:meth:`~repro.simulator.network.Network.batch_path_state_arrays` call.

Equivalence contract (see DESIGN.md "Control-plane batching"): a cached
row always equals what a fresh per-monitor ``batch_path_state`` would
report at the same instant, bit-for-bit. Rows are independent (the
bottleneck reduction never crosses row boundaries), a row's inputs are
exactly its links' ``(capacity, failed, elephant-count)`` entries, and
every mutation of those entries marks the link dirty — so serving an
unmarked row from cache replays the identical float arithmetic.

Structure lifecycle mirrors :class:`~repro.simulator.components.
FlowLinkComponents`: pair *registration* appends rows to the stacked CSR
(amortized geometric growth) and *release* only drops a refcount; rows of
fully released pairs stay in place — still refreshed, never served — until
released rows reach half the structure, when a compaction epoch rebuilds
the stack from the live pairs. A pair re-registered before its epoch
reclaims its still-fresh rows for free, which makes the recurring
monitor churn of long runs (same ToR pairs promoted again and again)
steady-state rebuild-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.simulator.parallel import MIN_CP_FANOUT_ROWS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (monitor imports us)
    from repro.core.monitor import PairPaths
    from repro.simulator.network import Network

PairKey = Tuple[str, str]

__all__ = ["MonitorRegistry"]


class MonitorRegistry:
    """Stacked-CSR cache of per-pair path states, dirty-tracked by link."""

    #: compaction epoch: rebuild once released rows reach this fraction of
    #: the structure (and the structure is big enough to bother).
    _COMPACT_MIN_ROWS = 64

    def __init__(self, network: "Network") -> None:
        self.network = network
        network.link_state_watchers.append(self.mark_links_dirty)
        #: pair -> interned immutable path/CSR description (kept forever;
        #: topology-static, so re-registration never recomputes it).
        self._interned: Dict[PairKey, "PairPaths"] = {}
        #: pair -> live monitor count.
        self._refs: Dict[PairKey, int] = {}
        #: pair -> (row start, row count) in the stacked CSR. Pairs stay
        #: here after release until the next compaction epoch.
        self._span: Dict[PairKey, Tuple[int, int]] = {}
        # The stacked CSR and its per-row state cache, geometrically grown.
        self._indices = np.empty(1024, dtype=np.intp)
        self._indptr = np.zeros(257, dtype=np.intp)
        self._row_band = np.zeros(256, dtype=float)
        self._row_eleph = np.zeros(256, dtype=np.int64)
        self._nrows = 0
        self._nnz = 0
        #: link id -> list of global-row-id arrays crossing it (one array
        #: appended per pair registration; reset at compaction).
        self._link_rows: Dict[int, List[np.ndarray]] = {}
        #: link-id arrays reported dirty since the last refresh.
        self._pending_links: List[np.ndarray] = []
        #: explicit dirty row ranges (freshly appended pairs).
        self._pending_rows: List[np.ndarray] = []
        #: rows belonging to pairs whose refcount dropped to zero.
        self._dead_rows = 0
        # Telemetry (surfaced through DardScheduler.controlplane_stats).
        self.stat_queries = 0
        self.stat_cache_hits = 0
        self.stat_refreshes = 0
        self.stat_rows_refreshed = 0
        self.stat_rebuilds = 0
        self.stat_registrations = 0

    # -- pair lifecycle -------------------------------------------------------

    def intern_pair(self, src_tor: str, dst_tor: str) -> "PairPaths":
        """The pair's immutable path/CSR description, computed once ever."""
        from repro.core.monitor import index_pair_paths

        pair = (src_tor, dst_tor)
        pp = self._interned.get(pair)
        if pp is None:
            pp = index_pair_paths(self.network, src_tor, dst_tor)
            self._interned[pair] = pp
        return pp

    def register(self, src_tor: str, dst_tor: str) -> "PairPaths":
        """A monitor for this pair came up; returns its interned paths."""
        pair = (src_tor, dst_tor)
        pp = self.intern_pair(src_tor, dst_tor)
        refs = self._refs.get(pair, 0)
        self._refs[pair] = refs + 1
        self.stat_registrations += 1
        span = self._span.get(pair)
        if span is None:
            self._append_pair(pair, pp)
        elif refs == 0:
            # Revived before its compaction epoch: the rows were kept
            # refreshed the whole time, so reclaiming them is free.
            self._dead_rows -= span[1]
        return pp

    def release(self, src_tor: str, dst_tor: str) -> None:
        """A monitor for this pair went away (last elephant completed)."""
        pair = (src_tor, dst_tor)
        refs = self._refs.get(pair, 0) - 1
        if refs < 0:
            return
        self._refs[pair] = refs
        span = self._span.get(pair)
        if refs == 0 and span is not None:
            self._dead_rows += span[1]
            if (
                self._nrows >= self._COMPACT_MIN_ROWS
                and self._dead_rows * 2 >= self._nrows
            ):
                self._compact()

    @property
    def live_pairs(self) -> int:
        return sum(1 for refs in self._refs.values() if refs > 0)

    @property
    def rows(self) -> int:
        """Rows currently in the stacked CSR (live + not-yet-compacted)."""
        return self._nrows

    # -- structure maintenance ------------------------------------------------

    def _append_pair(self, pair: PairKey, pp: "PairPaths") -> None:
        rows = int(pp.monitored.size)
        nnz = int(pp.csr_indices.size)
        self._reserve(rows, nnz)
        start = self._nrows
        self._indices[self._nnz : self._nnz + nnz] = pp.csr_indices
        self._indptr[start + 1 : start + rows + 1] = pp.csr_indptr[1:] + self._nnz
        self._nrows += rows
        self._nnz += nnz
        self._span[pair] = (start, rows)
        for link_id, local_rows in pp.link_rows:
            self._link_rows.setdefault(link_id, []).append(local_rows + start)
        if rows:
            self._pending_rows.append(np.arange(start, start + rows, dtype=np.intp))

    def _reserve(self, rows: int, nnz: int) -> None:
        need_rows = self._nrows + rows + 1
        if need_rows > self._indptr.size:
            size = max(need_rows, 2 * self._indptr.size)
            self._indptr = np.resize(self._indptr, size)
            self._row_band = np.resize(self._row_band, size)
            self._row_eleph = np.resize(self._row_eleph, size)
        if self._nnz + nnz > self._indices.size:
            self._indices = np.resize(
                self._indices, max(self._nnz + nnz, 2 * self._indices.size)
            )

    def _compact(self) -> None:
        """Compaction epoch: rebuild the stack from the live pairs only."""
        live = [(pair, self._interned[pair]) for pair, span in self._span.items()
                if self._refs.get(pair, 0) > 0]
        self._span = {}
        self._link_rows = {}
        self._pending_links = []
        self._pending_rows = []
        self._nrows = 0
        self._nnz = 0
        self._dead_rows = 0
        self.stat_rebuilds += 1
        for pair, pp in live:
            self._append_pair(pair, pp)

    # -- dirty tracking and refresh --------------------------------------------

    def mark_links_dirty(self, link_ids: np.ndarray) -> None:
        """Network callback: these links' reported state changed."""
        if self._nrows:
            self._pending_links.append(link_ids)

    def _dirty_row_set(self) -> np.ndarray:
        chunks = list(self._pending_rows)
        if self._pending_links:
            if len(self._pending_links) == 1:
                links = np.unique(self._pending_links[0])
            else:
                links = np.unique(np.concatenate(self._pending_links))
            link_rows = self._link_rows
            for link_id in links.tolist():
                chunks.extend(link_rows.get(link_id, ()))
        self._pending_links = []
        self._pending_rows = []
        if not chunks:
            return np.empty(0, dtype=np.intp)
        if len(chunks) == 1:
            return np.unique(chunks[0])
        return np.unique(np.concatenate(chunks))

    def _refresh(self) -> None:
        rows = self._dirty_row_set()
        if not rows.size:
            return
        self.stat_refreshes += 1
        self.stat_rows_refreshed += int(rows.size)
        if rows.size == self._nrows:
            band, eleph = self._batched_rows_state(
                self._indices[: self._nnz], self._indptr[: self._nrows + 1]
            )
            self._row_band[: self._nrows] = band
            self._row_eleph[: self._nrows] = eleph
            return
        # Gather the dirty rows into a sub-CSR (pure index arithmetic, no
        # python loop), refresh them with one vectorized call, scatter back.
        starts = self._indptr[rows]
        lengths = self._indptr[rows + 1] - starts
        sub_indptr = np.zeros(rows.size + 1, dtype=np.intp)
        np.cumsum(lengths, out=sub_indptr[1:])
        total = int(sub_indptr[-1])
        offsets = (
            np.arange(total, dtype=np.intp)
            - np.repeat(sub_indptr[:-1], lengths)
            + np.repeat(starts, lengths)
        )
        band, eleph = self._batched_rows_state(self._indices[offsets], sub_indptr)
        self._row_band[rows] = band
        self._row_eleph[rows] = eleph

    def _batched_rows_state(
        self, indices: np.ndarray, indptr: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Path state for a row CSR, chunked across the parallel backend.

        ``batch_path_state_arrays`` is row-independent and write-pure (it
        reads the dense link columns and returns fresh arrays), so
        contiguous row chunks reassembled in chunk order are positionally
        identical to the single combined call — the cache scatter stays in
        :meth:`_refresh`, the registry's sanctioned writer. Chunk bounds
        are integer arithmetic over the row count alone: the same refresh
        fans out the same way on every machine. Small refreshes (the
        steady-state common case) stay on the combined call.
        """
        network = self.network
        backend = network.parallel
        nrows = indptr.size - 1
        if backend.workers < 2 or nrows < MIN_CP_FANOUT_ROWS:
            return network.batch_path_state_arrays(indices, indptr)
        workers = backend.workers
        payloads: List[Tuple[np.ndarray, np.ndarray]] = []
        for k in range(workers):
            lo = nrows * k // workers
            hi = nrows * (k + 1) // workers
            if lo == hi:
                continue
            chunk_indptr = indptr[lo : hi + 1] - indptr[lo]
            chunk_indices = indices[indptr[lo] : indptr[hi]]
            payloads.append((chunk_indices, chunk_indptr))
        results = backend.run_tasks(network.batch_path_state_arrays, payloads)
        band = np.concatenate([pair[0] for pair in results])
        eleph = np.concatenate([pair[1] for pair in results])
        return band, eleph

    # -- the query surface ------------------------------------------------------

    def pair_rows(self, src_tor: str, dst_tor: str) -> Tuple[np.ndarray, np.ndarray]:
        """Current ``(bandwidth, elephant count)`` rows of one pair.

        Returns read-only-by-convention views into the shared cache, one
        entry per *monitored* path of the pair, in the pair's CSR row
        order. Refreshes every dirty row of the whole fleet first — so the
        first monitor polled at a sync tick pays one batched call and the
        rest are pure cache reads.
        """
        self.stat_queries += 1
        if self._pending_links or self._pending_rows:
            self._refresh()
        else:
            self.stat_cache_hits += 1
        start, count = self._span[(src_tor, dst_tor)]
        return (
            self._row_band[start : start + count],
            self._row_eleph[start : start + count],
        )

    # -- telemetry ---------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Registry telemetry, merged into ``Network.perf_stats()``."""
        return {
            "cp_registry_pairs": float(self.live_pairs),
            "cp_registry_rows": float(self._nrows),
            "cp_registry_queries": float(self.stat_queries),
            "cp_registry_cache_hits": float(self.stat_cache_hits),
            "cp_registry_refreshes": float(self.stat_refreshes),
            "cp_registry_rows_refreshed": float(self.stat_rows_refreshed),
            "cp_registry_rebuilds": float(self.stat_rebuilds),
            "cp_registry_registrations": float(self.stat_registrations),
        }
