"""The per-host DARD daemon (paper §3.1).

Owns the host's monitors and runs Algorithm 1 (*selfish flow scheduling*)
over each of them: pick the monitored path with the largest BoNF and the
host's own active path with the smallest; if moving one elephant to the
former raises the bottleneck estimate by more than δ, re-encapsulate one
elephant flow onto the better path.

Two execution modes with bit-identical decisions (the differential oracle
in ``repro.validation.oracles`` enforces this):

* **vectorized** (default) — one scheduling round evaluates every monitor
  at once over a padded (monitors × paths) BoNF matrix. ``_best_target``
  becomes a masked argmax (ties toward the higher post-shift estimate,
  then the lower index), ``_worst_active`` an argmin over active paths
  (first-minimum ties), and the δ-test a boolean mask; only monitors whose
  test fires fall back to the scalar tail (pick the flow, reroute it,
  apply the optimistic within-round update). FV is assembled from each
  flow's integer ``monitored_path_index`` — no switch-path tuple hashing.
* **scalar** — the original per-monitor loop over ``PathState`` objects,
  kept as the reference implementation for the scalar-vs-batched oracle.

The matrix is a *snapshot* of the monitors' cached states, which is
exactly what the sequential loop sees too: monitors are disjoint per
(src ToR, dst ToR) pair, each monitor makes at most one decision per
round, and a shift only touches its own monitor's state and its own
pair's FV — so evaluating all decisions up front is order-equivalent to
the scalar sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.addressing.codec import PathCodec
from repro.common.logging import get_logger
from repro.scheduling.base import encode_and_verify
from repro.scheduling.messages import MessageLedger, MessageSizes
from repro.simulator.flows import Flow, FlowComponent
from repro.simulator.network import Network
from repro.core.monitor import PathMonitor
from repro.core.registry import MonitorRegistry

PairKey = Tuple[str, str]
ShiftRecord = Tuple[float, str, int, int, int]

#: Below this many (monitors x paths) matrix cells the vectorized round
#: runs its plain-float small-fleet path instead — numpy's fixed per-op
#: cost only amortizes once the padded matrix is reasonably large.
_SMALL_ROUND_CELLS = 128

logger = get_logger("core.daemon")


class HostDaemon:
    """Detector + monitors + selfish scheduler for one end host."""

    def __init__(
        self,
        host: str,
        network: Network,
        codec: PathCodec,
        ledger: MessageLedger,
        delta_bps: float,
        message_sizes: MessageSizes = MessageSizes(),
        registry: Optional[MonitorRegistry] = None,
        vectorized: bool = True,
        shift_log: Optional[List[ShiftRecord]] = None,
    ) -> None:
        self.host = host
        self.network = network
        self.codec = codec
        self.ledger = ledger
        self.delta_bps = delta_bps
        self.message_sizes = message_sizes
        self.registry = registry
        self.vectorized = vectorized
        #: shared ``(time, host, flow id, from index, to index)`` shift
        #: journal, appended in event order (the scheduler passes one list
        #: to every daemon so the fleet-wide sequence stays comparable
        #: across execution modes). ``None`` disables journaling.
        self.shift_log = shift_log
        self.monitors: Dict[PairKey, PathMonitor] = {}
        #: live elephant flows of this host, grouped by (src ToR, dst ToR).
        self.elephants: Dict[PairKey, List[Flow]] = {}
        self.shifts_performed = 0
        #: telemetry: vectorized rounds run vs per-shift scalar tails.
        self.vector_rounds = 0
        self.scalar_rounds = 0
        self.shift_tails = 0

    # -- detector callbacks ------------------------------------------------------

    def on_elephant(self, flow: Flow) -> None:
        """A local TCP connection crossed the 10 s elephant threshold."""
        pair = self._pair_of(flow)
        src_tor, dst_tor = pair
        if src_tor == dst_tor:
            return  # single trivial path; nothing to monitor or schedule
        self.elephants.setdefault(pair, []).append(flow)
        monitor = self.monitors.get(pair)
        if monitor is None:
            monitor = PathMonitor(
                self.network, src_tor, dst_tor, self.ledger,
                self.message_sizes, registry=self.registry,
            )
            self.monitors[pair] = monitor
        # Integer FV fast path: remember which monitored path the flow is
        # on now, so per-round accounting never re-hashes path tuples.
        flow.monitored_path_index = monitor.path_index(
            tuple(flow.switch_path()[1:-1])
        )

    def on_flow_completed(self, flow: Flow) -> None:
        """Release monitors whose last elephant finished (paper §2.4.1)."""
        pair = self._pair_of(flow)
        flows = self.elephants.get(pair)
        if not flows:
            return
        self.elephants[pair] = [f for f in flows if f.flow_id != flow.flow_id]
        if not self.elephants[pair]:
            del self.elephants[pair]
            monitor = self.monitors.pop(pair, None)
            if monitor is not None:
                monitor.release()

    def _pair_of(self, flow: Flow) -> PairKey:
        topo = self.network.topology
        return (topo.tor_of(flow.src), topo.tor_of(flow.dst))

    # -- monitoring ---------------------------------------------------------------

    def query_monitors(self) -> None:
        """Periodic switch-state polling for every live monitor.

        The vectorized mode refreshes the raw state arrays only; the
        scalar reference keeps the original implementation's behavior and
        materializes the per-path :class:`PathState` view on every poll
        (``bench_perf_controlplane`` measures exactly this difference).
        """
        if not self.monitors:
            return
        if self.vectorized:
            for monitor in self.monitors.values():
                monitor.refresh()
        else:
            for monitor in self.monitors.values():
                monitor.query()

    # -- Algorithm 1: selfish flow scheduling ----------------------------------------

    def flow_vector(self, monitor: PathMonitor) -> List[int]:
        """FV: how many of this host's elephants ride each monitored path.

        The scalar reference implementation — recomputes each flow's path
        position from its switch-path tuple. The vectorized round uses
        :meth:`_fill_flow_counts` over ``Flow.monitored_path_index``
        instead; both count the same flows.
        """
        counts = [0] * len(monitor.paths)
        for flow in self.elephants.get((monitor.src_tor, monitor.dst_tor), []):
            if not flow.active:
                continue
            switch_path = tuple(flow.switch_path()[1:-1])
            counts[monitor.path_index(switch_path)] += 1
        return counts

    def _fill_flow_counts(self, monitor: PathMonitor, out: np.ndarray) -> None:
        """FV via the integer fast path, accumulated into ``out``."""
        for flow in self.elephants.get((monitor.src_tor, monitor.dst_tor), []):
            if flow.active:
                out[flow.monitored_path_index] += 1

    def run_scheduling_round(self) -> int:
        """One selfish round over all monitors; returns number of shifts."""
        if self.vectorized:
            return self._run_round_vectorized()
        shifts = 0
        self.scalar_rounds += 1
        for monitor in list(self.monitors.values()):
            if self._schedule_one(monitor):
                shifts += 1
        self.shifts_performed += shifts
        return shifts

    def _run_round_vectorized(self) -> int:
        """Algorithm 1 over all monitors as one padded-matrix evaluation.

        Tie-breaking is proven identical to the scalar loop:

        * ``_best_target`` keeps the *first* index of the lexicographic
          maximum ``(bonf, post-shift estimate)`` — here: mask the row
          maximum of ``bonf``, take the estimate maximum within the mask,
          and ``argmax`` (first True) of the conjunction;
        * ``_worst_active`` keeps the *first* active index of the minimum
          ``bonf`` — here: ``argmin`` (first minimum) over ``bonf`` with
          inactive paths lifted to +inf, falling back to the first active
          index when every active path's bonf is infinite (argmin could
          otherwise land on an inactive path);
        * padding columns get ``bonf 0, estimate -1``, strictly below any
          real path's ``(bonf >= 0, estimate >= 0)``, and ``FV 0`` (never
          active), so they are never selected.
        """
        monitors = list(self.monitors.values())
        self.vector_rounds += 1
        if not monitors:
            return 0
        num_monitors = len(monitors)
        width = max(len(monitor.paths) for monitor in monitors)
        if num_monitors * width <= _SMALL_ROUND_CELLS:
            # Tiny fleets (the common case: a host rarely talks to more
            # than a couple of ToR pairs) are cheaper without the padded
            # matrix — same decision procedure, plain floats.
            shifts = 0
            for monitor in monitors:
                if self._schedule_one_arrays(monitor):
                    shifts += 1
            self.shifts_performed += shifts
            return shifts
        band = np.full((num_monitors, width), -1.0)
        eleph = np.zeros((num_monitors, width), dtype=np.int64)
        flow_counts = np.zeros((num_monitors, width), dtype=np.int64)
        for i, monitor in enumerate(monitors):
            k = monitor.state_band.size
            band[i, :k] = monitor.state_band
            eleph[i, :k] = monitor.state_eleph
            self._fill_flow_counts(monitor, flow_counts[i])
        # PathState.bonf / bonf_with_one_more_flow(), vectorized with the
        # same guarded idiom (and IEEE float64 ops) as the scalar code.
        bonf = np.where(
            band <= 0.0,
            0.0,
            np.where(eleph > 0, band / np.maximum(eleph, 1), np.inf),
        )
        estimate = np.where(band <= 0.0, 0.0, band / (eleph + 1.0))
        estimate = np.where(band < 0.0, -1.0, estimate)
        rows = np.arange(num_monitors)
        # _best_target: first index of the lexicographic (bonf, est) max.
        is_row_max = bonf == bonf.max(axis=1)[:, None]
        est_masked = np.where(is_row_max, estimate, -np.inf)
        best = np.argmax(
            is_row_max & (est_masked == est_masked.max(axis=1)[:, None]), axis=1
        )
        # _worst_active: first active index of the min bonf.
        active = flow_counts > 0
        keyed = np.where(active, bonf, np.inf)
        worst = np.argmin(keyed, axis=1)
        has_active = active.any(axis=1)
        all_inf = np.isinf(keyed[rows, worst])
        worst = np.where(all_inf, np.argmax(active, axis=1), worst)
        # The δ-test, spelled as the scalar code's negated early-return so
        # even degenerate float corners (inf - inf) behave identically.
        with np.errstate(invalid="ignore"):
            gain = estimate[rows, best] - bonf[rows, worst]
            fires = has_active & (best != worst) & ~(gain <= self.delta_bps)
        shifts = 0
        for i in np.flatnonzero(fires):
            monitor = monitors[i]
            flow = self._pick_flow_indexed(monitor, int(worst[i]))
            if flow is None:
                continue
            self.shift_tails += 1
            self._shift(flow, monitor, int(best[i]), int(worst[i]))
            shifts += 1
        self.shifts_performed += shifts
        return shifts

    def _schedule_one_arrays(self, monitor: PathMonitor) -> bool:
        """:meth:`_schedule_one` over the raw state arrays (no PathState
        objects, integer FV) — the vectorized mode's small-fleet path.

        One pass computes each path's ``(bonf, post-shift estimate)`` with
        the exact guarded idiom of :class:`PathState` (same IEEE float64
        divisions — ``tolist`` yields doubles) while tracking the
        lexicographic-max target (strict-greater keeps the first tie,
        like ``_best_target``) and the min-BoNF active path
        (strict-less keeps the first, like ``_worst_active``).
        """
        band = monitor.state_band.tolist()
        eleph = monitor.state_eleph.tolist()
        counts = [0] * len(band)
        for flow in self.elephants.get((monitor.src_tor, monitor.dst_tor), []):
            if flow.active:
                counts[flow.monitored_path_index] += 1
        best = worst = None
        best_bonf = best_est = worst_bonf = 0.0
        inf = float("inf")
        for i, b in enumerate(band):
            e = eleph[i]
            if b <= 0.0:
                bonf = est = 0.0
            elif e > 0:
                bonf = b / e
                est = b / (e + 1.0)
            else:
                bonf = inf
                est = b
            if best is None or bonf > best_bonf or (
                bonf == best_bonf and est > best_est
            ):
                best, best_bonf, best_est = i, bonf, est
            if counts[i] > 0 and (worst is None or bonf < worst_bonf):
                worst, worst_bonf = i, bonf
        if best is None or worst is None or best == worst:
            return False
        if best_est - worst_bonf <= self.delta_bps:
            return False
        flow = self._pick_flow_indexed(monitor, worst)
        if flow is None:
            return False
        self.shift_tails += 1
        self._shift(flow, monitor, best, worst)
        return True

    def _schedule_one(self, monitor: PathMonitor) -> bool:
        states = monitor.path_states
        flow_vector = self.flow_vector(monitor)
        max_index = self._best_target(states)
        min_index = self._worst_active(states, flow_vector)
        if max_index is None or min_index is None or max_index == min_index:
            return False
        estimation = states[max_index].bonf_with_one_more_flow()
        min_bonf = states[min_index].bonf
        if estimation - min_bonf <= self.delta_bps:
            return False
        flow = self._pick_flow(monitor, min_index)
        if flow is None:
            return False
        self._shift(flow, monitor, max_index, min_index)
        return True

    @staticmethod
    def _best_target(states) -> Optional[int]:
        """The path with the largest BoNF; ties break toward the higher
        post-shift estimate, then the lower index (deterministic)."""
        best = None
        for i, state in enumerate(states):
            if best is None:
                best = i
                continue
            current = states[best]
            if (state.bonf, state.bonf_with_one_more_flow()) > (
                current.bonf,
                current.bonf_with_one_more_flow(),
            ):
                best = i
        return best

    @staticmethod
    def _worst_active(states, flow_vector) -> Optional[int]:
        """The smallest-BoNF path this host actually sends elephants on.

        A host cannot shift a flow off a path it does not contribute to
        (§2.5's "inactive path" rule).
        """
        worst = None
        for i, state in enumerate(states):
            if flow_vector[i] <= 0:
                continue
            if worst is None or state.bonf < states[worst].bonf:
                worst = i
        return worst

    def _pick_flow(self, monitor: PathMonitor, path_index: int) -> Optional[Flow]:
        target = monitor.paths[path_index]
        for flow in self.elephants.get((monitor.src_tor, monitor.dst_tor), []):
            if flow.active and tuple(flow.switch_path()[1:-1]) == target:
                return flow
        return None

    def _pick_flow_indexed(
        self, monitor: PathMonitor, path_index: int
    ) -> Optional[Flow]:
        """First active elephant on a path, by integer index comparison."""
        for flow in self.elephants.get((monitor.src_tor, monitor.dst_tor), []):
            if flow.active and flow.monitored_path_index == path_index:
                return flow
        return None

    def _shift(
        self, flow: Flow, monitor: PathMonitor, to_index: int, from_index: int
    ) -> None:
        """Re-encapsulate ``flow`` onto a new path via its address pair."""
        new_path = monitor.paths[to_index]
        # The route change is expressed purely as an address-pair swap; the
        # codec round-trip asserts the static tables will honor it.
        encode_and_verify(self.codec, flow.src, flow.dst, new_path)
        component = FlowComponent(
            self.network.topology.host_path(flow.src, flow.dst, new_path)
        )
        logger.debug(
            "t=%.2f host %s shifts flow %d to path %s",
            self.network.now, self.host, flow.flow_id, new_path,
        )
        self.network.reroute_flow(flow, [component])
        flow.monitored_path_index = to_index
        # Optimistically update local state so later decisions in this
        # round see the shift — both the landing and the vacated path (the
        # next query refreshes ground truth).
        monitor.note_shift(from_index, to_index)
        if self.shift_log is not None:
            self.shift_log.append(
                (self.network.now, self.host, flow.flow_id, from_index, to_index)
            )
