"""Baseline schedulers the paper compares DARD against (§4).

* :class:`EcmpScheduler` — static per-flow hashing (RFC 2992), the default
  the paper's improvement numbers are measured relative to;
* :class:`PeriodicVlbScheduler` — flow-level Valiant load balancing with a
  periodic random re-pick, the paper's "pVLB" variant;
* :class:`HederaScheduler` — centralized demand estimation + simulated
  annealing (Al-Fares et al., NSDI 2010), the paper's "Simulated
  Annealing" curve;
* :class:`TexcpScheduler` — distributed, load-sensitive *packet-level*
  traffic engineering (Kandula et al., SIGCOMM 2005), used in §4.3.3.
"""

from repro.baselines.ecmp import EcmpScheduler
from repro.baselines.gff import GlobalFirstFitScheduler
from repro.baselines.hedera import HederaScheduler, estimate_demands
from repro.baselines.texcp import TexcpScheduler
from repro.baselines.vlb import PeriodicVlbScheduler

__all__ = [
    "EcmpScheduler",
    "GlobalFirstFitScheduler",
    "HederaScheduler",
    "PeriodicVlbScheduler",
    "TexcpScheduler",
    "estimate_demands",
]
