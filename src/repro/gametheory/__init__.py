"""The congestion-game formalization of DARD's flow scheduling (Appendix B).

The paper models selfish flow scheduling as a congestion game
``(F, G, {r_f})`` and proves (Theorem 2) that asynchronous selfish moves
strictly decrease a lexicographic potential — the *state vector* ``SV(s)``
counting links per BoNF bucket of width δ — so the dynamics converge to a
Nash equilibrium in finitely many steps, and the lexicographically smallest
strategy is both globally optimal and a Nash equilibrium.

This package implements the game abstractly (any link set, any route sets)
so the theorems can be checked directly, plus a bridge that snapshots a
live :class:`repro.simulator.network.Network` into a game instance.
"""

from repro.gametheory.congestion_game import (
    CongestionGame,
    GameFlow,
    compare_state_vectors,
)
from repro.gametheory.bridge import game_from_network
from repro.gametheory.study import ConvergenceRow, convergence_study, random_game_on
from repro.gametheory.theorems import (
    NashCertificate,
    check_theorem1_bound,
    nash_certificate,
    run_best_response_dynamics,
)

__all__ = [
    "CongestionGame",
    "ConvergenceRow",
    "GameFlow",
    "NashCertificate",
    "check_theorem1_bound",
    "nash_certificate",
    "compare_state_vectors",
    "convergence_study",
    "game_from_network",
    "random_game_on",
    "run_best_response_dynamics",
]
