"""Poisson flow-arrival process driving a scheduler."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import MB
from repro.simulator.engine import EventEngine
from repro.workloads.patterns import TrafficPattern

#: The paper's elephant flow payload: a 128 MB FTP transfer.
DEFAULT_FLOW_SIZE_BYTES = 128 * MB


@dataclass(frozen=True)
class WorkloadSpec:
    """Arrival parameters for one experiment.

    ``arrival_rate_per_host`` is the expected number of flows each source
    host generates per second (the paper's "flow generating rate");
    inter-arrival times are exponential. Arrivals stop at ``duration_s``
    but flows already admitted run to completion.
    """

    arrival_rate_per_host: float
    duration_s: float
    flow_size_bytes: float = DEFAULT_FLOW_SIZE_BYTES

    def __post_init__(self) -> None:
        if self.arrival_rate_per_host <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.arrival_rate_per_host}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration_s}")
        if self.flow_size_bytes <= 0:
            raise ConfigurationError(f"flow size must be positive, got {self.flow_size_bytes}")


class ArrivalProcess:
    """Schedules flow arrivals onto an event engine.

    One independent Poisson process per source host; each arrival asks the
    pattern for a destination and hands the flow to ``sink`` (normally
    ``scheduler.place``).
    """

    def __init__(
        self,
        engine: EventEngine,
        pattern: TrafficPattern,
        spec: WorkloadSpec,
        sink: Callable[[str, str, float], object],
        rng: np.random.Generator,
        max_flows: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.pattern = pattern
        self.spec = spec
        self.sink = sink
        self.rng = rng
        self.max_flows = max_flows
        self.flows_generated = 0

    def start(self) -> None:
        """Arm the first arrival for every source host."""
        for host in self.pattern.hosts:
            self._schedule_next(host)

    def _schedule_next(self, host: str) -> None:
        gap = float(self.rng.exponential(1.0 / self.spec.arrival_rate_per_host))
        when = self.engine.now + gap
        if when > self.spec.duration_s:
            return
        self.engine.schedule_at(when, lambda h=host: self._arrive(h))

    def _arrive(self, host: str) -> None:
        if self.max_flows is None or self.flows_generated < self.max_flows:
            dst = self.pattern.pick_dst(host, self.rng)
            self.sink(host, dst, self.spec.flow_size_bytes)
            self.flows_generated += 1
        self._schedule_next(host)
