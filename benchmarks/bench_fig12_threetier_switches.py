"""Figure 12: DARD path-switch counts on the 3-tier topology.

Paper shape: '90% of the flows shift their paths no more than twice' even
with oversubscription larger than 1.
"""

from repro.experiments.figures import fig12_threetier_switches
from conftest import run_once


def test_fig12_threetier_switches(benchmark, save_output):
    output = run_once(benchmark, fig12_threetier_switches, duration_s=60.0)
    save_output(output)
    for row in output.rows:
        assert row["p90"] <= 3, row
        assert row["max"] < 32, row  # far below the 32 available paths
