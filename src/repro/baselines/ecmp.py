"""Equal-Cost Multi-Path forwarding (RFC 2992; paper's ECMP baseline).

A flow's path is a hash of its five-tuple — source and destination
addresses plus ephemeral ports — modulo the number of equal-cost paths
(§4.2: "the hashing function is defined as the source and destination IP
addresses and ports modulo the number of paths"). The choice is static for
the flow's lifetime, which is exactly how long-lived elephants end up
permanently colliding on one link.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.scheduling.base import Scheduler
from repro.simulator.flows import FlowComponent


def five_tuple_hash(src: str, dst: str, sport: int, dport: int, buckets: int) -> int:
    """Deterministic header hash onto ``buckets`` next-hop choices."""
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    digest = hashlib.sha256(f"{src}:{dst}:{sport}:{dport}:tcp".encode()).digest()
    return int.from_bytes(digest[:8], "big") % buckets


class EcmpScheduler(Scheduler):
    """Static random flow-level scheduling via header hashing.

    On a link failure the routing protocol re-converges and affected flows
    re-hash onto the surviving next hops; that reaction is modelled by
    :meth:`Scheduler.evacuate_failed_link` with a hash-based pick.
    """

    name = "ecmp"

    def attach(self, ctx) -> None:
        super().attach(ctx)
        ctx.network.link_failed_listeners.append(self._on_link_failed)

    def _hash_pick(self, paths):
        sport = int(self.ctx.rng.integers(1024, 65536))
        dport = int(self.ctx.rng.integers(1024, 65536))
        return paths[five_tuple_hash("rehash", "rehash", sport, dport, len(paths))]

    def _on_link_failed(self, u: str, v: str) -> None:
        self.evacuate_failed_link(u, v, self._hash_pick)

    def choose_components(self, src: str, dst: str) -> List[FlowComponent]:
        paths = self.alive_paths(src, dst)
        sport = int(self.ctx.rng.integers(1024, 65536))
        dport = int(self.ctx.rng.integers(1024, 65536))
        index = five_tuple_hash(src, dst, sport, dport, len(paths))
        return [self.component_for(src, dst, paths[index])]
