"""Connected components of the flow-link incidence graph.

Weighted max-min allocation decomposes exactly across the connected
components of the bipartite incidence graph (flows x the links they
cross): progressive filling's arithmetic on a link only ever reads and
writes state of demands crossing that link, so water-filling each
component in isolation produces bit-identical rates to one global fill
(see DESIGN.md "Component decomposition"). :class:`FlowLinkComponents`
maintains that partition online so the network can re-fill **only the
components a membership change touched**.

The structure is a union-find over dense link ids (the network's
:class:`~repro.simulator.linkindex.LinkIndex` universe) with a flow-id
set attached to each live root:

* **attach** (flow start / reroute landing) unions the flow's links into
  one component and marks its root dirty;
* **detach** (flow completion / reroute leaving) removes the flow from
  its root's set and marks the root dirty — the union structure itself is
  *not* split, so after departures a "component" may over-approximate the
  true partition. Over-approximation is safe (re-filling extra demands is
  still exact) but erodes the incremental win, so departures are counted
  and the owner periodically calls :meth:`rebuild` — the
  rebuild-on-departure *epoch* rule;
* **consume_dirty** pops the dirty set, yielding every flow that must be
  re-water-filled this round.

Dirty marks survive unions: merging two roots moves the absorbed root's
dirty mark (and flow set) onto the surviving root, so the dirty set only
ever names live roots.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

__all__ = ["FlowLinkComponents"]


class FlowLinkComponents:
    """Union-find over link ids with per-component flow sets + dirty marks."""

    __slots__ = ("_parent", "_size", "_flow_sets", "_dirty", "departures")

    def __init__(self, num_links: int) -> None:
        self._parent: List[int] = list(range(num_links))
        self._size: List[int] = [1] * num_links
        #: live root -> ids of flows attached to that component. Roots with
        #: no flows have no entry, so ``len(_flow_sets)`` is the live
        #: component count.
        self._flow_sets: Dict[int, Set[int]] = {}
        #: roots invalidated since the last :meth:`consume_dirty`.
        self._dirty: Set[int] = set()
        #: detaches since the last :meth:`rebuild`; the owner uses this to
        #: decide when the over-approximated partition is worth recomputing.
        self.departures = 0

    # -- union-find core -----------------------------------------------------

    def find(self, link_id: int) -> int:
        """Root of the component containing ``link_id`` (path-compressing)."""
        parent = self._parent
        root = link_id
        while parent[root] != root:
            root = parent[root]
        while parent[link_id] != root:
            parent[link_id], link_id = root, parent[link_id]
        return root

    def find_roots(self, link_ids: Iterable[int]) -> List[int]:
        """Component root per link id, in order (path-compressing).

        The parallel backend's partition step: one representative link per
        demand in, one root per demand out — demands sharing a root must
        ride the same worker bucket so every link's accumulation order
        stays serial (see ``repro.simulator.parallel``). The union
        structure may over-approximate after departures; over-merged roots
        just make buckets coarser, never incorrect.
        """
        return [self.find(int(link_id)) for link_id in link_ids]

    def _union(self, a: int, b: int) -> int:
        """Merge two distinct roots; returns the surviving root.

        Union by size; the absorbed root's flow set merges small-into-large
        and its dirty mark (if any) transfers to the survivor.
        """
        if self._size[a] < self._size[b]:
            a, b = b, a
        self._parent[b] = a
        self._size[a] += self._size[b]
        absorbed = self._flow_sets.pop(b, None)
        if absorbed is not None:
            surviving = self._flow_sets.get(a)
            if surviving is None:
                self._flow_sets[a] = absorbed
            elif len(surviving) < len(absorbed):
                absorbed.update(surviving)
                self._flow_sets[a] = absorbed
            else:
                surviving.update(absorbed)
        if b in self._dirty:
            self._dirty.discard(b)
            self._dirty.add(a)
        return a

    def _attach_links(self, flow_id: int, link_ids: Iterable[int]) -> int:
        """Union a flow's links into one component and record membership."""
        it = iter(link_ids)
        root = self.find(next(it))
        for link_id in it:
            other = self.find(link_id)
            if other != root:
                root = self._union(root, other)
        self._flow_sets.setdefault(root, set()).add(flow_id)
        return root

    # -- membership events ---------------------------------------------------

    def attach(self, flow_id: int, link_ids: Any) -> int:
        """A flow landed on these links; its component becomes dirty.

        ``link_ids`` is the flow's sorted unique link-id array (every
        component of a striped flow included — striping conservatively
        merges the strands' components, which is an over-approximation the
        exactness argument tolerates). Returns the component root at
        attach time (advisory: later unions may absorb it — the network
        records it as ``Flow.component_id`` grouping telemetry).
        """
        root = self._attach_links(flow_id, link_ids.tolist())
        self._dirty.add(root)
        return root

    def detach(self, flow_id: int, link_ids: Any) -> None:
        """A flow left these links; its component becomes dirty.

        The union structure keeps the (possibly now disconnected) merge —
        splits only happen at the next :meth:`rebuild` epoch.
        """
        root = self.find(int(link_ids[0]))
        members = self._flow_sets.get(root)
        if members is not None:
            members.discard(flow_id)
            if not members:
                del self._flow_sets[root]
        self._dirty.add(root)
        self.departures += 1

    # -- dirty-set consumption -----------------------------------------------

    def consume_dirty(self) -> Tuple[int, List[int]]:
        """Pop the dirty set: ``(live components touched, sorted flow ids)``.

        ``flow ids`` is every flow in any dirty component, ascending —
        ascending order matches the network's flow-dict iteration order, so
        a dirty-only CSR preserves the full assembly's per-link arithmetic
        sequence (the bit-exactness requirement). Dirty roots whose flows
        all departed contribute no flows and are not counted as touched.
        """
        dirty = self._dirty
        self._dirty = set()
        touched = 0
        flow_ids: Set[int] = set()
        for root in sorted(dirty):
            members = self._flow_sets.get(root)
            if members:
                touched += 1
                flow_ids.update(members)
        return touched, sorted(flow_ids)

    @property
    def dirty_count(self) -> int:
        """Dirty roots currently pending (testing/telemetry convenience)."""
        return len(self._dirty)

    @property
    def live_components(self) -> int:
        """Number of components currently carrying at least one flow."""
        return len(self._flow_sets)

    # -- epochs ----------------------------------------------------------------

    def rebuild(self, flows: Iterable[Any]) -> None:
        """Recompute the partition from scratch over the live flows.

        Starts a fresh epoch: resets the union structure, re-attaches every
        flow (splitting any departure-stale merges), clears the dirty set
        and the departure counter. Called by the network after every full
        fill and whenever :attr:`departures` crosses its epoch threshold.
        """
        num_links = len(self._parent)
        self._parent = list(range(num_links))
        self._size = [1] * num_links
        self._flow_sets = {}
        self._dirty = set()
        self.departures = 0
        for flow in flows:
            flow.component_id = self._attach_links(
                flow.flow_id, flow.unique_link_ids.tolist()
            )

    # -- introspection (invariant checks, tests) -------------------------------

    def membership_audit(self) -> Tuple[Set[int], int]:
        """``(union of all flow sets, total memberships)`` for auditing.

        A healthy structure has ``total memberships == len(union)`` (no
        flow in two components) and the union equal to the network's live
        flow-id set.
        """
        tracked: Set[int] = set()
        total = 0
        for members in self._flow_sets.values():
            tracked.update(members)
            total += len(members)
        return tracked, total

    def component_flow_sets(self) -> List[frozenset]:
        """The live components' flow-id sets (test introspection)."""
        return [frozenset(members) for members in self._flow_sets.values()]
