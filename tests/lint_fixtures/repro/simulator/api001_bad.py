"""API001 bad fixture: _load_array written outside its refill owners."""


class FakeNetwork:
    """Minimal shape for the rule: only the attribute name matters."""

    def apply_patch(self, link_id, value):
        """Bypasses the audited scatter_link_loads splice."""
        self._load_array[link_id] = value
