"""Library logging.

Follows the standard library-logging contract: loggers live under the
``"repro"`` namespace, the library never configures handlers (a
``NullHandler`` on the root logger keeps silence by default), and
applications opt in with ``logging.basicConfig`` or
:func:`enable_console_logging`.

Hot paths (the allocator, settle loops) deliberately carry no log calls;
control-plane events (scheduling rounds, path shifts, failures) log at
DEBUG/INFO where they happen.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the library namespace: ``get_logger("core.daemon")``
    returns ``repro.core.daemon``."""
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the library root (for scripts/notebooks).

    Returns the handler so callers can remove it again.
    """
    root = logging.getLogger(_ROOT_NAME)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(name)s %(levelname)s %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(level)
    return handler
