"""Clos network topology (VL2-style; Greenberg et al., SIGCOMM 2009).

Parameterized by the intermediate-switch radix ``D_I`` and the
aggregation-switch radix ``D_A``:

* ``D_A / 2`` intermediate (core-layer) switches, each with ``D_I`` ports,
  one to every aggregation switch;
* ``D_I`` aggregation switches: ``D_A / 2`` ports up (one per intermediate)
  and ``D_A / 2`` ports down to ToRs;
* ``D_I * D_A / 4`` ToR switches, each dual-homed to two aggregation
  switches, each serving ``hosts_per_tor`` hosts.

A ToR pair in different pods has ``2 * D_A`` equal-cost paths: 2 uphill
aggregation choices x ``D_A/2`` intermediates x 2 downhill aggregation
choices. Unlike the fat-tree, picking the intermediate alone does *not*
determine the path — the uphill and downhill aggregation switches must be
named too, which is exactly why DARD keeps both uphill and downhill tables
(paper §2.3).

Node naming: ``core_{i}`` (intermediates), ``agg_{i}``, ``tor_{i}``,
``h_{tor}_{k}``. A ToR's "pod" is the index of its lower-numbered parent
aggregation switch pair.
"""

from __future__ import annotations

from repro.common.errors import TopologyError
from repro.common.units import GBPS
from repro.topology.graph import Node, NodeKind
from repro.topology.multirooted import MultiRootedTopology


class ClosNetwork(MultiRootedTopology):
    """A VL2-style Clos network with dual-homed ToR switches."""

    def __init__(
        self,
        d_i: int = 4,
        d_a: int = 4,
        hosts_per_tor: int = 2,
        link_bandwidth_bps: float = GBPS,
        host_bandwidth_bps: float = None,
        link_delay_s: float = 0.0001,
    ) -> None:
        if d_i < 2 or d_a < 2 or d_a % 2 != 0:
            raise TopologyError(f"invalid Clos radices d_i={d_i}, d_a={d_a}")
        if d_i % 2 != 0:
            raise TopologyError(f"d_i must be even (ToRs are dual-homed), got {d_i}")
        if hosts_per_tor < 1:
            raise TopologyError(f"hosts_per_tor must be >= 1, got {hosts_per_tor}")
        super().__init__()
        self.d_i = d_i
        self.d_a = d_a
        self.hosts_per_tor = hosts_per_tor
        self.link_bandwidth_bps = link_bandwidth_bps
        self.host_bandwidth_bps = (
            host_bandwidth_bps if host_bandwidth_bps is not None else link_bandwidth_bps
        )
        self._build(link_delay_s)
        self.validate()

    @property
    def num_intermediates(self) -> int:
        return self.d_a // 2

    @property
    def num_aggs(self) -> int:
        return self.d_i

    @property
    def num_tors(self) -> int:
        return self.d_i * self.d_a // 4

    @property
    def paths_per_inter_pod_pair(self) -> int:
        """2 up-aggs x D_A/2 intermediates x 2 down-aggs = 2 * D_A."""
        return 2 * self.d_a

    def _build(self, delay: float) -> None:
        for i in range(self.num_intermediates):
            self.add_node(Node(f"core_{i}", NodeKind.CORE, pod=None, index=i))
        # Aggregation switches are paired: pair k = (agg_{2k}, agg_{2k+1}).
        for i in range(self.num_aggs):
            self.add_node(Node(f"agg_{i}", NodeKind.AGG, pod=i // 2, index=i))
            for c in range(self.num_intermediates):
                self.add_link(f"agg_{i}", f"core_{c}", self.link_bandwidth_bps, delay)
        # Each aggregation pair serves d_a/2 ToRs, dual-homed to both members.
        tors_per_pair = self.d_a // 2
        tor_id = 0
        for pair in range(self.num_aggs // 2):
            for _ in range(tors_per_pair):
                tor = f"tor_{tor_id}"
                self.add_node(Node(tor, NodeKind.TOR, pod=pair, index=tor_id))
                self.add_link(tor, f"agg_{2 * pair}", self.link_bandwidth_bps, delay)
                self.add_link(tor, f"agg_{2 * pair + 1}", self.link_bandwidth_bps, delay)
                for k in range(self.hosts_per_tor):
                    host = f"h_{tor_id}_{k}"
                    self.add_node(Node(host, NodeKind.HOST, pod=pair, index=k))
                    self.add_link(host, tor, self.host_bandwidth_bps, delay)
                tor_id += 1

    def __repr__(self) -> str:
        return f"ClosNetwork(d_i={self.d_i}, d_a={self.d_a}, hosts={len(self.hosts())})"
