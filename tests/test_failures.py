"""Failure-injection tests: link failures and recovery across the stack.

The paper's fully distributed design implies graceful degradation — a dead
link shows up in the very switch state DARD already polls (zero bandwidth,
hence zero BoNF), so hosts route around it without any new machinery.
These tests exercise that story plus every baseline's reaction.
"""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.baselines import (
    EcmpScheduler,
    HederaScheduler,
    PeriodicVlbScheduler,
    TexcpScheduler,
)
from repro.core import DardScheduler
from repro.scheduling import SchedulerContext
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


def make_ctx(scheduler_cls, seed=0, **kwargs):
    topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
    ctx = SchedulerContext(
        network=Network(topo),
        codec=PathCodec(HierarchicalAddressing(topo)),
        rng=np.random.default_rng(seed),
    )
    scheduler = scheduler_cls(**kwargs)
    scheduler.attach(ctx)
    return ctx, scheduler


class TestNetworkFailureMechanics:
    def test_failed_link_reports_zero_bandwidth(self):
        net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        net.fail_link("core_0_0", "agg_0_0")
        state = net.link_state("core_0_0", "agg_0_0")
        assert state.bandwidth_bps == 0.0
        assert state.bonf == 0.0
        # Both directions are down.
        assert not net.link_is_up("agg_0_0", "core_0_0")

    def test_flow_on_failed_path_stalls(self):
        net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        topo = net.topology
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        flow = net.start_flow(
            "h_0_0_0", "h_1_0_0", 50 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", path))],
        )
        net.engine.run_until(1.0)
        assert flow.rate_bps > 0
        net.fail_link(path[1], path[2])  # agg -> core on its path
        net.engine.run_until(2.0)
        assert flow.rate_bps == 0.0
        assert flow.active  # stalled, not dead

    def test_restore_resumes_transfer(self):
        net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        topo = net.topology
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        flow = net.start_flow(
            "h_0_0_0", "h_1_0_0", 50 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", path))],
        )
        net.fail_link(path[1], path[2])
        net.engine.run_until(5.0)
        assert flow.remaining_bytes == pytest.approx(50 * MB)
        net.restore_link(path[1], path[2])
        net.engine.run_until_idle()
        assert net.records and net.records[0].fct > 4.0  # stall time included

    def test_fail_unknown_link_rejected(self):
        net = Network(FatTree(p=4))
        with pytest.raises(SimulationError):
            net.fail_link("h_0_0_0", "core_0_0")

    def test_fail_and_restore_idempotent(self):
        net = Network(FatTree(p=4))
        net.fail_link("core_0_0", "agg_0_0")
        net.fail_link("core_0_0", "agg_0_0")
        assert len(net.failed_links) == 2
        net.restore_link("core_0_0", "agg_0_0")
        net.restore_link("core_0_0", "agg_0_0")
        assert not net.failed_links

    def test_listeners_fire(self):
        net = Network(FatTree(p=4))
        events = []
        net.link_failed_listeners.append(lambda u, v: events.append(("down", u, v)))
        net.link_restored_listeners.append(lambda u, v: events.append(("up", u, v)))
        net.fail_link("core_0_0", "agg_0_0")
        net.restore_link("core_0_0", "agg_0_0")
        assert events == [("down", "core_0_0", "agg_0_0"), ("up", "core_0_0", "agg_0_0")]

    def test_path_alive(self):
        net = Network(FatTree(p=4))
        path = ("tor_0_0", "agg_0_0", "core_0_0", "agg_1_0", "tor_1_0")
        assert net.path_alive(path)
        net.fail_link("core_0_0", "agg_1_0")
        assert not net.path_alive(path)


class TestSchedulerReactions:
    def _long_flow(self, ctx, scheduler, src="h_0_0_0", dst="h_1_0_0"):
        return scheduler.place(src, dst, 500 * MB)

    def test_ecmp_rehashes_immediately(self):
        ctx, scheduler = make_ctx(EcmpScheduler)
        flow = self._long_flow(ctx, scheduler)
        ctx.engine.run_until(1.0)
        path = flow.switch_path()
        ctx.network.fail_link(path[2], path[3])  # agg->core or core->agg hop
        ctx.engine.run_until(1.5)
        assert flow.rate_bps > 0  # moved to a live path
        assert ctx.network.path_alive(flow.switch_path())

    def test_vlb_repicks_off_dead_path(self):
        ctx, scheduler = make_ctx(PeriodicVlbScheduler)
        flow = self._long_flow(ctx, scheduler)
        ctx.engine.run_until(1.0)
        path = flow.switch_path()
        ctx.network.fail_link(path[2], path[3])
        ctx.engine.run_until(1.5)
        assert ctx.network.path_alive(flow.switch_path())

    def test_new_placements_avoid_dead_paths(self):
        ctx, scheduler = make_ctx(EcmpScheduler, seed=3)
        ctx.network.fail_link("agg_0_0", "core_0_0")
        for _ in range(20):
            flow = self._long_flow(ctx, scheduler)
            assert ctx.network.path_alive(flow.switch_path())

    def test_dard_routes_around_failure_via_monitoring(self):
        """No extra machinery: the dead path's BoNF reads 0, so Algorithm 1
        shifts the elephant to a live path at the next scheduling round."""
        ctx, scheduler = make_ctx(DardScheduler, seed=5)
        flow = self._long_flow(ctx, scheduler)
        ctx.engine.run_until(12.0)  # promoted; daemon + monitor exist
        path = flow.switch_path()
        ctx.network.fail_link(path[2], path[3])
        ctx.engine.run_until(13.0)
        assert flow.rate_bps == 0.0  # stalled right after the cut
        ctx.engine.run_until(30.0)  # a couple of scheduling rounds later
        assert flow.rate_bps > 0
        assert ctx.network.path_alive(flow.switch_path())

    def test_texcp_drains_dead_path(self):
        ctx, scheduler = make_ctx(TexcpScheduler, seed=2)
        flow = self._long_flow(ctx, scheduler)
        ctx.engine.run_until(1.0)
        assert len(flow.components) == 4
        dead = flow.components[0].path
        ctx.network.fail_link(dead[2], dead[3])
        ctx.engine.run_until(3.0)
        assert all(
            ctx.network.path_alive(c.path) for c in flow.components
        )
        assert flow.rate_bps > 0

    def test_hedera_reoptimizes_after_failure(self):
        ctx, scheduler = make_ctx(HederaScheduler, seed=4, annealing_iterations=300)
        flows = [
            self._long_flow(ctx, scheduler, s, d)
            for s, d in [("h_0_0_0", "h_1_0_0"), ("h_0_0_1", "h_1_0_1")]
        ]
        ctx.engine.run_until(12.0)
        ctx.network.fail_link("agg_0_0", "core_0_0")
        ctx.engine.run_until(20.0)  # immediate rehash + >= 1 controller round
        for flow in flows:
            if flow.active:
                assert ctx.network.path_alive(flow.switch_path())
                assert flow.rate_bps > 0

    def test_access_link_failure_stalls_until_restored(self):
        """No alternate path exists around a host's own access link."""
        ctx, scheduler = make_ctx(EcmpScheduler)
        flow = self._long_flow(ctx, scheduler)
        ctx.engine.run_until(1.0)
        ctx.network.fail_link("h_0_0_0", "tor_0_0")
        ctx.engine.run_until(5.0)
        assert flow.rate_bps == 0.0 and flow.active
        ctx.network.restore_link("h_0_0_0", "tor_0_0")
        ctx.engine.run_until(6.0)
        assert flow.rate_bps > 0
