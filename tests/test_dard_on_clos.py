"""DARD exercised on a Clos network — the topology where a core alone does
NOT determine a path, which is precisely why DARD carries both uphill and
downhill tables (paper §2.3) and why its address pairs must name the
aggregation switches on both sides."""

import numpy as np
import pytest

from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.core import DardScheduler, PathMonitor, switches_to_query
from repro.scheduling import MessageLedger, SchedulerContext
from repro.simulator import FlowComponent, Network
from repro.topology import ClosNetwork


@pytest.fixture
def clos_ctx():
    topo = ClosNetwork(d_i=4, d_a=4, hosts_per_tor=2, link_bandwidth_bps=100 * MBPS)
    ctx = SchedulerContext(
        network=Network(topo),
        codec=PathCodec(HierarchicalAddressing(topo)),
        rng=np.random.default_rng(3),
    )
    scheduler = DardScheduler()
    scheduler.attach(ctx)
    return ctx, scheduler


class TestDardOnClos:
    def test_monitor_covers_all_2da_paths(self, clos_ctx):
        ctx, scheduler = clos_ctx
        monitor = PathMonitor(ctx.network, "tor_0", "tor_2", MessageLedger())
        assert len(monitor.paths) == 8  # 2 * D_A

    def test_query_set_covers_paths(self, clos_ctx):
        ctx, _ = clos_ctx
        switches = switches_to_query(ctx.topology, "tor_0", "tor_2")
        for path in ctx.topology.equal_cost_paths("tor_0", "tor_2"):
            for u, _ in zip(path, path[1:]):
                assert u in switches

    def test_colliding_elephants_spread(self, clos_ctx):
        """Two same-rack elephants colliding on one Clos path separate."""
        ctx, scheduler = clos_ctx
        net = ctx.network
        topo = ctx.topology
        paths = topo.equal_cost_paths("tor_0", "tor_2")
        flows = [
            net.start_flow(
                src, dst, 1000 * MB,
                [FlowComponent(topo.host_path(src, dst, paths[0]))],
            )
            for src, dst in [("h_0_0", "h_2_0"), ("h_0_1", "h_2_1")]
        ]
        net.engine.run_until(60.0)
        routes = {tuple(f.switch_path()[1:-1]) for f in flows}
        assert len(routes) == 2
        for flow in flows:
            assert flow.rate_bps == pytest.approx(100 * MBPS, rel=1e-6)

    def test_shift_address_pairs_name_both_aggs(self, clos_ctx):
        """Re-encapsulation on Clos changes the aggregation switches named
        in the address pair, not just the core."""
        ctx, scheduler = clos_ctx
        topo = ctx.topology
        codec = ctx.codec
        paths = topo.equal_cost_paths("tor_0", "tor_2")
        # Two paths via the SAME core but different uphill aggs.
        by_core = {}
        for p in paths:
            by_core.setdefault(p[2], []).append(p)
        same_core = next(group for group in by_core.values() if len(group) > 1)
        pair_a = codec.encode("h_0_0", "h_2_0", same_core[0])
        pair_b = codec.encode("h_0_0", "h_2_0", same_core[1])
        assert pair_a != pair_b  # core identity alone cannot distinguish

    def test_full_run_stable_on_clos(self, clos_ctx):
        ctx, scheduler = clos_ctx
        rng = np.random.default_rng(0)
        hosts = sorted(ctx.topology.hosts())
        for _ in range(10):
            src, dst = rng.choice(hosts, size=2, replace=False)
            scheduler.place(str(src), str(dst), 300 * MB)
        ctx.engine.run_until(90.0)
        ctx.network.check_invariants()
        finished = ctx.network.records
        assert all(r.path_switches <= 8 for r in finished)
