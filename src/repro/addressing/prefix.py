"""IPv4 prefixes and addresses.

Addresses are plain 32-bit integers; :class:`Prefix` is an immutable
value/length pair with subdivision (the allocation primitive of §2.3) and
containment tests. The paper's decimal-group notation — every 6 bits of the
last 24 bits rendered in decimal, e.g. ``(1, 1, 1, 2)`` — is available via
:meth:`Prefix.decimal_groups` for the Table 2/3 demos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import AddressingError

_MAX_LEN = 32


def _mask(length: int) -> int:
    return ((1 << length) - 1) << (_MAX_LEN - length) if length else 0


def format_address(addr: int) -> str:
    """Render a 32-bit address in dotted-quad notation."""
    if not 0 <= addr < (1 << 32):
        raise AddressingError(f"address out of range: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_address(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressingError(f"malformed address {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise AddressingError(f"malformed address {text!r}") from None
        if not 0 <= octet <= 255:
            raise AddressingError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix ``value/length`` with host bits forced to zero."""

    value: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= _MAX_LEN:
            raise AddressingError(f"prefix length out of range: {self.length}")
        if not 0 <= self.value < (1 << 32):
            raise AddressingError(f"prefix value out of range: {self.value}")
        if self.value & ~_mask(self.length):
            raise AddressingError(
                f"prefix {format_address(self.value)}/{self.length} has non-zero host bits"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.0.0/8"`` notation."""
        try:
            addr_text, len_text = text.split("/")
            length = int(len_text)
        except ValueError:
            raise AddressingError(f"malformed prefix {text!r}") from None
        return cls(parse_address(addr_text), length)

    def subdivide(self, index: int, child_bits: int) -> "Prefix":
        """The ``index``-th child prefix when extending by ``child_bits`` bits.

        This is the §2.3 allocation step: a switch at one hierarchy level
        hands subdivision ``index`` of its own prefix to its ``index``-th
        downstream branch.
        """
        if child_bits < 1:
            raise AddressingError(f"child_bits must be >= 1, got {child_bits}")
        new_length = self.length + child_bits
        if new_length > _MAX_LEN:
            raise AddressingError(
                f"cannot extend /{self.length} by {child_bits} bits beyond /32"
            )
        if not 0 <= index < (1 << child_bits):
            raise AddressingError(
                f"subdivision index {index} does not fit in {child_bits} bits"
            )
        child_value = self.value | (index << (_MAX_LEN - new_length))
        return Prefix(child_value, new_length)

    def contains_address(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this prefix."""
        return (addr & _mask(self.length)) == self.value

    def contains_prefix(self, other: "Prefix") -> bool:
        """Whether ``other`` is equal to or nested inside this prefix."""
        return other.length >= self.length and self.contains_address(other.value)

    def overlaps(self, other: "Prefix") -> bool:
        """Whether the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def address(self, host_index: int) -> int:
        """The ``host_index``-th full 32-bit address inside this prefix."""
        span = 1 << (_MAX_LEN - self.length)
        if not 0 <= host_index < span:
            raise AddressingError(f"host index {host_index} outside /{self.length} span")
        return self.value + host_index

    def decimal_groups(self, bits_per_group: int = 6) -> Tuple[int, ...]:
        """The paper's decimal notation over the last 24 bits.

        Returns the first octet followed by the 24 remaining bits split into
        ``bits_per_group``-bit groups, e.g. ``10.4.16.0/20`` with 6-bit
        groups renders as ``(10, 1, 1, 0, 0)``.
        """
        if 24 % bits_per_group != 0:
            raise AddressingError(f"24 is not divisible by group width {bits_per_group}")
        groups = [self.value >> 24]
        rest = self.value & 0xFFFFFF
        num_groups = 24 // bits_per_group
        for g in range(num_groups):
            shift = 24 - (g + 1) * bits_per_group
            groups.append((rest >> shift) & ((1 << bits_per_group) - 1))
        return tuple(groups)

    def __str__(self) -> str:
        return f"{format_address(self.value)}/{self.length}"
