"""RACE003 good fixture: the epoch rebuild hoisted to the serial caller.

``_reallocate`` is not component-scoped, so mutating the shared
partition there (after the round returns) is the sanctioned pattern.
"""


class EpochKeeper:
    """Minimal shape for the rule: only the names matter."""

    def _reallocate(self, flows):
        self._refill_dirty(flows)
        self._partition.rebuild(flows)

    def _refill_dirty(self, flows):
        self._pending_total = len(flows)
