"""Composable runtime invariant checks.

Each check is a plain function raising
:class:`~repro.common.errors.InvariantViolation` with the offending link
or flow id on failure; all of them can be registered on
``Network.invariant_hooks`` (run by ``Network.check_invariants()``) or
driven continuously through :class:`InvariantChecker`, which hooks the
event engine and re-checks the world after every N processed events.

The invariants are the paper's correctness claims made executable:

* **link-capacity conservation** — the base checks ``check_invariants``
  already performs (counter recounts, no over-capacity link, no loaded
  dead link, sane byte accounting);
* **bottleneck-saturation / KKT certificate** — every live demand is
  bottlenecked on a saturated link where its weighted rate is maximal,
  the necessary-and-sufficient optimality condition for weighted max-min
  fairness (Bertsekas & Gallager; the paper's Appendix A assumption);
* **Theorem 1 bound** — min flow rate >= min link BoNF (Appendix A);
* **static-switch-table preservation** — DARD re-routes purely by
  re-encapsulating addresses, so the fabric's tables must never change
  and must still forward every live path (paper §2.3);
* **BoNF monotonicity per DARD round** — each selfish move strictly
  decreases the lexicographic state vector (Theorem 2, Appendix B).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import InvariantViolation
from repro.gametheory.congestion_game import CongestionGame, compare_state_vectors
from repro.gametheory.theorems import DynamicsResult, nash_certificate
from repro.simulator.maxmin import Demand, LinkId
from repro.simulator.network import Network

#: Relative slack for saturation / rate comparisons. The allocator works
#: in exact float arithmetic but freeze order can differ between
#: implementations by a few ulps; 1e-6 is far above ulp noise and far
#: below any real violation.
REL_TOL = 1e-6


# ---------------------------------------------------------------------------
# Max-min optimality (KKT / bottleneck-saturation certificate)
# ---------------------------------------------------------------------------

def check_maxmin_certificate(
    demands: Sequence[Demand],
    rates: Sequence[float],
    capacities: Dict[LinkId, float],
    rel_tol: float = REL_TOL,
) -> None:
    """Certify that ``rates`` is *the* weighted max-min allocation.

    The bottleneck condition: an allocation is weighted max-min optimal
    iff it is feasible and every demand crosses some *bottleneck* link
    that (a) is saturated and (b) gives no other crosser a strictly
    larger weighted rate. Checking the certificate is O(nnz) — far
    cheaper than recomputing the allocation — which is what makes it
    usable as a continuous runtime invariant.
    """
    if len(demands) != len(rates):
        raise InvariantViolation(
            "maxmin-kkt", f"{len(demands)} demands but {len(rates)} rates"
        )
    load: Dict[LinkId, float] = {}
    max_norm: Dict[LinkId, float] = {}
    normalized = []
    for (links, weight), rate in zip(demands, rates):
        norm = rate / weight
        normalized.append(norm)
        for link in sorted(set(links)):
            load[link] = load.get(link, 0.0) + rate
            if norm > max_norm.get(link, float("-inf")):
                max_norm[link] = norm
    for link, total in load.items():
        cap = capacities[link]
        if total > cap * (1.0 + rel_tol):
            raise InvariantViolation(
                "maxmin-kkt", f"load {total} exceeds capacity {cap}", link=link
            )
    for j, ((links, _), norm) in enumerate(zip(demands, normalized)):
        if norm < 0:
            raise InvariantViolation(
                "maxmin-kkt", f"demand {j} has negative rate {rates[j]}"
            )
        bottlenecked = False
        for link in links:
            cap = capacities[link]
            saturated = load[link] >= cap * (1.0 - rel_tol)
            is_max = norm >= max_norm[link] * (1.0 - rel_tol) - cap * rel_tol
            if saturated and is_max:
                bottlenecked = True
                break
        if not bottlenecked:
            raise InvariantViolation(
                "maxmin-kkt",
                f"demand {j} (rate {rates[j]}) has no saturated bottleneck "
                "link on which its weighted rate is maximal",
                flow_id=j,
            )


def check_network_allocation(network: Network) -> None:
    """KKT-certify the live network's settled component rates.

    Only meaningful at quiescent points (skipped while a coalesced
    reallocation is pending, when rates are stale by design). Flows whose
    every component crosses a dead link carry zero rate and contribute no
    demand — exactly how the reallocator treats them.
    """
    if network.realloc_pending:
        return
    demands, owners = network.live_demand_view()
    if not demands:
        return
    rates = [flow.component_rates[idx] for flow, idx in owners]
    try:
        check_maxmin_certificate(demands, rates, network.capacities)
    except InvariantViolation as violation:
        if violation.flow_id is not None and violation.flow_id < len(owners):
            flow, idx = owners[violation.flow_id]
            raise InvariantViolation(
                violation.invariant,
                f"flow {flow.flow_id} component {idx}: {violation.detail}",
                link=violation.link,
                flow_id=flow.flow_id,
            ) from None
        raise


def check_theorem1_bound_live(network: Network) -> None:
    """Theorem 1 on the live network: min flow rate >= min link BoNF.

    Applies to the unweighted single-component regime the theorem is
    stated for; flows with weights != 1 or multiple components (TeXCP
    striping) make the bound inapplicable, so their presence skips the
    check. Flows stalled on dead paths contribute no live demand and so
    appear on neither side of the bound — the allocation being certified
    is max-min over exactly the live demand set.
    """
    if network.realloc_pending:
        return
    demands, owners = network.live_demand_view()
    if not demands:
        return
    for (links, weight), (flow, _) in zip(demands, owners):
        if weight != 1.0 or len(flow.components) != 1:
            return
    counts: Dict[LinkId, int] = {}
    for links, _ in demands:
        for link in links:
            counts[link] = counts.get(link, 0) + 1
    min_bonf = min(
        network.capacities[link] / count for link, count in counts.items()
    )
    min_rate = min(
        flow.component_rates[idx] for flow, idx in owners
    )
    if min_rate < min_bonf * (1.0 - REL_TOL) - 1e-6:
        flow, _ = min(owners, key=lambda pair: pair[0].component_rates[pair[1]])
        raise InvariantViolation(
            "theorem1-bound",
            f"min flow rate {min_rate} < min BoNF {min_bonf}",
            flow_id=flow.flow_id,
        )


# ---------------------------------------------------------------------------
# Flow-store row accounting
# ---------------------------------------------------------------------------

def check_flowstore_balance(network: Network) -> None:
    """The columnar store's row ledger must balance the live flow table.

    Failure storms churn rows hard — every ``fail_link`` stalls flows,
    every ``restore_link`` lets a burst of them finish and release rows,
    and compaction rewrites the span underneath both — so this is where a
    leaked or double-freed row would first appear. The books must balance
    exactly at every quiescent point:

    * ``live_count`` equals the number of flows the network tracks;
    * the live mask over the active span agrees with ``live_count``;
    * every span row is live or on the free heap, never both or neither;
    * freed rows are fully reset (dead, ``flow_id == -1``);
    * started minus completed flows equals the rows still occupied.
    """
    store = network.flow_store
    size = store.size
    if store.live_count != len(network.flows):
        raise InvariantViolation(
            "flowstore-balance",
            f"store live_count {store.live_count} != "
            f"{len(network.flows)} flows in the network table",
        )
    live_rows = int(np.count_nonzero(store.live[:size]))
    if live_rows != store.live_count:
        raise InvariantViolation(
            "flowstore-balance",
            f"{live_rows} live rows in the active span but live_count "
            f"says {store.live_count}",
        )
    free = store._free
    if size - store.live_count != len(free):
        raise InvariantViolation(
            "flowstore-balance",
            f"span {size} != live {store.live_count} + free {len(free)} "
            "(leaked or double-freed row)",
        )
    if free:
        rows = np.asarray(sorted(free), dtype=np.intp)
        if len(set(free)) != len(free) or int(rows[0]) < 0 or int(rows[-1]) >= size:
            raise InvariantViolation(
                "flowstore-balance",
                f"free heap holds duplicate or out-of-span rows: {sorted(free)!r}",
            )
        if bool(np.any(store.live[rows])) or bool(np.any(store.flow_id[rows] != -1)):
            raise InvariantViolation(
                "flowstore-balance",
                "free heap holds a row that is still live or keeps a flow id",
            )
    occupied = network._stat_flows_started - network._stat_flows_completed
    if occupied != store.live_count:
        raise InvariantViolation(
            "flowstore-balance",
            f"{network._stat_flows_started} started - "
            f"{network._stat_flows_completed} completed = {occupied} "
            f"flows in flight, but the store holds {store.live_count} rows",
        )


# ---------------------------------------------------------------------------
# Static switch tables
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SwitchTableSnapshot:
    """A content digest of every LPM table in a switch fabric.

    DARD's central data-plane property is that re-routing never touches
    switch state (§2.3): capture a snapshot at fabric bring-up, then
    :meth:`verify` after any amount of traffic and path shifting.
    """

    digest: str
    num_entries: int

    @classmethod
    def capture(cls, fabric) -> "SwitchTableSnapshot":
        hasher = hashlib.sha256()
        entries = 0
        for name in sorted(fabric.switches):
            switch = fabric.switches[name]
            for table_name in ("downhill", "uphill"):
                table = getattr(switch, table_name)
                for entry in table.entries():
                    hasher.update(
                        f"{name}:{table_name}:{entry.prefix}:{entry.port}\n".encode()
                    )
                    entries += 1
        return cls(digest=hasher.hexdigest(), num_entries=entries)

    def verify(self, fabric) -> None:
        """Raise unless the fabric's tables are bit-identical to capture time."""
        current = SwitchTableSnapshot.capture(fabric)
        if current != self:
            raise InvariantViolation(
                "static-tables",
                f"switch tables changed: {self.num_entries} entries "
                f"(digest {self.digest[:12]}) -> {current.num_entries} "
                f"(digest {current.digest[:12]})",
            )


def check_static_forwarding(fabric, codec, network: Network) -> None:
    """Every live path must still be served by the *static* tables.

    For each live single-path flow, encode its current path into an
    address pair and trace it hop by hop through the fabric — the tables
    installed once at bring-up must reproduce the path a scheduler chose
    arbitrarily many reroutes later.
    """
    topology = network.topology
    for flow in network.flows.values():
        if len(flow.components) != 1:
            continue
        path = flow.components[0].path
        switch_path = tuple(
            node for node in path if topology.node(node).kind.is_switch
        )
        src_addr, dst_addr = codec.encode(flow.src, flow.dst, switch_path)
        traced = fabric.forward_trace(flow.src, src_addr, dst_addr)
        if traced != tuple(path):
            raise InvariantViolation(
                "static-forwarding",
                f"fabric forwards {traced!r} but flow rides {tuple(path)!r}",
                flow_id=flow.flow_id,
            )


# ---------------------------------------------------------------------------
# BoNF monotonicity (Theorem 2 dynamics)
# ---------------------------------------------------------------------------

def check_dynamics_monotone(game: CongestionGame, result: DynamicsResult) -> None:
    """Certify a best-response trajectory against Theorem 2.

    Every step must strictly decrease the lexicographic state vector and
    improve the mover's BoNF by more than δ; the endpoint must carry a
    valid Nash certificate. This is "BoNF monotonicity per DARD round" in
    the game formalization, where it is exact (the live simulator
    overlays arrivals/departures that legitimately move BoNF both ways).
    """
    for i, step in enumerate(result.steps):
        if compare_state_vectors(step.sv_after, step.sv_before) >= 0:
            raise InvariantViolation(
                "bonf-monotonicity",
                f"step {i} (flow {step.flow_index}) did not decrease the "
                f"state vector: {step.sv_before} -> {step.sv_after}",
                flow_id=step.flow_index,
            )
        if step.bonf_after - step.bonf_before <= game.delta_bps - 1e-9:
            raise InvariantViolation(
                "bonf-monotonicity",
                f"step {i} improved BoNF by only "
                f"{step.bonf_after - step.bonf_before} (< delta {game.delta_bps})",
                flow_id=step.flow_index,
            )
    if result.converged:
        certificate = nash_certificate(game, result.final)
        if not certificate.is_nash:
            deviator = certificate.first_deviator()
            raise InvariantViolation(
                "nash-endpoint",
                f"converged strategy is not Nash: flow {deviator} still has "
                f"a delta-improving deviation to route "
                f"{certificate.deviations[deviator]}",
                flow_id=deviator,
            )


# ---------------------------------------------------------------------------
# Continuous checking driver
# ---------------------------------------------------------------------------

#: The network-level checks InvariantChecker runs by default, in order.
DEFAULT_NETWORK_CHECKS: Tuple = (
    check_network_allocation,
    check_theorem1_bound_live,
)


class InvariantChecker:
    """Re-check a network's invariants after every N engine events.

    Attaches to the engine's after-event hook, so checks run exactly at
    event boundaries — the quiescent points where the base invariants
    must hold (allocation-optimality checks additionally skip themselves
    while a zero-delay reallocation is pending). Violations propagate as
    :class:`~repro.common.errors.InvariantViolation` out of the engine's
    ``run_until``, which is how the fuzzer catches them.
    """

    #: one fabric (snapshot digest + forwarding trace) check per this many
    #: regular batteries — hashing every LPM entry is the battery's one
    #: superlinear piece, and table mutations cannot un-happen, so a lower
    #: cadence loses nothing but discovery latency.
    FABRIC_CHECK_PERIOD = 10

    def __init__(
        self,
        network: Network,
        every_n_events: int = 1,
        checks: Sequence = DEFAULT_NETWORK_CHECKS,
        fabric=None,
        codec=None,
    ) -> None:
        self.network = network
        self.every_n_events = max(1, int(every_n_events))
        self.checks = list(checks)
        self.fabric = fabric
        self.codec = codec
        self.checks_run = 0
        self._countdown = self.every_n_events
        self._snapshot: Optional[SwitchTableSnapshot] = None
        if fabric is not None:
            self._snapshot = SwitchTableSnapshot.capture(fabric)

    def attach(self) -> "InvariantChecker":
        """Start checking after engine events; returns self for chaining."""
        self.network.engine.add_after_event_hook(self._on_event)
        return self

    def detach(self) -> None:
        """Stop checking (idempotent removal of the engine hook)."""
        self.network.engine.remove_after_event_hook(self._on_event)

    def run_checks(self, include_fabric: bool = True) -> None:
        """Run the check battery once, immediately."""
        self.checks_run += 1
        self.network.check_invariants()
        for check in self.checks:
            check(self.network)
        if include_fabric and self.fabric is not None:
            self._snapshot.verify(self.fabric)
            if self.codec is not None:
                check_static_forwarding(self.fabric, self.codec, self.network)

    def _on_event(self) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.every_n_events
        self.run_checks(
            include_fabric=(self.checks_run % self.FABRIC_CHECK_PERIOD == 0)
        )
