"""Columnar (structure-of-arrays) storage for hot per-flow state.

The per-event loops of :class:`~repro.simulator.network.Network` —
settling byte counters, recomputing the next completion ETA, finding
finishers — touch a handful of scalar fields of *every* live flow on
*every* event. As Python objects those reads dominate profiles long
before the p=64 scale target (65,536 hosts); as numpy columns the three
loops become three masked array expressions (see DESIGN.md "Columnar
flow state").

:class:`FlowStore` owns those columns. Rows are allocated densely with
free-list revival and geometric growth — the same structure lifecycle as
:class:`~repro.core.registry.MonitorRegistry` (PR 5): *acquire* pops the
smallest free row (keeping live rows packed at the bottom) or extends the
active span, *release* marks the row dead and pushes it onto the free
heap, and once dead rows reach half the active span a **compaction
epoch** shrinks the span back to the highest live row. Live rows never
move — a :class:`~repro.simulator.flows.Flow` view object's row index
stays valid from bind to unbind — so compaction only ever drops the free
tail.

Column ownership (who may write what) is part of the network's hot-path
contract and documented in DESIGN.md; everything here is mechanism, not
policy. The ``flow_id`` column maps rows back to the network's flow dict
(``-1`` = dead row); flow ids themselves stay monotonic and are never
reused, only rows are.

Row stability is also what the intra-scenario parallel backend
(:mod:`repro.simulator.parallel`, DESIGN.md "Parallel execution") leans
on: a fanned-out reallocation round captures row indices at
demand-assembly time, workers compute per-component rate vectors against
those indices, and the merge writes each component's disjoint row set
back positionally. That is sound only because no acquire / release /
compaction runs between assembly and merge — reallocation sits strictly
between flow-lifecycle events — so any future change that moves rows
mid-round must also re-snapshot the demand indices.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["FlowStore"]

#: Rows allocated up front; growth doubles from here.
_INITIAL_CAPACITY = 64

#: Compaction epoch: shrink the active span once dead rows reach half of
#: it — but only when the span is big enough for the scan to matter.
_COMPACT_MIN_ROWS = 64

#: ``(column attribute, dtype, fill value for fresh rows)``. The fill
#: values keep masked hot-path expressions safe on dead rows: zero rate
#: never passes a ``> 0`` mask, NaN end-time means "no timestamp", and a
#: unit goodput factor never divides anything surprising.
_COLUMN_SPECS: Tuple[Tuple[str, type, float], ...] = (
    ("flow_id", np.int64, -1),
    ("rate_bps", np.float64, 0.0),
    ("goodput_factor", np.float64, 1.0),
    ("retx_fraction", np.float64, 0.0),
    ("remaining_bytes", np.float64, 0.0),
    ("start_time", np.float64, 0.0),
    ("end_time", np.float64, np.nan),
    ("retransmitted_bytes", np.float64, 0.0),
    ("elephant", np.bool_, False),
    ("live", np.bool_, False),
    ("monitored_path", np.int64, -1),
    ("component_id", np.int64, -1),
    ("path_switches", np.int64, 0),
)


class FlowStore:
    """SoA flow-state columns with free-list row revival and compaction."""

    __slots__ = tuple(name for name, _, _ in _COLUMN_SPECS) + (
        "_size",
        "_free",
        "_live_count",
        "_stat_acquires",
        "_stat_revivals",
        "_stat_grows",
        "_stat_compactions",
    )

    # Column annotations (assigned in __init__ from _COLUMN_SPECS).
    flow_id: np.ndarray
    rate_bps: np.ndarray
    goodput_factor: np.ndarray
    retx_fraction: np.ndarray
    remaining_bytes: np.ndarray
    start_time: np.ndarray
    end_time: np.ndarray
    retransmitted_bytes: np.ndarray
    elephant: np.ndarray
    live: np.ndarray
    monitored_path: np.ndarray
    component_id: np.ndarray
    path_switches: np.ndarray

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(1, int(capacity))
        for name, dtype, fill in _COLUMN_SPECS:
            setattr(self, name, np.full(capacity, fill, dtype=dtype))
        #: active span: rows ``[0, _size)`` are in use or on the free heap.
        self._size = 0
        #: min-heap of released rows inside the active span; popping the
        #: smallest keeps live rows packed toward the bottom, which is what
        #: lets compaction shrink the span instead of moving rows.
        self._free: List[int] = []
        self._live_count = 0
        self._stat_acquires = 0
        self._stat_revivals = 0
        self._stat_grows = 0
        self._stat_compactions = 0

    # -- introspection ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Active span: the hot loops scan columns ``[:size]``."""
        return self._size

    @property
    def capacity(self) -> int:
        """Allocated rows (``size`` grows into this before reallocating)."""
        return int(self.flow_id.shape[0])

    @property
    def live_count(self) -> int:
        """Rows currently bound to a live flow."""
        return self._live_count

    # -- row lifecycle ----------------------------------------------------------

    def acquire(self, flow_id: int) -> int:
        """Claim a row for ``flow_id``; returns its (stable) row index.

        Revives the smallest free row when one exists, else extends the
        active span (growing the arrays geometrically when full). The row
        comes back reset to the fresh-row fill values with ``live`` set.
        """
        self._stat_acquires += 1
        if self._free:
            row = heapq.heappop(self._free)
            self._stat_revivals += 1
        else:
            row = self._size
            if row >= self.capacity:
                self._grow(row + 1)
            self._size = row + 1
        self._reset_row(row, flow_id)
        self._live_count += 1
        return row

    def release(self, row: int) -> None:
        """Return a row to the free pool; may trigger a compaction epoch."""
        if row < 0 or row >= self._size or not bool(self.live[row]):
            raise ValueError(f"release of non-live flow-store row {row}")
        # Dead rows only need to fail the hot-path masks (all of which AND
        # with ``live``); the full fill-value reset happens at revival.
        self.live[row] = False
        self.flow_id[row] = -1
        self.rate_bps[row] = 0.0
        self._live_count -= 1
        heapq.heappush(self._free, row)
        if self._size >= _COMPACT_MIN_ROWS and self._live_count * 2 <= self._size:
            self._compact()

    def _reset_row(self, row: int, flow_id: int) -> None:
        for name, _, fill in _COLUMN_SPECS:
            getattr(self, name)[row] = fill
        self.flow_id[row] = flow_id
        self.live[row] = flow_id >= 0

    def _grow(self, need: int) -> None:
        new_capacity = max(need, 2 * self.capacity)
        for name, dtype, fill in _COLUMN_SPECS:
            old = getattr(self, name)
            fresh = np.full(new_capacity, fill, dtype=dtype)
            fresh[: old.shape[0]] = old
            setattr(self, name, fresh)
        self._stat_grows += 1

    def _compact(self) -> None:
        """Shrink the active span down to the highest live row.

        Live rows are never moved (bound views keep their indices); only
        the free tail above the last live row is dropped, and the free
        heap is filtered to the surviving span. With pop-smallest revival
        the live rows trend dense at the bottom, so long runs with bursty
        flow populations keep the span near the live count.
        """
        live_rows = np.flatnonzero(self.live[: self._size])
        new_size = int(live_rows[-1]) + 1 if live_rows.size else 0
        if new_size >= self._size:
            return
        self._free = [row for row in self._free if row < new_size]
        heapq.heapify(self._free)
        self._size = new_size
        self._stat_compactions += 1

    # -- telemetry ---------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Store telemetry, merged into ``Network.perf_stats()``."""
        return {
            "store_rows": float(self._size),
            "store_capacity": float(self.capacity),
            "store_live": float(self._live_count),
            "store_acquires": float(self._stat_acquires),
            "store_revivals": float(self._stat_revivals),
            "store_grows": float(self._stat_grows),
            "store_compactions": float(self._stat_compactions),
        }
