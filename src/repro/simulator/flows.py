"""Flow objects and completion records.

A :class:`Flow` transfers a fixed number of bytes between two hosts. Its
traffic is carried by one or more :class:`FlowComponent` s — (path, weight)
pairs. Single-path schedulers (ECMP, VLB, Hedera, DARD) keep exactly one
component and re-route by replacing it; TeXCP stripes a flow across several
weighted components.

The paper's elephant definition (§1) is a TCP connection lasting at least
10 seconds; flows are *promoted* to elephant status at that age by the
network, which is when DARD's detector first sees them.

Storage model (see DESIGN.md "Columnar flow state"): a flow owned by a
:class:`~repro.simulator.network.Network` is **bound** to a row of the
network's :class:`~repro.simulator.flowstore.FlowStore`, and its hot
scalar attributes — remaining bytes, retransmitted bytes, reordering
fraction, elephant flag, path-switch count, monitored path index, end
time — are properties reading and writing the store columns, so the
network's vectorized settle/ETA/completion passes and the scalar property
accesses always see the same state. A flow constructed standalone (tests,
ad-hoc tooling) is **unbound** and the same properties fall back to plain
per-object shadow attributes; :meth:`Flow.unbind_store` snapshots the
columns back into those shadows at completion, so records, listeners, and
any held references stay valid after the row is revived for another flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network owns both)
    from repro.simulator.flowstore import FlowStore

#: Default elephant promotion age (seconds), per the paper.
ELEPHANT_AGE_S = 10.0

#: Bytes retransmitted per path switch: one congestion window of in-flight
#: data is lost when the path changes mid-connection (~64 KB receive window).
PATH_SWITCH_RETX_BYTES = 64_000


@dataclass(frozen=True)
class FlowComponent:
    """One (path, weight) strand of a flow.

    ``path`` is the full node path, hosts included. ``weight`` scales the
    component's max-min share; weights across a flow's components need not
    sum to anything in particular — only ratios matter to the allocator.
    """

    path: Tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        # Frozen dataclass: stash the derived link tuple once via
        # object.__setattr__ — links() is called from every hot path
        # (counter updates, reallocation, invariant checks).
        object.__setattr__(self, "_links", tuple(zip(self.path, self.path[1:])))

    def links(self) -> Tuple[Tuple[str, str], ...]:
        """The directed links this component traverses (cached)."""
        return self._links


class Flow:
    """A live transfer. Mutable state is owned by the Network.

    Hot scalar attributes live in the bound :class:`FlowStore` row (see
    the module docstring); cold state — endpoints, components, the
    per-component rate list, path history, cached link-id arrays — stays
    on the object.
    """

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        size_bytes: float,
        start_time: float,
        components: Sequence[FlowComponent],
        component_rates: Optional[List[float]] = None,
        is_elephant: bool = False,
        path_switches: int = 0,
        path_history: Optional[List[Tuple[str, ...]]] = None,
        retransmitted_bytes: float = 0.0,
        reorder_retx_fraction: float = 0.0,
        end_time: Optional[float] = None,
        component_link_ids: Optional[List] = None,
        unique_link_ids: Optional[object] = None,
        monitored_path_index: Optional[int] = None,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.start_time = start_time
        self.components: List[FlowComponent] = list(components)
        #: current per-component rates (bits/s), parallel to ``components``.
        self.component_rates: List[float] = (
            list(component_rates) if component_rates is not None else []
        )
        #: distinct single-path routes this flow has used, in order — lets
        #: the stability analysis detect A->B->A oscillation, which the
        #: paper claims never happens ("no flow switches its paths back
        #: and forth").
        self.path_history: List[Tuple[str, ...]] = (
            list(path_history) if path_history is not None else []
        )
        #: per-component link-id arrays over the owning network's
        #: LinkIndex, computed once at start/reroute and reused by every
        #: hot path (set by the Network; ``None`` for flows never attached
        #: to one).
        self.component_link_ids: Optional[List] = component_link_ids
        #: sorted unique link ids across all components (set by the Network).
        self.unique_link_ids: Optional[object] = unique_link_ids
        # Unbound shadows of the store-backed hot attributes.
        self._store: Optional["FlowStore"] = None
        self._row = -1
        self._remaining_bytes = float(size_bytes)
        self._retransmitted_bytes = retransmitted_bytes
        self._reorder_retx_fraction = reorder_retx_fraction
        self._is_elephant = is_elephant
        self._path_switches = path_switches
        self._monitored_path_index = monitored_path_index
        self._end_time = end_time
        self._component_id: Optional[int] = None
        if not self.components:
            raise SimulationError(f"flow {self.flow_id} has no components")
        if self.src != self.components[0].path[0] or self.dst != self.components[0].path[-1]:
            raise SimulationError(
                f"flow {self.flow_id} endpoints ({self.src}, {self.dst}) do not match "
                f"component path {self.components[0].path}"
            )

    def __repr__(self) -> str:
        return (
            f"Flow(flow_id={self.flow_id}, src={self.src!r}, dst={self.dst!r}, "
            f"size_bytes={self.size_bytes}, remaining={self.remaining_bytes}, "
            f"active={self.active})"
        )

    # -- store binding ----------------------------------------------------------

    @property
    def store_row(self) -> int:
        """The bound store row index, or ``-1`` when unbound."""
        return self._row

    def bind_store(self, store: "FlowStore", row: int) -> None:
        """Adopt an acquired store row: push the current state into it.

        From here until :meth:`unbind_store`, the hot attributes read and
        write the store columns.
        """
        store.flow_id[row] = self.flow_id
        store.rate_bps[row] = sum(self.component_rates)
        store.retx_fraction[row] = self._reorder_retx_fraction
        store.goodput_factor[row] = 1.0 - self._reorder_retx_fraction
        store.remaining_bytes[row] = self._remaining_bytes
        store.start_time[row] = self.start_time
        store.end_time[row] = math.nan if self._end_time is None else self._end_time
        store.retransmitted_bytes[row] = self._retransmitted_bytes
        store.elephant[row] = self._is_elephant
        store.monitored_path[row] = (
            -1 if self._monitored_path_index is None else self._monitored_path_index
        )
        store.component_id[row] = (
            -1 if self._component_id is None else self._component_id
        )
        store.path_switches[row] = self._path_switches
        self._store = store
        self._row = row

    def unbind_store(self) -> None:
        """Snapshot the columns into local shadows and detach from the row.

        Called at completion *before* the network releases the row, so a
        finished flow held by a listener (or a test) keeps reading its
        final state even after the row is revived for another flow.
        """
        store, row = self._store, self._row
        if store is None:
            return
        self._remaining_bytes = float(store.remaining_bytes[row])
        self._retransmitted_bytes = float(store.retransmitted_bytes[row])
        self._reorder_retx_fraction = float(store.retx_fraction[row])
        self._is_elephant = bool(store.elephant[row])
        self._path_switches = int(store.path_switches[row])
        monitored = int(store.monitored_path[row])
        self._monitored_path_index = None if monitored < 0 else monitored
        end = float(store.end_time[row])
        self._end_time = None if math.isnan(end) else end
        component = int(store.component_id[row])
        self._component_id = None if component < 0 else component
        self._store = None
        self._row = -1

    # -- store-backed hot attributes ---------------------------------------------

    @property
    def remaining_bytes(self) -> float:
        store = self._store
        if store is None:
            return self._remaining_bytes
        return float(store.remaining_bytes[self._row])

    @remaining_bytes.setter
    def remaining_bytes(self, value: float) -> None:
        store = self._store
        if store is None:
            self._remaining_bytes = value
        else:
            store.remaining_bytes[self._row] = value

    @property
    def retransmitted_bytes(self) -> float:
        store = self._store
        if store is None:
            return self._retransmitted_bytes
        return float(store.retransmitted_bytes[self._row])

    @retransmitted_bytes.setter
    def retransmitted_bytes(self, value: float) -> None:
        store = self._store
        if store is None:
            self._retransmitted_bytes = value
        else:
            store.retransmitted_bytes[self._row] = value

    @property
    def reorder_retx_fraction(self) -> float:
        """Reordering-induced retransmission fraction of current goodput.

        Recomputed whenever components change; 0 for single-path flows.
        Assignment also refreshes the store's ``goodput_factor`` column
        (``1 - fraction``), keeping the vectorized ETA inputs in lockstep.
        """
        store = self._store
        if store is None:
            return self._reorder_retx_fraction
        return float(store.retx_fraction[self._row])

    @reorder_retx_fraction.setter
    def reorder_retx_fraction(self, value: float) -> None:
        store = self._store
        if store is None:
            self._reorder_retx_fraction = value
        else:
            store.retx_fraction[self._row] = value
            store.goodput_factor[self._row] = 1.0 - value

    @property
    def is_elephant(self) -> bool:
        store = self._store
        if store is None:
            return self._is_elephant
        return bool(store.elephant[self._row])

    @is_elephant.setter
    def is_elephant(self, value: bool) -> None:
        store = self._store
        if store is None:
            self._is_elephant = value
        else:
            store.elephant[self._row] = value

    @property
    def path_switches(self) -> int:
        store = self._store
        if store is None:
            return self._path_switches
        return int(store.path_switches[self._row])

    @path_switches.setter
    def path_switches(self, value: int) -> None:
        store = self._store
        if store is None:
            self._path_switches = value
        else:
            store.path_switches[self._row] = value

    @property
    def monitored_path_index(self) -> Optional[int]:
        """Which monitored equal-cost path this flow currently rides.

        An index into its (src ToR, dst ToR) monitor's path list, assigned
        by the DARD daemon at elephant promotion and on every shift, so
        the control plane's FV accounting compares integers instead of
        hashing switch-path tuples. ``None`` for mice and non-DARD flows.
        """
        store = self._store
        if store is None:
            return self._monitored_path_index
        index = int(store.monitored_path[self._row])
        return None if index < 0 else index

    @monitored_path_index.setter
    def monitored_path_index(self, value: Optional[int]) -> None:
        store = self._store
        if store is None:
            self._monitored_path_index = value
        else:
            store.monitored_path[self._row] = -1 if value is None else value

    @property
    def end_time(self) -> Optional[float]:
        store = self._store
        if store is None:
            return self._end_time
        end = float(store.end_time[self._row])
        return None if math.isnan(end) else end

    @end_time.setter
    def end_time(self, value: Optional[float]) -> None:
        store = self._store
        if store is None:
            self._end_time = value
        else:
            store.end_time[self._row] = math.nan if value is None else value

    @property
    def component_id(self) -> Optional[int]:
        """Advisory flow-link component root recorded at attach/rebuild.

        Written by :class:`~repro.simulator.components.FlowLinkComponents`
        bookkeeping; later unions may retire the recorded root, so treat
        it as a hint (grouping telemetry), never as an exact partition key.
        ``None`` for flows outside an incremental-realloc network.
        """
        store = self._store
        if store is None:
            return self._component_id
        root = int(store.component_id[self._row])
        return None if root < 0 else root

    @component_id.setter
    def component_id(self, value: Optional[int]) -> None:
        store = self._store
        if store is None:
            self._component_id = value
        else:
            store.component_id[self._row] = -1 if value is None else value

    # -- derived views ------------------------------------------------------------

    @property
    def rate_bps(self) -> float:
        """Aggregate allocated rate across components.

        Bound flows read the store's rate column, which the network's
        refill scatter keeps bit-equal to ``sum(component_rates)`` (the
        unbound fallback); ``check_invariants`` audits that equality.
        """
        store = self._store
        if store is None:
            return sum(self.component_rates)
        return float(store.rate_bps[self._row])

    @property
    def goodput_bps(self) -> float:
        """Rate net of reordering-induced retransmissions.

        The completion-scheduling rate: remaining bytes drain at this
        speed. Kept as one shared definition so the network's ETA
        computation and any external telemetry agree bit-for-bit.
        """
        return self.rate_bps * (1.0 - self.reorder_retx_fraction)

    @property
    def active(self) -> bool:
        store = self._store
        if store is None:
            return self._end_time is None
        return bool(np.isnan(store.end_time[self._row]))

    def age(self, now: float) -> float:
        """Seconds since the flow started."""
        return now - self.start_time

    def switch_path(self) -> Tuple[str, ...]:
        """The single path of a single-component flow (scheduler convenience)."""
        if len(self.components) != 1:
            raise ValueError(f"flow {self.flow_id} is striped over {len(self.components)} paths")
        return self.components[0].path

    def retx_rate(self) -> float:
        """Retransmitted bytes over unique bytes (the Fig. 14 metric)."""
        if self.size_bytes <= 0:
            return 0.0
        return self.retransmitted_bytes / self.size_bytes

    def path_revisits(self) -> int:
        """How many route changes returned to a previously used path."""
        revisits = 0
        seen = set()
        for path in self.path_history:
            if path in seen:
                revisits += 1
            seen.add(path)
        return revisits


@dataclass(frozen=True)
class FlowRecord:
    """Immutable record of a finished flow, kept for metrics."""

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    start_time: float
    end_time: float
    path_switches: int
    path_revisits: int
    retransmitted_bytes: float
    was_elephant: bool

    @property
    def fct(self) -> float:
        """Flow completion time (the paper's "file transfer time")."""
        return self.end_time - self.start_time

    @property
    def retx_rate(self) -> float:
        return self.retransmitted_bytes / self.size_bytes if self.size_bytes else 0.0
