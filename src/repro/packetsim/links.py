"""Store-and-forward links with FIFO queues and tail drop."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.common.errors import ConfigurationError
from repro.simulator.engine import EventEngine

#: Default queue depth in packets. The paper sets ns-2 queues to the
#: delay-bandwidth product; at 100 Mbps and sub-ms RTTs that is only a few
#: packets, so we default deeper (a typical switch's per-port buffer) to
#: keep TCP in its classic sawtooth rather than perpetually starved.
DEFAULT_QUEUE_PACKETS = 100


class PacketLink:
    """One direction of a cable: serialization + FIFO queue + propagation.

    ``transmit`` models a store-and-forward output port: the packet waits
    for the port to drain (``busy_until``), occupies it for its
    serialization time, then propagates. A packet arriving to a full queue
    is dropped (tail drop) and the drop counter increments.
    """

    def __init__(
        self,
        engine: EventEngine,
        capacity_bps: float,
        delay_s: float,
        queue_packets: int = DEFAULT_QUEUE_PACKETS,
    ) -> None:
        if capacity_bps <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bps}")
        if delay_s < 0:
            raise ConfigurationError(f"negative delay {delay_s}")
        if queue_packets < 1:
            raise ConfigurationError(f"queue must hold >= 1 packet, got {queue_packets}")
        self.engine = engine
        self.capacity_bps = capacity_bps
        self.delay_s = delay_s
        self.queue_packets = queue_packets
        self.busy_until = 0.0
        self.queued = 0
        self.drops = 0
        self.packets_sent = 0
        self.up = True

    def transmit(self, size_bytes: int, on_arrival: Callable[[], None]) -> bool:
        """Enqueue a packet; returns False (and counts a drop) if the
        queue is full or the link is down."""
        if not self.up:
            self.drops += 1
            return False
        now = self.engine.now
        if self.busy_until <= now:
            self.busy_until = now
            self.queued = 0
        if self.queued >= self.queue_packets:
            self.drops += 1
            return False
        serialization = size_bytes * 8.0 / self.capacity_bps
        departure = max(self.busy_until, now) + serialization
        self.busy_until = departure
        self.queued += 1
        self.packets_sent += 1

        def arrive() -> None:
            self.queued = max(0, self.queued - 1)
            on_arrival()

        self.engine.schedule_at(departure + self.delay_s, arrive)
        return True


class LinkTable:
    """Directed links for every cable of a topology, built lazily."""

    def __init__(self, engine: EventEngine, topology, queue_packets: int) -> None:
        self.engine = engine
        self.topology = topology
        self.queue_packets = queue_packets
        self._links: Dict[Tuple[str, str], PacketLink] = {}

    def link(self, u: str, v: str) -> PacketLink:
        """The directed packet link ``u -> v``, created on first use."""
        key = (u, v)
        existing = self._links.get(key)
        if existing is not None:
            return existing
        cable = self.topology.link(u, v)
        link = PacketLink(
            self.engine, cable.bandwidth_bps, cable.delay_s, self.queue_packets
        )
        self._links[key] = link
        return link

    def fail(self, u: str, v: str) -> None:
        """Take both directions of the cable down: packets in flight
        still arrive (they already left the port), new ones black-hole."""
        self.link(u, v).up = False
        self.link(v, u).up = False

    def restore(self, u: str, v: str) -> None:
        """Bring both directions of the cable back up."""
        self.link(u, v).up = True
        self.link(v, u).up = True

    def total_drops(self) -> int:
        """Tail drops across every instantiated link."""
        return sum(link.drops for link in self._links.values())
