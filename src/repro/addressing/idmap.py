"""Location-independent host IDs (paper §2.3).

Besides its many locator addresses, each network component carries one
location-independent IP, its *ID*, used by applications to open TCP
connections. The mapping from IDs to underlying locator addresses is kept
by a DNS-like system and cached at every host; here the mapper is that
system. IDs are drawn from ``192.168.0.0/16`` by default so they can never
collide with the ``10.0.0.0/8`` locator space.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import AddressingError
from repro.addressing.prefix import Prefix


class IdMapper:
    """Bidirectional host-name <-> ID-address mapping."""

    def __init__(self, hosts: List[str], id_space: Prefix = None) -> None:
        self.id_space = id_space if id_space is not None else Prefix.parse("192.168.0.0/16")
        span = 1 << (32 - self.id_space.length)
        if len(hosts) > span:
            raise AddressingError(
                f"{len(hosts)} hosts do not fit in ID space {self.id_space}"
            )
        self._id_of: Dict[str, int] = {}
        self._host_of: Dict[int, str] = {}
        for index, host in enumerate(sorted(hosts)):
            addr = self.id_space.address(index)
            self._id_of[host] = addr
            self._host_of[addr] = host

    def id_of(self, host: str) -> int:
        """The location-independent ID address of a host."""
        try:
            return self._id_of[host]
        except KeyError:
            raise AddressingError(f"no ID registered for host {host!r}") from None

    def host_of(self, id_addr: int) -> str:
        """Resolve an ID back to a host name (the DNS-like lookup)."""
        try:
            return self._host_of[id_addr]
        except KeyError:
            raise AddressingError(f"no host registered under ID {id_addr}") from None

    def __len__(self) -> int:
        return len(self._id_of)

    def __contains__(self, host: str) -> bool:
        return host in self._id_of
