"""Figure 10 + Table 7: DARD path-switch stability on Clos networks.

Paper shape: maxima well below the 2*D_A available paths; little path
oscillation on Clos just as on fat-trees.
"""

from repro.experiments.figures import fig10_tab7_clos_switches
from conftest import run_once


def test_fig10_tab7_clos_switches(benchmark, save_output):
    output = run_once(benchmark, fig10_tab7_clos_switches, duration_s=60.0)
    save_output(output)
    for row in output.rows:
        available = 8 if row["size"] == "D=4" else 16  # 2 * D_A
        assert row["max"] < available, row
        assert row["p90"] <= 5, row
