"""Control-plane benchmark: batched vectorized vs scalar DARD daemons.

Runs the same seeded DARD scenario twice — once with the scalar reference
control plane (per-monitor ``batch_path_state`` calls, PathState object
churn, tuple-keyed flow vectors) and once with the batched one (fleet-wide
:class:`~repro.core.registry.MonitorRegistry` cache, matrix Algorithm 1,
integer-indexed flow vectors) — and checks two things:

* **equivalence**: identical flow records AND an identical fleet-wide
  shift journal — the control-plane bit-exactness contract, end to end
  (the same contract ``repro validate`` enforces as a differential
  oracle);
* **speed**: control-plane wall time (``cp_query_time_s`` +
  ``cp_round_time_s`` from ``Network.perf_stats()``) drops by the
  acceptance factor.

Output rows land in ``benchmarks/results/perf_controlplane.txt`` and the
raw numbers in ``benchmarks/results/BENCH_perf_controlplane.json``. Scale
and duration are env-overridable (``BENCH_PERF_CONTROLPLANE_P``,
``BENCH_PERF_CONTROLPLANE_DURATION``) so CI can run a fast smoke at p=4
while the default exercises p=16; the speedup gate only applies at
p >= 16 where monitor fleets are large enough for batching to matter.
"""

import json
import os
import pathlib
import time

from repro.common.units import MB, MBPS
from repro.experiments.figures import ExperimentOutput
from repro.experiments.runner import ScenarioConfig, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

P = int(os.environ.get("BENCH_PERF_CONTROLPLANE_P", "16"))
DURATION_S = float(os.environ.get("BENCH_PERF_CONTROLPLANE_DURATION", "15"))

#: Control-plane wall-time reduction the batched mode must deliver at p=16
#: (the ISSUE acceptance gate).
MIN_SPEEDUP = 2.0


def _config(vectorized):
    return ScenarioConfig(
        topology="fattree",
        topology_params={"p": P, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="dard",
        arrival_rate_per_host=0.035,
        duration_s=DURATION_S,
        flow_size_bytes=128 * MB,
        seed=1,
        scheduler_params={"vectorized": vectorized},
    )


def _run_mode(vectorized):
    network_box = []
    started = time.perf_counter()
    result = run_scenario(_config(vectorized), instrument=network_box.append)
    wall_s = time.perf_counter() - started
    stats = network_box[0].perf_stats()
    cp_time = stats["cp_query_time_s"] + stats["cp_round_time_s"]
    row = {
        "mode": "batched" if vectorized else "scalar",
        "p": P,
        "duration_s": DURATION_S,
        "wall_s": wall_s,
        "flows_completed": len(result.records),
        "shifts": result.dard_shifts,
        "cp_time_s": cp_time,
        "cp_query_time_s": stats["cp_query_time_s"],
        "cp_round_time_s": stats["cp_round_time_s"],
        "cp_query_rounds": int(stats["cp_query_rounds"]),
        "cp_daemons": int(stats["cp_daemons"]),
    }
    if vectorized:
        row["cp_registry_pairs"] = int(stats["cp_registry_pairs"])
        row["cp_registry_cache_hits"] = int(stats["cp_registry_cache_hits"])
        row["cp_registry_refreshes"] = int(stats["cp_registry_refreshes"])
    return row, result


def _records(result):
    return [
        (r.flow_id, r.src, r.dst, r.start_time, r.end_time, r.path_switches)
        for r in result.records
    ]


def _run_all():
    scalar_row, scalar_result = _run_mode(vectorized=False)
    batched_row, batched_result = _run_mode(vectorized=True)

    # Bit-exactness, end to end: same shift journal, same flow records.
    assert batched_result.dard_shift_log == scalar_result.dard_shift_log, (
        f"shift journals diverged: {len(batched_result.dard_shift_log)} batched "
        f"vs {len(scalar_result.dard_shift_log)} scalar"
    )
    assert _records(batched_result) == _records(scalar_result), (
        f"batched mode diverged: {len(scalar_result.records)} scalar vs "
        f"{len(batched_result.records)} batched records"
    )

    speedup = (
        scalar_row["cp_time_s"] / batched_row["cp_time_s"]
        if batched_row["cp_time_s"]
        else float("inf")
    )
    rows = [scalar_row, dict(batched_row, cp_speedup=speedup)]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_perf_controlplane.json").write_text(
        json.dumps({"experiment": "perf_controlplane", "rows": rows}, indent=2) + "\n"
    )
    return ExperimentOutput(
        "perf_controlplane",
        "control-plane wall time: batched vectorized vs scalar DARD daemons",
        rows=[
            {
                "mode": r["mode"],
                "wall_s": round(r["wall_s"], 2),
                "cp_time_s": round(r["cp_time_s"], 3),
                "shifts": r["shifts"],
                "flows": r["flows_completed"],
            }
            for r in rows
        ],
        notes=f"p={P} dard stride, {DURATION_S:.0f}s, records + shift journal "
        f"verified identical across modes; control-plane speedup {speedup:.2f}x",
    )


def test_perf_controlplane(benchmark, save_output):
    output = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_output(output)
    rows = json.loads(
        (RESULTS_DIR / "BENCH_perf_controlplane.json").read_text()
    )["rows"]
    batched = rows[1]
    assert batched["cp_query_rounds"] > 0, batched
    assert batched["cp_registry_cache_hits"] > 0, batched
    if P >= 16:
        # Monitor fleets are only large enough for batching to pay off at
        # scale; the p=4 CI smoke checks equivalence and telemetry only.
        assert batched["cp_speedup"] >= MIN_SPEEDUP, batched
