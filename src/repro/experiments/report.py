"""Plain-text rendering of experiment outputs (tables and CDF sketches)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(rows: List[Dict[str, object]], columns: Sequence[str] = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3g}" if abs(value) < 0.01 or abs(value) >= 1000 else f"{value:.2f}"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in table
    )
    return f"{header}\n{rule}\n{body}"


def render_cdf(
    series: Dict[str, List[Tuple[float, float]]],
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
    unit: str = "",
) -> str:
    """Summarize CDF curves by their values at a few cumulative fractions.

    Full curves are carried in the experiment output for plotting; the text
    view reports each curve's quantiles, which is what the paper's CDF
    figures are read for anyway.
    """
    lines = []
    names = list(series)
    header = "fraction  " + "  ".join(f"{name:>12s}" for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    for q in quantiles:
        cells = []
        for name in names:
            points = series[name]
            value = _value_at_fraction(points, q)
            cells.append(f"{value:12.2f}" if value == value else f"{'-':>12s}")
        lines.append(f"{q:8.2f}  " + "  ".join(cells))
    if unit:
        lines.append(f"(values in {unit})")
    return "\n".join(lines)


def _value_at_fraction(points: List[Tuple[float, float]], fraction: float) -> float:
    """Smallest value whose cumulative fraction reaches ``fraction``."""
    if not points:
        return float("nan")
    for value, cumulative in points:
        if cumulative >= fraction - 1e-12:
            return value
    return points[-1][0]
