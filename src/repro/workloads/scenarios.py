"""Adversarial scenario engine: empirical workloads, incast, failure storms.

The paper evaluates DARD on three synthetic uniform-elephant patterns
(§4.1) because commercial traces were unavailable. This module supplies
the workload classes where adaptive routing either earns its keep or
oscillates:

* :class:`EmpiricalDistribution` plus heavy-tailed lognormal/Pareto
  mixture samplers with named DCN presets (:data:`SIZE_PRESETS`,
  :data:`INTERARRIVAL_PRESETS`), feeding the existing
  :class:`~repro.workloads.generator.WorkloadSpec` pipeline through
  :class:`EmpiricalArrivalProcess`;
* :class:`IncastPattern` — many-to-one traffic — and
  :class:`IncastBarrierProcess` — synchronized barriers where every
  sender opens a flow at the same instant;
* :class:`FailureStormScenario` — rolling ``fail_link``/``restore_link``
  waves scheduled through the :class:`~repro.simulator.engine.EventEngine`.

Every sampler draws exclusively from an injected
``numpy.random.Generator`` (the determinism contract: a scenario is a
pure function of its seed), and every class here is drawn by the fuzzer
(``repro.validation.fuzz``) and certified by the differential-oracle
battery, including the :class:`~repro.validation.oracles.StormOracle`.

The predictive elephant detector that these scenarios ablate lives in
:mod:`repro.simulator.detectors` (it is simulator state, not workload);
it is re-exported here so the scenario engine is one import surface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.simulator.detectors import PredictiveElephantDetector
from repro.simulator.engine import EventEngine
from repro.topology.multirooted import MultiRootedTopology
from repro.workloads.generator import ArrivalProcess, WorkloadSpec
from repro.workloads.patterns import TrafficPattern

__all__ = [
    "ARRIVAL_PROCESSES",
    "EmpiricalArrivalProcess",
    "EmpiricalDistribution",
    "FailureStormScenario",
    "INTERARRIVAL_PRESETS",
    "IncastBarrierProcess",
    "IncastPattern",
    "LognormalDistribution",
    "MixtureDistribution",
    "ParetoDistribution",
    "PredictiveElephantDetector",
    "SIZE_PRESETS",
    "make_arrival_process",
    "make_interarrival_distribution",
    "make_size_distribution",
]


# ---------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------

class Distribution(abc.ABC):
    """A positive scalar sampler with a known (finite) mean.

    The finite mean is load-bearing: the arrival pipeline rescales every
    distribution so its mean hits the configured ``flow_size_bytes`` (or
    mean inter-arrival gap), keeping offered load comparable across
    presets, schedulers, and detectors.
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value (always > 0)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """The exact distribution mean."""

    def scaled_to_mean(self, target_mean: float) -> "Distribution":
        """This distribution rescaled so its mean equals ``target_mean``."""
        if target_mean <= 0:
            raise ConfigurationError(f"target mean must be positive, got {target_mean}")
        return _ScaledDistribution(self, target_mean / self.mean())


class _ScaledDistribution(Distribution):
    """A distribution multiplied by a fixed positive factor."""

    def __init__(self, inner: Distribution, factor: float) -> None:
        self.inner = inner
        self.factor = float(factor)

    def sample(self, rng: np.random.Generator) -> float:
        return self.inner.sample(rng) * self.factor

    def mean(self) -> float:
        return self.inner.mean() * self.factor


class EmpiricalDistribution(Distribution):
    """Inverse-CDF sampler over observed ``(value, weight)`` support points.

    The canonical way to feed a measured flow-size CDF (the published
    DCN workload papers report exactly this shape) into the generator.
    Weights need not be normalized; values must be positive.

    >>> import numpy as np
    >>> dist = EmpiricalDistribution([10.0, 100.0], [3.0, 1.0])
    >>> round(dist.mean(), 3)
    32.5
    >>> dist.quantile(0.5)
    10.0
    """

    def __init__(
        self,
        values: Sequence[float],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if len(values) == 0:
            raise ConfigurationError("empirical distribution needs at least one value")
        if weights is None:
            weights = [1.0] * len(values)
        if len(weights) != len(values):
            raise ConfigurationError(
                f"{len(values)} values but {len(weights)} weights"
            )
        pairs = sorted(zip((float(v) for v in values), (float(w) for w in weights)))
        self.values = np.array([v for v, _ in pairs], dtype=float)
        raw = np.array([w for _, w in pairs], dtype=float)
        if np.any(self.values <= 0):
            raise ConfigurationError("empirical values must be positive")
        if np.any(raw < 0) or float(raw.sum()) <= 0:
            raise ConfigurationError(f"invalid empirical weights {list(raw)}")
        self.weights = raw / raw.sum()
        self._cdf = np.cumsum(self.weights)
        self._mean = float(np.dot(self.values, self.weights))

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "EmpiricalDistribution":
        """Build from raw observations (each sample weighted equally)."""
        return cls(list(samples))

    def sample(self, rng: np.random.Generator) -> float:
        return self.quantile(float(rng.random()))

    def quantile(self, q: float) -> float:
        """The smallest support value whose CDF reaches ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        index = int(np.searchsorted(self._cdf, q, side="left"))
        return float(self.values[min(index, len(self.values) - 1)])

    def mean(self) -> float:
        return self._mean


class LognormalDistribution(Distribution):
    """Lognormal(mu, sigma) — the body of most measured DCN size CDFs."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ConfigurationError(f"lognormal sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))


class ParetoDistribution(Distribution):
    """Pareto(alpha, x_m) — the heavy elephant tail.

    ``alpha`` must exceed 1 so the mean is finite (the pipeline rescales
    by it); the classic DCN tail exponents (1.05–2) qualify.
    """

    def __init__(self, alpha: float, x_m: float) -> None:
        if alpha <= 1.0:
            raise ConfigurationError(
                f"pareto alpha must exceed 1 for a finite mean, got {alpha}"
            )
        if x_m <= 0:
            raise ConfigurationError(f"pareto scale must be positive, got {x_m}")
        self.alpha = float(alpha)
        self.x_m = float(x_m)

    def sample(self, rng: np.random.Generator) -> float:
        return self.x_m * (1.0 + float(rng.pareto(self.alpha)))

    def mean(self) -> float:
        return self.alpha * self.x_m / (self.alpha - 1.0)


class MixtureDistribution(Distribution):
    """A weighted mixture of component distributions (mice body + tail)."""

    def __init__(
        self,
        components: Sequence[Distribution],
        weights: Sequence[float],
    ) -> None:
        if not components:
            raise ConfigurationError("mixture needs at least one component")
        if len(components) != len(weights):
            raise ConfigurationError(
                f"{len(components)} components but {len(weights)} weights"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError(f"invalid mixture weights {list(weights)}")
        total = float(sum(weights))
        self.components = list(components)
        self.weights = [float(w) / total for w in weights]

    def sample(self, rng: np.random.Generator) -> float:
        index = int(rng.choice(len(self.components), p=self.weights))
        return self.components[index].sample(rng)

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )


#: Named heavy-tailed flow-size presets, shaped after the published DCN
#: workload families (web-search / data-mining / cache-follower style
#: mixtures: a lognormal mice body plus a Pareto elephant tail). The
#: absolute byte scale is nominal — the arrival pipeline rescales every
#: preset so its mean equals the configured ``flow_size_bytes``.
SIZE_PRESETS: Dict[str, Callable[[], Distribution]] = {
    "websearch": lambda: MixtureDistribution(
        [LognormalDistribution(np.log(20e3), 1.0), ParetoDistribution(1.5, 1e6)],
        [0.7, 0.3],
    ),
    "datamining": lambda: MixtureDistribution(
        [LognormalDistribution(np.log(4e3), 1.2), ParetoDistribution(1.2, 2e6)],
        [0.8, 0.2],
    ),
    "cache": lambda: MixtureDistribution(
        [LognormalDistribution(np.log(64e3), 0.8), ParetoDistribution(1.8, 4e6)],
        [0.9, 0.1],
    ),
}

class _ExponentialGap(Distribution):
    """Unit-mean exponential gaps (the Poisson baseline, exactly)."""

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0))

    def mean(self) -> float:
        return 1.0


#: Named inter-arrival-gap presets (mean-1 shapes; the pipeline rescales
#: to the configured per-host rate). ``exponential`` reproduces the
#: paper's Poisson arrivals; ``bursty`` is a high-variance lognormal that
#: clumps arrivals the way measured traces do.
INTERARRIVAL_PRESETS: Dict[str, Callable[[], Distribution]] = {
    "exponential": _ExponentialGap,
    "bursty": lambda: LognormalDistribution(-1.125, 1.5),
}


def make_size_distribution(preset: str) -> Distribution:
    """Construct a named flow-size distribution preset."""
    if preset not in SIZE_PRESETS:
        raise ConfigurationError(
            f"unknown size preset {preset!r}; expected one of {sorted(SIZE_PRESETS)}"
        )
    return SIZE_PRESETS[preset]()


def make_interarrival_distribution(preset: str) -> Distribution:
    """Construct a named inter-arrival-gap distribution preset."""
    if preset not in INTERARRIVAL_PRESETS:
        raise ConfigurationError(
            f"unknown interarrival preset {preset!r}; expected one of "
            f"{sorted(INTERARRIVAL_PRESETS)}"
        )
    return INTERARRIVAL_PRESETS[preset]()


# ---------------------------------------------------------------------------
# Empirical arrival process
# ---------------------------------------------------------------------------

class EmpiricalArrivalProcess(ArrivalProcess):
    """Arrivals with empirical per-flow sizes and inter-arrival gaps.

    A drop-in :class:`~repro.workloads.generator.ArrivalProcess` whose
    flow sizes come from ``size_dist`` (rescaled so the mean equals
    ``spec.flow_size_bytes``) and whose gaps come from ``gap_dist``
    (rescaled so the mean gap equals ``1 / arrival_rate_per_host``;
    ``None`` keeps exact Poisson gaps). Load therefore matches the plain
    Poisson/fixed-size process in expectation, while sizes go heavy-tailed
    — the regime where threshold elephant detection wastes its 10 s wait.
    """

    def __init__(
        self,
        engine: EventEngine,
        pattern: TrafficPattern,
        spec: WorkloadSpec,
        sink: Callable[[str, str, float], object],
        rng: np.random.Generator,
        size_dist: Distribution,
        gap_dist: Optional[Distribution] = None,
        max_flows: Optional[int] = None,
    ) -> None:
        super().__init__(engine, pattern, spec, sink, rng, max_flows)
        self.size_dist = size_dist.scaled_to_mean(spec.flow_size_bytes)
        self.gap_dist = (
            None
            if gap_dist is None
            else gap_dist.scaled_to_mean(1.0 / spec.arrival_rate_per_host)
        )

    def _schedule_next(self, host: str) -> None:
        if self.gap_dist is None:
            super()._schedule_next(host)
            return
        gap = self.gap_dist.sample(self.rng)
        when = self.engine.now + gap
        if when > self.spec.duration_s:
            return
        self.engine.schedule_at(when, lambda h=host: self._arrive(h))

    def _arrive(self, host: str) -> None:
        if self.max_flows is None or self.flows_generated < self.max_flows:
            dst = self.pattern.pick_dst(host, self.rng)
            size = max(1.0, self.size_dist.sample(self.rng))
            self.sink(host, dst, size)
            self.flows_generated += 1
        self._schedule_next(host)


# ---------------------------------------------------------------------------
# Incast
# ---------------------------------------------------------------------------

class IncastPattern(TrafficPattern):
    """Many-to-one: every sender converges on a small set of aggregators.

    The first ``targets`` hosts (in sorted order, so the choice is a pure
    function of the topology) act as aggregators; every other host sends
    to one of them, concentrating load on the aggregators' access links.
    Aggregators themselves send background traffic uniformly — partition
    tolerance for the paper's per-host arrival processes, which generate
    from *every* host.
    """

    name = "incast"

    def __init__(self, topology: MultiRootedTopology, targets: int = 1) -> None:
        super().__init__(topology)
        targets = int(targets)
        if not 1 <= targets < len(self.hosts):
            raise ConfigurationError(
                f"incast targets must be in [1, {len(self.hosts) - 1}], got {targets}"
            )
        self.targets = self.hosts[:targets]
        self._target_set = frozenset(self.targets)
        #: the fan-in side; :class:`IncastBarrierProcess` bursts these.
        self.senders = [h for h in self.hosts if h not in self._target_set]

    def pick_dst(self, src: str, rng: np.random.Generator) -> str:
        if src in self._target_set:
            while True:
                dst = self.hosts[int(rng.integers(len(self.hosts)))]
                if dst != src:
                    return dst
        if len(self.targets) == 1:
            return self.targets[0]
        return self.targets[int(rng.integers(len(self.targets)))]


class IncastBarrierProcess:
    """Synchronized many-to-one bursts: a barrier fires, everyone sends.

    The adversarial half of incast is the synchronization: at every
    barrier instant each participating sender opens one flow *at the same
    simulated time* (the scatter/gather and partition-aggregate pattern).
    Between barriers the fabric is quiet, so schedulers face a square
    load wave instead of Poisson smoothing.

    API-compatible with :class:`~repro.workloads.generator.ArrivalProcess`
    (``start()`` / ``flows_generated``) so the scenario runner treats the
    two interchangeably. The default barrier period is ``1 / arrival
    rate`` — each host fires once per period in expectation, matching the
    Poisson process's offered load.
    """

    def __init__(
        self,
        engine: EventEngine,
        pattern: TrafficPattern,
        spec: WorkloadSpec,
        sink: Callable[[str, str, float], object],
        rng: np.random.Generator,
        period_s: Optional[float] = None,
        senders_per_burst: Optional[int] = None,
        max_flows: Optional[int] = None,
    ) -> None:
        if period_s is None:
            period_s = 1.0 / spec.arrival_rate_per_host
        if period_s <= 0:
            raise ConfigurationError(f"barrier period must be positive, got {period_s}")
        if senders_per_burst is not None and senders_per_burst < 1:
            raise ConfigurationError(
                f"senders_per_burst must be positive, got {senders_per_burst}"
            )
        self.engine = engine
        self.pattern = pattern
        self.spec = spec
        self.sink = sink
        self.rng = rng
        self.period_s = float(period_s)
        self.senders_per_burst = senders_per_burst
        self.max_flows = max_flows
        self.flows_generated = 0
        self.barriers_fired = 0
        # IncastPattern exposes its fan-in side; any other pattern bursts
        # from every host (an all-to-all synchronized wave).
        self._senders: List[str] = list(getattr(pattern, "senders", pattern.hosts))

    def start(self) -> None:
        """Arm every barrier up to the workload duration."""
        when = self.period_s
        while when <= self.spec.duration_s:
            self.engine.schedule_at(when, self._barrier)
            when += self.period_s

    def _barrier(self) -> None:
        senders = self._senders
        if self.senders_per_burst is not None and self.senders_per_burst < len(senders):
            drawn = self.rng.choice(
                len(senders), size=self.senders_per_burst, replace=False
            )
            senders = [senders[i] for i in sorted(int(j) for j in drawn)]
        self.barriers_fired += 1
        for host in senders:
            if self.max_flows is not None and self.flows_generated >= self.max_flows:
                return
            dst = self.pattern.pick_dst(host, self.rng)
            self.sink(host, dst, self.spec.flow_size_bytes)
            self.flows_generated += 1


# ---------------------------------------------------------------------------
# Failure storms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FailureStormScenario:
    """Rolling fail/restore waves over the switch-switch cables.

    Every ``wave_interval_s`` starting at ``start_s``, ``cables_per_wave``
    currently-up cables (drawn from the injected rng) go down; each comes
    back ``outage_s`` later (``outage_s <= 0`` means never). The schedule
    is generated as plain ``("fail" | "restore", time, u, v)`` events —
    the same shape :class:`~repro.experiments.runner.ScenarioConfig`
    carries in ``link_events`` — so storms serialize through the config
    JSON round-trip and shrink event-by-event under the fuzzer.
    """

    start_s: float = 2.0
    wave_interval_s: float = 2.0
    waves: int = 3
    cables_per_wave: int = 1
    outage_s: float = 1.5

    def __post_init__(self) -> None:
        if self.start_s <= 0:
            raise ConfigurationError(f"storm start must be positive, got {self.start_s}")
        if self.wave_interval_s <= 0:
            raise ConfigurationError(
                f"wave interval must be positive, got {self.wave_interval_s}"
            )
        if self.waves < 1:
            raise ConfigurationError(f"storm needs at least one wave, got {self.waves}")
        if self.cables_per_wave < 1:
            raise ConfigurationError(
                f"cables per wave must be positive, got {self.cables_per_wave}"
            )

    @staticmethod
    def storm_cables(topology: MultiRootedTopology) -> List[Tuple[str, str]]:
        """The sorted switch-switch cables a storm draws from."""
        return sorted(
            (link.u, link.v)
            for link in topology.links()
            if topology.node(link.u).kind.is_switch
            and topology.node(link.v).kind.is_switch
        )

    def link_events(
        self, topology: MultiRootedTopology, rng: np.random.Generator
    ) -> Tuple[Tuple[str, float, str, str], ...]:
        """Generate the storm's deterministic fail/restore event schedule.

        Rolling semantics: a cable already down at a wave instant is not
        drawn again until its restore lands, so the storm sweeps across
        the fabric instead of hammering one cable.
        """
        cables = self.storm_cables(topology)
        if not cables:
            raise ConfigurationError("topology has no switch-switch cables to fail")
        events: List[Tuple[str, float, str, str]] = []
        down_until: Dict[Tuple[str, str], float] = {}
        for wave in range(self.waves):
            when = self.start_s + wave * self.wave_interval_s
            up = [c for c in cables if down_until.get(c, 0.0) <= when]
            if not up:
                continue
            take = min(self.cables_per_wave, len(up))
            drawn = rng.choice(len(up), size=take, replace=False)
            for index in sorted(int(i) for i in drawn):
                u, v = up[index]
                events.append(("fail", when, u, v))
                if self.outage_s > 0:
                    restore_at = when + self.outage_s
                    events.append(("restore", restore_at, u, v))
                    down_until[(u, v)] = restore_at
                else:
                    down_until[(u, v)] = float("inf")
        return tuple(sorted(events))

    def install(self, network, rng: np.random.Generator) -> Tuple:
        """Schedule the storm directly onto a live network's engine.

        Returns the generated event schedule (for logging / assertions).
        """
        events = self.link_events(network.topology, rng)
        for action, when, u, v in events:
            if action == "fail":
                network.engine.schedule_at(
                    when, lambda u=u, v=v: network.fail_link(u, v)
                )
            else:
                network.engine.schedule_at(
                    when, lambda u=u, v=v: network.restore_link(u, v)
                )
        return events


# ---------------------------------------------------------------------------
# Arrival-process factory (the runner's seam)
# ---------------------------------------------------------------------------

#: Registered arrival-process kinds for ``ScenarioConfig.arrival``.
ARRIVAL_PROCESSES = ("poisson", "empirical", "incast-barrier")


def make_arrival_process(
    name: str,
    engine: EventEngine,
    pattern: TrafficPattern,
    spec: WorkloadSpec,
    sink: Callable[[str, str, float], object],
    rng: np.random.Generator,
    **params,
):
    """Construct an arrival process by registry name.

    ``poisson`` is the paper's baseline (exact historical behavior);
    ``empirical`` takes ``size_preset`` (default ``websearch``) and an
    optional ``interarrival_preset``; ``incast-barrier`` takes
    ``period_s`` / ``senders_per_burst``. All three accept ``max_flows``.
    """
    if name == "poisson":
        return ArrivalProcess(engine, pattern, spec, sink, rng, **params)
    if name == "empirical":
        size_preset = params.pop("size_preset", "websearch")
        interarrival_preset = params.pop("interarrival_preset", None)
        gap_dist = (
            None
            if interarrival_preset is None
            else make_interarrival_distribution(interarrival_preset)
        )
        return EmpiricalArrivalProcess(
            engine,
            pattern,
            spec,
            sink,
            rng,
            size_dist=make_size_distribution(size_preset),
            gap_dist=gap_dist,
            **params,
        )
    if name == "incast-barrier":
        return IncastBarrierProcess(engine, pattern, spec, sink, rng, **params)
    raise ConfigurationError(
        f"unknown arrival process {name!r}; expected one of {sorted(ARRIVAL_PROCESSES)}"
    )
