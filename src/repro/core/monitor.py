"""On-demand path-state monitoring (paper §2.4).

A monitor tracks the BoNF of every equal-cost path between one source ToR
and one destination ToR. Instead of flooding probes along each path, it
uses *Path State Assembling*: it queries a fixed set of switches for their
per-egress-port state — (1) the source ToR, (2) the aggregation switches
above it, (3) the core switches, (4) the aggregation switches above the
destination ToR — and assembles the replies into per-path bottleneck
states. That switch set covers every equal-cost path, so the query cost is
bounded by topology size, not flow count (the crux of the Fig. 15
overhead comparison).

Monitors keep their state as two parallel arrays (``state_band``,
``state_eleph``) rather than :class:`PathState` objects: the vectorized
scheduling round consumes the arrays directly, and the ``path_states``
property materializes the object view only where callers (the scalar
reference mode, tests) actually want it. Everything per-pair and
topology-static — the path list, the link-id CSR, the switch query set —
is computed once per pair in :class:`PairPaths` and shared between
monitors through the :class:`~repro.core.registry.MonitorRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.scheduling.messages import MessageLedger, MessageSizes
from repro.simulator.network import Network
from repro.topology.multirooted import MultiRootedTopology, SwitchPath
from repro.core.bonf import PathState
from repro.core.registry import MonitorRegistry


def switches_to_query(
    topology: MultiRootedTopology, src_tor: str, dst_tor: str
) -> Set[str]:
    """The switch set a monitor polls (paper §2.4.2).

    For inter-pod pairs this is the paper's four groups. For intra-pod
    pairs the equal-cost paths only cross the shared aggregation switches,
    so only the source ToR and those switches need polling.
    """
    paths = topology.equal_cost_paths(src_tor, dst_tor)
    if len(paths[0]) == 5:
        switches: Set[str] = {src_tor}
        switches.update(topology.up_neighbors(src_tor))
        switches.update(topology.cores())
        switches.update(topology.up_neighbors(dst_tor))
        return switches
    switches = {src_tor}
    for path in paths:
        switches.update(path[1:-1])
    return switches


@dataclass(frozen=True)
class PairPaths:
    """Everything topology-static about one (src ToR, dst ToR) pair.

    Computed once per pair (and interned by the registry so monitor churn
    never recomputes it): the equal-cost path list, the path -> position
    lookup, the switch query set, the link-id CSR over the *monitored*
    paths (same-ToR length-1 paths carry no switch-switch link and are
    excluded), and the per-link local-row adjacency the registry uses to
    map dirty links back to CSR rows.
    """

    paths: List[SwitchPath]
    path_index_map: Dict[SwitchPath, int]
    query_switches: Set[str]
    #: positions (into ``paths``) that have a CSR row, ascending.
    monitored: np.ndarray
    csr_indices: np.ndarray
    csr_indptr: np.ndarray
    #: ``(link id, local monitored-row indices)`` pairs, ascending link id.
    link_rows: List[Tuple[int, np.ndarray]] = field(repr=False)


def index_pair_paths(network: Network, src_tor: str, dst_tor: str) -> PairPaths:
    """Build the :class:`PairPaths` description of one ToR pair."""
    paths = network.topology.equal_cost_paths(src_tor, dst_tor)
    path_link_ids = [
        network.index_switch_path(path) if len(path) > 1 else None
        for path in paths
    ]
    monitored = np.array(
        [i for i, ids in enumerate(path_link_ids) if ids is not None],
        dtype=np.intp,
    )
    monitored_ids = [path_link_ids[int(i)] for i in monitored]
    if monitored_ids:
        lengths = np.fromiter(
            (ids.size for ids in monitored_ids),
            dtype=np.intp,
            count=len(monitored_ids),
        )
        csr_indptr = np.zeros(len(monitored_ids) + 1, dtype=np.intp)
        np.cumsum(lengths, out=csr_indptr[1:])
        csr_indices = np.concatenate(monitored_ids)
    else:
        csr_indptr = np.zeros(1, dtype=np.intp)
        csr_indices = np.empty(0, dtype=np.intp)
    by_link: Dict[int, List[int]] = {}
    for local, ids in enumerate(monitored_ids):
        for link_id in ids.tolist():
            by_link.setdefault(link_id, []).append(local)
    link_rows = [
        (link_id, np.array(rows, dtype=np.intp))
        for link_id, rows in sorted(by_link.items())
    ]
    return PairPaths(
        paths=paths,
        path_index_map={tuple(p): i for i, p in enumerate(paths)},
        query_switches=switches_to_query(network.topology, src_tor, dst_tor),
        monitored=monitored,
        csr_indices=csr_indices,
        csr_indptr=csr_indptr,
        link_rows=link_rows,
    )


class PathMonitor:
    """Tracks path states between one (source ToR, destination ToR) pair.

    Maintains the paper's two vectors: PV as the ``state_band`` /
    ``state_eleph`` arrays (the ``path_states`` property is the
    :class:`PathState` object view of the same data), and — via the owning
    daemon — FV, the number of elephant flows the host itself sends along
    each path. With a ``registry``, polls are answered from the fleet-wide
    cache; standalone monitors query the network directly.
    """

    def __init__(
        self,
        network: Network,
        src_tor: str,
        dst_tor: str,
        ledger: MessageLedger,
        message_sizes: MessageSizes = MessageSizes(),
        registry: Optional[MonitorRegistry] = None,
    ) -> None:
        self.network = network
        self.src_tor = src_tor
        self.dst_tor = dst_tor
        self.ledger = ledger
        self.message_sizes = message_sizes
        self.registry = registry
        if registry is not None:
            pair_paths = registry.register(src_tor, dst_tor)
        else:
            pair_paths = index_pair_paths(network, src_tor, dst_tor)
        self.pair_paths = pair_paths
        self.paths: List[SwitchPath] = pair_paths.paths
        self._path_index = pair_paths.path_index_map
        self.query_switches = pair_paths.query_switches
        self._monitored = pair_paths.monitored
        self._csr_indices = pair_paths.csr_indices
        self._csr_indptr = pair_paths.csr_indptr
        #: per-path bottleneck state (PV), kept as arrays for the
        #: vectorized round; zeros until the first poll, like the old
        #: ``PathState(0, 0)`` initialization.
        self.state_band = np.zeros(len(self.paths), dtype=float)
        self.state_eleph = np.zeros(len(self.paths), dtype=np.int64)
        self.queries_sent = 0
        self._released = False

    def refresh(self) -> None:
        """One polling round: query switches, assemble per-path states.

        The hot path — updates the state arrays in place and builds no
        :class:`PathState` objects. Message accounting is identical with
        and without a registry (the batching is a simulator-side
        optimization; the modelled protocol still polls every switch).
        """
        n = len(self.query_switches)
        self.ledger.record("dard_query", self.message_sizes.dard_query, n)
        self.ledger.record("dard_reply", self.message_sizes.dard_reply, n)
        self.queries_sent += n
        rows = self._monitored
        if rows.size == 0:
            # Same-ToR paths have no switch-switch link to monitor.
            self.state_band.fill(np.inf)
            self.state_eleph.fill(0)
            return
        if self.registry is not None:
            band, eleph = self.registry.pair_rows(self.src_tor, self.dst_tor)
        else:
            band, eleph = self.network.batch_path_state_arrays(
                self._csr_indices, self._csr_indptr
            )
        if rows.size == self.state_band.size:
            np.copyto(self.state_band, band)
            np.copyto(self.state_eleph, eleph)
        else:
            self.state_band.fill(np.inf)
            self.state_eleph.fill(0)
            self.state_band[rows] = band
            self.state_eleph[rows] = eleph

    def query(self) -> List[PathState]:
        """:meth:`refresh`, returning the object view (test convenience)."""
        self.refresh()
        return self.path_states

    @property
    def path_states(self) -> List[PathState]:
        """PV as :class:`PathState` objects, built on demand.

        A fresh list each access — mutate the monitor through
        :meth:`note_shift` (or assign a whole new list), not by writing
        into the returned list.
        """
        return [
            PathState(bandwidth_bps=float(band), flow_numbers=int(eleph))
            for band, eleph in zip(
                self.state_band.tolist(), self.state_eleph.tolist()
            )
        ]

    @path_states.setter
    def path_states(self, states: List[PathState]) -> None:
        self.state_band = np.array(
            [state.bandwidth_bps for state in states], dtype=float
        )
        self.state_eleph = np.array(
            [state.flow_numbers for state in states], dtype=np.int64
        )

    def note_shift(self, from_index: int, to_index: int) -> None:
        """Optimistic within-round update after shifting one elephant.

        Both sides: the target path carries one more elephant (the old
        ``PathState.with_one_more_flow()`` update) *and* the vacated path
        one fewer — so later decisions in the same round see neither a
        stale-pessimistic source nor a stale-optimistic target. The next
        poll refreshes ground truth either way.
        """
        self.state_eleph[to_index] += 1
        if self.state_eleph[from_index] > 0:
            self.state_eleph[from_index] -= 1

    def release(self) -> None:
        """Drop this monitor's registry registration (daemon teardown)."""
        if self.registry is not None and not self._released:
            self._released = True
            self.registry.release(self.src_tor, self.dst_tor)

    def path_index(self, switch_path: SwitchPath) -> int:
        """Which monitored path a flow's current route corresponds to."""
        try:
            return self._path_index[tuple(switch_path)]
        except KeyError:
            raise KeyError(
                f"path {switch_path!r} is not an equal-cost path between "
                f"{self.src_tor!r} and {self.dst_tor!r}"
            ) from None
