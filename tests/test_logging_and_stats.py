"""Tests for the logging facility and the network statistics sampler."""

import logging

import pytest

from repro.common import enable_console_logging, get_logger
from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.analysis import NetworkStatsSampler
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


class TestLogging:
    def test_namespacing(self):
        assert get_logger("core.daemon").name == "repro.core.daemon"
        assert get_logger("repro.simulator").name == "repro.simulator"

    def test_silent_by_default(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_enable_and_remove_console_handler(self):
        handler = enable_console_logging(logging.DEBUG)
        root = logging.getLogger("repro")
        try:
            assert handler in root.handlers
            assert root.level == logging.DEBUG
        finally:
            root.removeHandler(handler)

    def test_failure_events_logged(self, caplog):
        net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        with caplog.at_level(logging.INFO, logger="repro"):
            net.fail_link("core_0_0", "agg_0_0")
            net.restore_link("core_0_0", "agg_0_0")
        messages = [r.message for r in caplog.records]
        assert any("failed" in m for m in messages)
        assert any("restored" in m for m in messages)


class TestNetworkStatsSampler:
    def _net(self):
        return Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))

    def _start(self, net, src, dst, size):
        topo = net.topology
        path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[0]
        return net.start_flow(
            src, dst, size, [FlowComponent(topo.host_path(src, dst, path))]
        )

    def test_samples_track_activity(self):
        net = self._net()
        sampler = NetworkStatsSampler(net, interval_s=1.0)
        self._start(net, "h_0_0_0", "h_1_0_0", 200 * MB)  # lasts 16 s
        net.engine.run_until(12.0)
        assert sampler.peak_active_flows() == 1
        # By t=11 the flow is an elephant.
        assert sampler.samples[-1].active_elephants == 1
        assert sampler.mean_throughput_bps() == pytest.approx(100 * MBPS)

    def test_failed_links_counted_as_cables(self):
        net = self._net()
        sampler = NetworkStatsSampler(net, interval_s=1.0)
        net.fail_link("core_0_0", "agg_0_0")
        net.engine.run_until(2.0)
        assert sampler.samples[-1].failed_links == 1

    def test_busiest_instant(self):
        net = self._net()
        sampler = NetworkStatsSampler(net, interval_s=1.0)
        with pytest.raises(ConfigurationError):
            sampler.busiest_instant()
        self._start(net, "h_0_0_0", "h_1_0_0", 50 * MB)
        net.engine.run_until(3.0)
        assert sampler.busiest_instant().throughput_bps == pytest.approx(100 * MBPS)

    def test_interval_validated(self):
        with pytest.raises(ConfigurationError):
            NetworkStatsSampler(self._net(), interval_s=-1.0)
