"""EXC001 bad fixture: a broad except that can eat validation signals."""


def run_check(check):
    """An InvariantViolation raised by check() vanishes into False."""
    try:
        check()
    except Exception:
        return False
    return True
