"""The congestion game (F, G, {r_f}) and its lexicographic potential.

Terminology follows the paper's Appendix B:

* a **strategy** assigns each flow one of its routes (a route is the set of
  links it crosses);
* a link's state under a strategy is its BoNF — bandwidth over the number
  of flows using it;
* a flow's state is the *smallest* BoNF along its route (its bottleneck);
* the **state vector** ``SV(s) = [v_0, v_1, ...]`` counts links whose BoNF
  falls in bucket ``[k δ, (k+1) δ)``; strategies are compared
  lexicographically on it, and every selfish improvement strictly
  decreases it — that is the potential argument behind Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

LinkName = Hashable
Strategy = Tuple[int, ...]


@dataclass(frozen=True)
class GameFlow:
    """One player: the set of alternative routes it may use."""

    flow_id: int
    routes: Tuple[Tuple[LinkName, ...], ...]

    def __post_init__(self) -> None:
        if not self.routes:
            raise ConfigurationError(f"flow {self.flow_id} has no routes")
        for route in self.routes:
            if not route:
                raise ConfigurationError(f"flow {self.flow_id} has an empty route")


class CongestionGame:
    """An atomic congestion game with the BoNF cost structure."""

    def __init__(
        self,
        capacities: Dict[LinkName, float],
        flows: Sequence[GameFlow],
        delta_bps: float,
    ) -> None:
        if delta_bps <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta_bps}")
        for link, cap in capacities.items():
            if cap <= 0:
                raise ConfigurationError(f"link {link!r} has non-positive capacity")
        self.capacities = dict(capacities)
        self.flows = list(flows)
        self.delta_bps = delta_bps
        for flow in self.flows:
            for route in flow.routes:
                for link in route:
                    if link not in self.capacities:
                        raise ConfigurationError(
                            f"flow {flow.flow_id} route uses unknown link {link!r}"
                        )

    # -- strategy mechanics ---------------------------------------------------

    def initial_strategy(self) -> Strategy:
        """Everyone on their first route."""
        return tuple(0 for _ in self.flows)

    def validate_strategy(self, strategy: Strategy) -> None:
        """Raise unless the strategy indexes a valid route per flow."""
        if len(strategy) != len(self.flows):
            raise ConfigurationError(
                f"strategy has {len(strategy)} entries for {len(self.flows)} flows"
            )
        for flow, choice in zip(self.flows, strategy):
            if not 0 <= choice < len(flow.routes):
                raise ConfigurationError(
                    f"flow {flow.flow_id} route index {choice} out of range"
                )

    def link_counts(self, strategy: Strategy) -> Dict[LinkName, int]:
        """Flows per link under a strategy."""
        counts: Dict[LinkName, int] = {}
        for flow, choice in zip(self.flows, strategy):
            for link in flow.routes[choice]:
                counts[link] = counts.get(link, 0) + 1
        return counts

    def link_bonf(self, link: LinkName, count: int) -> float:
        """BoNF of a link carrying ``count`` flows (infinite when idle)."""
        if count <= 0:
            return float("inf")
        return self.capacities[link] / count

    def flow_bonf(self, strategy: Strategy, flow_index: int, counts=None) -> float:
        """The flow's state: its route's bottleneck BoNF."""
        if counts is None:
            counts = self.link_counts(strategy)
        route = self.flows[flow_index].routes[strategy[flow_index]]
        return min(self.link_bonf(link, counts.get(link, 0)) for link in route)

    def min_bonf(self, strategy: Strategy) -> float:
        """The system state: the smallest BoNF over all *used* links."""
        counts = self.link_counts(strategy)
        used = [self.link_bonf(link, c) for link, c in counts.items() if c > 0]
        return min(used) if used else float("inf")

    # -- the lexicographic potential ----------------------------------------------

    def state_vector(self, strategy: Strategy) -> Tuple[int, ...]:
        """``SV(s)``: link counts per BoNF bucket of width δ.

        Links carrying no flow (infinite BoNF) are omitted — they can only
        get *better* buckets by gaining flows, and omitting them keeps the
        vector finite. Trailing zeros are trimmed so equal vectors compare
        equal regardless of bucket horizon.
        """
        counts = self.link_counts(strategy)
        buckets: Dict[int, int] = {}
        for link, count in counts.items():
            if count <= 0:
                continue
            bucket = int(self.link_bonf(link, count) / self.delta_bps)
            buckets[bucket] = buckets.get(bucket, 0) + 1
        if not buckets:
            return ()
        horizon = max(buckets) + 1
        return tuple(buckets.get(k, 0) for k in range(horizon))

    # -- selfish moves (Algorithm 1's game-theoretic core) ---------------------------

    def best_response(
        self, strategy: Strategy, flow_index: int
    ) -> Optional[int]:
        """The route that most improves the flow's own BoNF, if any.

        A move is only taken when the improvement exceeds δ — the same
        threshold DARD's scheduler applies — so converged means
        δ-Nash: no flow can gain more than δ by deviating alone.
        """
        counts = self.link_counts(strategy)
        flow = self.flows[flow_index]
        current_route = flow.routes[strategy[flow_index]]
        current_bonf = self.flow_bonf(strategy, flow_index, counts)
        # Counts with this flow removed, to evaluate alternatives cleanly.
        removed = dict(counts)
        for link in current_route:
            removed[link] -= 1
        best_choice = None
        best_bonf = current_bonf
        for choice, route in enumerate(flow.routes):
            if choice == strategy[flow_index]:
                continue
            bonf = min(
                self.link_bonf(link, removed.get(link, 0) + 1) for link in route
            )
            if bonf - best_bonf > self.delta_bps:
                best_bonf = bonf
                best_choice = choice
        return best_choice

    def is_nash(self, strategy: Strategy) -> bool:
        """No flow has a δ-improving unilateral deviation."""
        return all(
            self.best_response(strategy, i) is None for i in range(len(self.flows))
        )

    def enumerate_strategies(self) -> Iterator[Strategy]:
        """Every pure strategy profile (exponential; tiny games only)."""
        def rec(prefix: List[int], index: int) -> Iterator[Strategy]:
            if index == len(self.flows):
                yield tuple(prefix)
                return
            for choice in range(len(self.flows[index].routes)):
                prefix.append(choice)
                yield from rec(prefix, index + 1)
                prefix.pop()

        yield from rec([], 0)

    def global_optimum(self) -> Strategy:
        """The lexicographically smallest strategy (brute force).

        Per Appendix B this strategy maximizes the minimum BoNF (or
        minimizes the number of minimum-BoNF links) and is itself a Nash
        equilibrium.
        """
        best = None
        best_sv = None
        for strategy in self.enumerate_strategies():
            sv = self.state_vector(strategy)
            if best_sv is None or compare_state_vectors(sv, best_sv) < 0:
                best = strategy
                best_sv = sv
        return best


def compare_state_vectors(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    """Appendix B's order: ``a < b`` iff some bucket K has fewer links in
    ``a`` while no earlier (worse-BoNF) bucket has more.

    Returns -1, 0, or 1. Note this partial order is implemented as the
    plain lexicographic comparison after zero-padding to a common horizon,
    which is the total order the convergence argument actually uses.
    """
    horizon = max(len(a), len(b))
    pa = a + (0,) * (horizon - len(a))
    pb = b + (0,) * (horizon - len(b))
    if pa < pb:
        return -1
    if pa > pb:
        return 1
    return 0
