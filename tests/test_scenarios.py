"""Tests for the adversarial scenario engine (:mod:`repro.workloads.scenarios`),
the predictive elephant detector, and the :class:`StormOracle` battery —
every scenario class oracle-certified end to end."""

import dataclasses

import numpy as np
import pytest

from repro.common.errors import (
    ConfigurationError,
    InvariantViolation,
    OracleViolation,
    SimulationError,
)
from repro.common.rng import RngStreams
from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig
from repro.simulator import FlowComponent
from repro.simulator.detectors import PredictiveElephantDetector
from repro.simulator.engine import EventEngine
from repro.simulator.network import Network
from repro.topology import FatTree, build_topology
from repro.validation import StormOracle, inject_storm_bug, run_case, shrink_config
from repro.validation.fuzz import _case_fails
from repro.validation.invariants import check_flowstore_balance
from repro.workloads import (
    INTERARRIVAL_PRESETS,
    SIZE_PRESETS,
    EmpiricalDistribution,
    FailureStormScenario,
    IncastBarrierProcess,
    IncastPattern,
    LognormalDistribution,
    MixtureDistribution,
    ParetoDistribution,
    WorkloadSpec,
    make_interarrival_distribution,
    make_size_distribution,
)


# ---------------------------------------------------------------------------
# Distributions and presets
# ---------------------------------------------------------------------------

class TestEmpiricalDistribution:
    def test_mean_and_quantile(self):
        dist = EmpiricalDistribution([10.0, 100.0], [3.0, 1.0])
        assert dist.mean() == pytest.approx(32.5)
        assert dist.quantile(0.5) == 10.0
        assert dist.quantile(1.0) == 100.0

    def test_samples_stay_on_support(self):
        dist = EmpiricalDistribution([10.0, 100.0], [3.0, 1.0])
        rng = np.random.default_rng(0)
        assert {dist.sample(rng) for _ in range(200)} == {10.0, 100.0}

    def test_from_samples_weighs_equally(self):
        dist = EmpiricalDistribution.from_samples([1.0, 2.0, 3.0])
        assert dist.mean() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([])
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([1.0, 2.0], [1.0])
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([0.0, 2.0])
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([1.0], [-1.0])
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([1.0]).quantile(1.5)


class TestAnalyticDistributions:
    def test_lognormal_mean_matches_samples(self):
        dist = LognormalDistribution(np.log(20e3), 1.0)
        rng = np.random.default_rng(1)
        sampled = np.mean([dist.sample(rng) for _ in range(4000)])
        assert sampled == pytest.approx(dist.mean(), rel=0.15)

    def test_pareto_mean_and_floor(self):
        dist = ParetoDistribution(1.5, 1e6)
        assert dist.mean() == pytest.approx(3e6)
        rng = np.random.default_rng(2)
        assert all(dist.sample(rng) >= 1e6 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LognormalDistribution(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            ParetoDistribution(1.0, 1e6)  # infinite mean
        with pytest.raises(ConfigurationError):
            ParetoDistribution(1.5, 0.0)
        with pytest.raises(ConfigurationError):
            MixtureDistribution([], [])
        with pytest.raises(ConfigurationError):
            MixtureDistribution([ParetoDistribution(2.0, 1.0)], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            MixtureDistribution([ParetoDistribution(2.0, 1.0)], [-1.0])

    def test_mixture_mean_is_weighted(self):
        dist = MixtureDistribution(
            [ParetoDistribution(2.0, 1.0), ParetoDistribution(2.0, 2.0)],
            [1.0, 3.0],
        )
        assert dist.mean() == pytest.approx(0.25 * 2.0 + 0.75 * 4.0)

    def test_scaled_to_mean(self):
        dist = ParetoDistribution(2.0, 1.0).scaled_to_mean(10.0)
        assert dist.mean() == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            dist.scaled_to_mean(0.0)


class TestPresets:
    def test_every_size_preset_constructs_and_samples(self):
        rng = np.random.default_rng(3)
        for name in SIZE_PRESETS:
            dist = make_size_distribution(name)
            assert dist.mean() > 0
            assert dist.sample(rng) > 0

    def test_every_interarrival_preset_constructs_and_samples(self):
        rng = np.random.default_rng(4)
        for name in INTERARRIVAL_PRESETS:
            dist = make_interarrival_distribution(name)
            assert dist.mean() == pytest.approx(1.0, rel=0.25)
            assert dist.sample(rng) > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="websearch"):
            make_size_distribution("nope")
        with pytest.raises(ConfigurationError, match="exponential"):
            make_interarrival_distribution("nope")


# ---------------------------------------------------------------------------
# Incast
# ---------------------------------------------------------------------------

class TestIncastPattern:
    def test_targets_and_senders_partition_the_hosts(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        pattern = IncastPattern(topo, targets=2)
        assert pattern.targets == sorted(topo.hosts())[:2]
        assert set(pattern.senders) | set(pattern.targets) == set(topo.hosts())
        assert not set(pattern.senders) & set(pattern.targets)

    def test_senders_always_hit_a_target(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        pattern = IncastPattern(topo, targets=3)
        rng = np.random.default_rng(5)
        for src in pattern.senders:
            assert pattern.pick_dst(src, rng) in pattern.targets

    def test_targets_send_background_but_never_to_self(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        pattern = IncastPattern(topo, targets=1)
        rng = np.random.default_rng(6)
        target = pattern.targets[0]
        assert all(pattern.pick_dst(target, rng) != target for _ in range(50))

    def test_targets_bounds(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        with pytest.raises(ConfigurationError):
            IncastPattern(topo, targets=0)
        with pytest.raises(ConfigurationError):
            IncastPattern(topo, targets=len(topo.hosts()))


def _barrier_setup(seed=3, period_s=1.0, senders_per_burst=None, duration=5.0):
    topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
    engine = EventEngine()
    pattern = IncastPattern(topo, targets=2)
    spec = WorkloadSpec(
        arrival_rate_per_host=0.5, duration_s=duration, flow_size_bytes=1 * MB
    )
    flows = []
    process = IncastBarrierProcess(
        engine,
        pattern,
        spec,
        lambda s, d, b: flows.append((engine.now, s, d, b)),
        np.random.default_rng(seed),
        period_s=period_s,
        senders_per_burst=senders_per_burst,
    )
    return engine, process, flows, pattern


class TestIncastBarrierProcess:
    def test_barriers_are_synchronized_bursts(self):
        engine, process, flows, pattern = _barrier_setup()
        process.start()
        engine.run_until(10.0)
        assert process.barriers_fired == 5  # t = 1..5
        assert len(flows) == 5 * len(pattern.senders)
        # Every flow in a burst lands at the exact barrier instant and
        # every destination is an aggregator.
        times = sorted({t for t, *_ in flows})
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert all(d in pattern.targets for _, _, d, _ in flows)

    def test_senders_per_burst_subsamples(self):
        engine, process, flows, _ = _barrier_setup(senders_per_burst=4)
        process.start()
        engine.run_until(10.0)
        assert len(flows) == 5 * 4

    def test_same_seed_same_bursts(self):
        runs = []
        for _ in range(2):
            engine, process, flows, _ = _barrier_setup(seed=9, senders_per_burst=3)
            process.start()
            engine.run_until(10.0)
            runs.append(flows)
        assert runs[0] == runs[1]

    def test_default_period_matches_offered_load(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        process = IncastBarrierProcess(
            EventEngine(),
            IncastPattern(topo),
            WorkloadSpec(
                arrival_rate_per_host=0.5, duration_s=5.0, flow_size_bytes=1 * MB
            ),
            lambda s, d, b: None,
            np.random.default_rng(0),
        )
        assert process.period_s == pytest.approx(2.0)  # 1 / rate

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _barrier_setup(period_s=0.0)
        with pytest.raises(ConfigurationError):
            _barrier_setup(senders_per_burst=0)


# ---------------------------------------------------------------------------
# Failure storms
# ---------------------------------------------------------------------------

class TestFailureStormScenario:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureStormScenario(start_s=0.0)
        with pytest.raises(ConfigurationError):
            FailureStormScenario(wave_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            FailureStormScenario(waves=0)
        with pytest.raises(ConfigurationError):
            FailureStormScenario(cables_per_wave=0)

    def test_storm_cables_are_switch_switch_only(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        cables = FailureStormScenario.storm_cables(topo)
        hosts = set(topo.hosts())
        assert cables and all(u not in hosts and v not in hosts for u, v in cables)

    def test_wave_schedule_shape(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        storm = FailureStormScenario(
            start_s=2.0, wave_interval_s=2.0, waves=3, cables_per_wave=1, outage_s=1.5
        )
        events = storm.link_events(topo, RngStreams(7).stream("storm"))
        fails = [e for e in events if e[0] == "fail"]
        restores = [e for e in events if e[0] == "restore"]
        assert [t for _, t, *_ in fails] == [2.0, 4.0, 6.0]
        # Every fail is paired with a restore exactly outage_s later.
        assert sorted((t + 1.5, u, v) for _, t, u, v in fails) == sorted(
            (t, u, v) for _, t, u, v in restores
        )

    def test_rolling_never_refails_a_down_cable(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        storm = FailureStormScenario(
            start_s=1.0, wave_interval_s=1.0, waves=6, cables_per_wave=2, outage_s=3.5
        )
        events = storm.link_events(topo, RngStreams(11).stream("storm"))
        down_until = {}
        for action, when, u, v in sorted(events, key=lambda e: (e[1], e[0])):
            if action == "fail":
                assert down_until.get((u, v), 0.0) <= when, (u, v, when)
                down_until[(u, v)] = when + 3.5

    def test_zero_outage_means_never_restored(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        storm = FailureStormScenario(
            start_s=1.0, wave_interval_s=1.0, waves=4, cables_per_wave=2, outage_s=0.0
        )
        events = storm.link_events(topo, RngStreams(13).stream("storm"))
        assert events and all(action == "fail" for action, *_ in events)
        # Permanent outages accumulate distinct cables.
        assert len({(u, v) for _, _, u, v in events}) == len(events)

    def test_schedule_is_a_pure_function_of_seed(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        storm = FailureStormScenario()
        assert storm.link_events(topo, RngStreams(5).stream("storm")) == (
            storm.link_events(topo, RngStreams(5).stream("storm"))
        )

    def test_install_drives_live_network(self):
        network = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        storm = FailureStormScenario(
            start_s=1.0, wave_interval_s=1.0, waves=2, cables_per_wave=1, outage_s=0.5
        )
        events = storm.install(network, RngStreams(3).stream("storm"))
        assert len([e for e in events if e[0] == "fail"]) == 2
        network.engine.run_until(1.25)
        assert network.failed_links  # first wave down
        network.engine.run_until(10.0)
        assert not network.failed_links  # every outage healed


# ---------------------------------------------------------------------------
# Predictive elephant detection
# ---------------------------------------------------------------------------

def _single_flow_network(size_bytes, detector="predictive", detector_params=None):
    network = Network(
        FatTree(p=4, link_bandwidth_bps=100 * MBPS),
        elephant_detector=detector,
        detector_params=detector_params,
    )
    topo = network.topology
    src, dst = "h_0_0_0", "h_1_0_0"
    path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[0]
    flow = network.start_flow(
        src, dst, size_bytes, [FlowComponent(topo.host_path(src, dst, path))]
    )
    return network, flow


class TestPredictiveElephantDetector:
    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            PredictiveElephantDetector(sample_interval_s=0.0)
        with pytest.raises(SimulationError):
            PredictiveElephantDetector(min_samples=0)
        with pytest.raises(SimulationError):
            PredictiveElephantDetector(max_samples=1, min_samples=2)
        with pytest.raises(SimulationError):
            PredictiveElephantDetector(ewma_alpha=0.0)
        with pytest.raises(SimulationError):
            PredictiveElephantDetector(promote_age_s=-1.0)

    def test_network_rejects_unknown_detector(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        with pytest.raises(SimulationError):
            Network(topo, elephant_detector="psychic")
        with pytest.raises(SimulationError):
            Network(topo, detector_params={"ewma_alpha": 0.3})  # threshold

    def test_true_elephant_promoted_early(self):
        # 128 MB at 100 Mbps is > 10 s serialized: a true elephant, and
        # the projection sees it within two 0.25 s samples.
        network, flow = _single_flow_network(128 * MB)
        network.engine.run_until(1.0)
        assert flow.is_elephant
        stats = network.perf_stats()
        assert stats["det_early_promotions"] == 1.0
        assert stats["det_mean_detection_age_s"] < network.elephant_age_s

    def test_mouse_never_promoted(self):
        network, _ = _single_flow_network(1 * MB)  # ~0.08 s at line rate
        network.engine.run_until(5.0)
        stats = network.perf_stats()
        assert stats["det_early_promotions"] == 0.0
        assert stats["det_fallback_promotions"] == 0.0

    def test_stalled_flow_promoted_immediately(self):
        # A flow stalled behind a failure projects an infinite lifetime —
        # promoted as soon as min_samples confirm the zero rate.
        network, flow = _single_flow_network(4 * MB)
        network.fail_link("h_0_0_0", network.topology.tor_of("h_0_0_0"))
        network.engine.run_until(1.0)
        assert flow.is_elephant
        assert network.perf_stats()["det_early_promotions"] == 1.0

    def test_age_fallback_guarantees_threshold_parity(self):
        # A flow whose early projection says "finishes under the
        # threshold" (100 MB ~ 8 s at line rate) is left undecided; when
        # later contention slows it past 10 s of life, the age fallback
        # still promotes it at exactly elephant_age_s — the promoted set
        # is a superset of the threshold detector's, never a subset.
        network, flow = _single_flow_network(100 * MB)
        topo = network.topology
        src, dst = "h_0_0_1", "h_1_0_1"
        path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[0]

        def add_contention():
            for _ in range(3):
                network.start_flow(
                    src, dst, 128 * MB, [FlowComponent(topo.host_path(src, dst, path))]
                )

        network.engine.schedule_at(3.0, add_contention)
        network.engine.run_until(9.9)
        assert not flow.is_elephant
        network.engine.run_until(10.5)
        assert flow.is_elephant
        assert network.perf_stats()["det_fallback_promotions"] >= 1.0


# ---------------------------------------------------------------------------
# StormOracle
# ---------------------------------------------------------------------------

def _oracle_network():
    network = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
    return network, StormOracle().attach(network)


def _component(topo, src, dst, index):
    path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[index]
    return FlowComponent(topo.host_path(src, dst, path)), path


class TestStormOracle:
    def test_placement_on_dead_path_with_alive_alternative_raises(self):
        network, oracle = _oracle_network()
        topo = network.topology
        # Find a core path for h_0_0_0 -> h_1_0_0 and kill its first
        # switch-switch cable; the other equal-cost paths stay alive.
        component, path = _component(topo, "h_0_0_0", "h_1_0_0", 0)
        network.fail_link(path[0], path[1])
        with pytest.raises(OracleViolation) as info:
            network.start_flow("h_0_0_0", "h_1_0_0", 8 * MB, [component])
        assert info.value.oracle == "storm-routing"

    def test_reroute_onto_dead_path_raises(self):
        network, oracle = _oracle_network()
        topo = network.topology
        dead_component, dead_path = _component(topo, "h_0_0_0", "h_1_0_0", 0)
        alive_component, _ = _component(topo, "h_0_0_0", "h_1_0_0", 1)
        flow = network.start_flow("h_0_0_0", "h_1_0_0", 8 * MB, [alive_component])
        network.fail_link(dead_path[0], dead_path[1])
        with pytest.raises(OracleViolation) as info:
            network.reroute_flow(flow, [dead_component])
        assert info.value.oracle == "storm-routing"
        assert oracle.reroutes_checked == 1

    def test_stall_carveout_when_no_alive_path_exists(self):
        network, oracle = _oracle_network()
        topo = network.topology
        component, _ = _component(topo, "h_0_0_0", "h_1_0_0", 0)
        # Killing the source's access cable deadens *every* equal-cost
        # path: placing (and stalling) is the documented semantics.
        network.fail_link("h_0_0_0", topo.tor_of("h_0_0_0"))
        network.start_flow("h_0_0_0", "h_1_0_0", 8 * MB, [component])
        assert oracle.stalled_placements == 1
        assert oracle.placements_checked == 1

    def test_clean_placements_pass_and_are_counted(self):
        network, oracle = _oracle_network()
        topo = network.topology
        component, _ = _component(topo, "h_0_0_0", "h_2_0_0", 1)
        network.start_flow("h_0_0_0", "h_2_0_0", 8 * MB, [component])
        assert oracle.placements_checked == 1
        assert oracle.stalled_placements == 0

    def test_balance_audited_at_every_failure_edge(self):
        network, oracle = _oracle_network()
        topo = network.topology
        component, _ = _component(topo, "h_0_0_0", "h_1_0_0", 2)
        network.start_flow("h_0_0_0", "h_1_0_0", 8 * MB, [component])
        network.fail_link("agg_0_0", "core_0_0")
        network.restore_link("agg_0_0", "core_0_0")
        oracle.final_check()
        stats = oracle.stats()
        assert stats["storm_failures_seen"] == 1.0
        assert stats["storm_restores_seen"] == 1.0
        assert stats["storm_balance_checks"] == 3.0

    def test_corrupted_ledger_caught_on_failure_edge(self):
        network, oracle = _oracle_network()
        # Simulate a leaked row: the started counter says one more flow
        # is in flight than the store holds.
        network._stat_flows_started += 1
        with pytest.raises(InvariantViolation) as info:
            network.fail_link("agg_0_0", "core_0_0")
        assert info.value.invariant == "flowstore-balance"

    def test_attach_is_exclusive_and_detach_restores(self):
        network, oracle = _oracle_network()
        with pytest.raises(ValueError):
            oracle.attach(network)
        wrapped = network.start_flow
        oracle.detach()
        assert network.start_flow != wrapped
        assert not network.link_failed_listeners
        oracle.detach()  # idempotent
        with pytest.raises(ValueError):
            oracle.final_check()


class TestFlowstoreBalanceCheck:
    def test_clean_network_balances(self):
        network, _ = _single_flow_network(8 * MB, detector="threshold")
        check_flowstore_balance(network)
        network.engine.run_until(60.0)  # flow completes, row freed
        check_flowstore_balance(network)

    def test_live_count_mismatch_detected(self):
        network, flow = _single_flow_network(8 * MB, detector="threshold")
        del network.flows[flow.flow_id]  # table and store now disagree
        with pytest.raises(InvariantViolation) as info:
            check_flowstore_balance(network)
        assert info.value.invariant == "flowstore-balance"


# ---------------------------------------------------------------------------
# End-to-end certification: every scenario class through run_case
# ---------------------------------------------------------------------------

def _base_config(**overrides):
    params = dict(
        topology="fattree",
        topology_params={"p": 4},
        pattern="random",
        scheduler="ecmp",
        arrival_rate_per_host=0.1,
        duration_s=4.0,
        flow_size_bytes=4e6,
        seed=13,
        drain_limit_s=60.0,
    )
    params.update(overrides)
    return ScenarioConfig(**params)


def _storm_config(**overrides):
    topo = build_topology("fattree", p=4)
    storm = FailureStormScenario(
        start_s=1.0, wave_interval_s=1.0, waves=3, cables_per_wave=1, outage_s=1.0
    )
    events = storm.link_events(topo, RngStreams(19).stream("storm"))
    return _base_config(pattern="stride", link_events=events, **overrides)


class TestScenarioCertification:
    """The ISSUE contract: every new scenario class passes the full
    battery — invariants, differential oracles, and the StormOracle."""

    def test_incast_barrier_certified(self):
        result = run_case(
            _base_config(
                pattern="incast",
                pattern_params={"targets": 2},
                arrival="incast-barrier",
                arrival_params={"period_s": 1.0, "senders_per_burst": 6},
            )
        )
        assert result.flows_generated > 0

    def test_empirical_arrivals_certified(self):
        result = run_case(
            _base_config(
                arrival="empirical",
                arrival_params={
                    "size_preset": "websearch",
                    "interarrival_preset": "bursty",
                },
            )
        )
        assert result.flows_generated > 0

    def test_failure_storm_certified_under_dard(self):
        result = run_case(_storm_config(scheduler="dard"))
        assert result.flows_generated > 0

    def test_predictive_detector_certified(self):
        result = run_case(
            _base_config(
                scheduler="dard",
                network_params={"elephant_detector": "predictive"},
            )
        )
        assert result.flows_generated > 0

    def test_injected_storm_bug_is_caught(self):
        error = _case_fails(_storm_config(), inject_storm_bug, 5)
        assert error is not None
        # The bug arms off the first link failure: with no storm in the
        # schedule the same world runs clean.
        assert _case_fails(_base_config(), inject_storm_bug, 5) is None

    def test_storm_bug_shrinks_to_minimal_schedule(self):
        # Satellite contract: the shrinker reduces a multi-wave storm
        # against the failure-armed bug to at most two events — the bug
        # needs exactly one "fail" to fire, so everything else drops.
        config = _storm_config()
        assert len(config.link_events) >= 6
        shrunk, runs = shrink_config(
            config,
            lambda c: _case_fails(c, inject_storm_bug, 5) is not None,
            max_runs=40,
        )
        assert runs > 0
        assert 1 <= len(shrunk.link_events) <= 2
        assert any(e[0] == "fail" for e in shrunk.link_events)
