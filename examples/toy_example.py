#!/usr/bin/env python
"""The paper's Figure 1 / Table 1 toy example, replayed live.

Three elephant flows are forced through the same core switch of a p=4
fat-tree. Each source host then runs DARD's selfish flow scheduling: it
monitors the BoNF (bandwidth over number of elephant flows) of all four
paths to its destination and shifts one flow per round whenever that
raises the minimum BoNF. The example prints each path switch as it
happens and verifies the end state is a Nash equilibrium of the underlying
congestion game (paper Appendix B).

Run:  python examples/toy_example.py
"""

import numpy as np

from repro.addressing import HierarchicalAddressing, PathCodec
from repro.common.units import MB, MBPS
from repro.core import DardScheduler
from repro.gametheory import game_from_network
from repro.scheduling import SchedulerContext
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


def main() -> None:
    topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
    net = Network(topo)
    scheduler = DardScheduler()
    scheduler.attach(
        SchedulerContext(
            network=net,
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(1),
        )
    )

    def start_on_core0(src, dst):
        """Place a flow on the path through core_0_0 — everyone collides."""
        paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
        via_core0 = next(p for p in paths if p[2] == "core_0_0")
        return net.start_flow(
            src, dst, 2000 * MB, [FlowComponent(topo.host_path(src, dst, via_core0))]
        )

    # Figure 1's three elephants (E11->E21, E13->E24, E32->E23).
    flows = [
        start_on_core0("h_0_0_0", "h_1_0_0"),
        start_on_core0("h_0_1_0", "h_1_1_1"),
        start_on_core0("h_2_0_1", "h_1_1_0"),
    ]

    def bottleneck_report(label):
        state = net.link_state("core_0_0", "agg_1_0")
        rates = [f"{f.rate_bps / 1e6:.0f}" for f in flows]
        print(f"  t={net.engine.now:5.1f}s {label:28s} "
              f"flow rates = {rates} Mbps")

    net.engine.run_until(0.01)  # let the first rate allocation settle
    bottleneck_report("(all forced through core_0_0)")
    print()

    # Watch the shifts happen: sample every 5 simulated seconds.
    last_paths = [tuple(f.switch_path()) for f in flows]
    for t in range(5, 65, 5):
        net.engine.run_until(float(t))
        for i, flow in enumerate(flows):
            current = tuple(flow.switch_path())
            if current != last_paths[i]:
                print(f"  t={net.engine.now:5.1f}s flow{i} shifted to core "
                      f"{current[3]} (switch #{flow.path_switches})")
                last_paths[i] = current

    print()
    bottleneck_report("(after DARD convergence)")
    cores = {tuple(f.switch_path())[3] for f in flows}
    print(f"\n  distinct cores in use : {len(cores)} of 3 flows")
    print(f"  total path switches   : {sum(f.path_switches for f in flows)} "
          "(paper Table 1 converges in 2 rounds)")

    game, strategy = game_from_network(net, delta_bps=scheduler.delta_bps)
    print(f"  end state is Nash     : {game.is_nash(strategy)}")
    print(f"  global minimum BoNF   : {game.min_bonf(strategy) / 1e6:.0f} Mbps "
          "(started at 33 Mbps)")


if __name__ == "__main__":
    main()
