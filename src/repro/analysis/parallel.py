"""Parallel scenario execution across processes.

Scenario runs are embarrassingly parallel — each builds its own topology,
network, and RNG streams from a picklable :class:`ScenarioConfig` — so a
sweep can use every core. Results are returned in deterministic grid
order regardless of completion order, and each scenario is exactly as
reproducible as under the serial runner.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario
from repro.analysis.sweep import _apply_override


def run_scenarios_parallel(
    configs: Sequence[ScenarioConfig],
    max_workers: Optional[int] = None,
) -> List[ScenarioResult]:
    """Run many scenarios across processes; results in input order.

    ``max_workers`` defaults to ``os.cpu_count() - 1`` (at least 1). With
    one config or one worker the serial path is used — no process-pool
    overhead, identical results.
    """
    if not configs:
        return []
    if max_workers is None:
        max_workers = max(1, (os.cpu_count() or 2) - 1)
    if max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    if max_workers == 1 or len(configs) == 1:
        return [run_scenario(config) for config in configs]
    # Chunk the work so large sweeps amortize inter-process pickling
    # instead of round-tripping one config at a time; capped so every
    # worker still gets several chunks for load balance.
    chunksize = max(1, min(8, len(configs) // (max_workers * 4)))
    with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(run_scenario, configs, chunksize=chunksize))


def parallel_sweep(
    base: ScenarioConfig,
    grid: Dict[str, Sequence],
    max_workers: Optional[int] = None,
) -> List[Tuple[Dict[str, object], ScenarioResult]]:
    """The parallel counterpart of :func:`repro.analysis.sweep.sweep`.

    Same grid semantics and the same deterministic ordering; only the
    execution is concurrent.
    """
    if not grid:
        return [({}, run_scenario(base))]
    keys = sorted(grid)
    overrides_list: List[Dict[str, object]] = []
    configs: List[ScenarioConfig] = []
    for values in itertools.product(*(grid[k] for k in keys)):
        overrides = dict(zip(keys, values))
        config = base
        for key, value in overrides.items():
            config = _apply_override(config, key, value)
        overrides_list.append(overrides)
        configs.append(config)
    results = run_scenarios_parallel(configs, max_workers=max_workers)
    return list(zip(overrides_list, results))
