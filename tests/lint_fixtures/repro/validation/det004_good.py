"""DET004 good fixture: serialization imposes a total key order."""

import json


def write_report(payload, handle):
    """sort_keys=True makes the bytes independent of insertion order."""
    json.dump(payload, handle, indent=2, sort_keys=True)
