"""Tests for the columnar FlowStore and the Flow view binding.

Covers the store's row lifecycle (revival, growth, compaction epochs),
the Flow view object's identity with the store columns through reroute
and retransmission penalties, and the store-vs-reference settle mode
equivalence on live networks.
"""

import math

import numpy as np
import pytest

from repro.common.errors import InvariantViolation, SimulationError
from repro.common.units import MB, MBPS
from repro.simulator import FlowComponent, FlowStore, Network
from repro.simulator.flows import Flow
from repro.topology import FatTree


@pytest.fixture
def net():
    return Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))


def component(net, src, dst, index=0):
    topo = net.topology
    path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[index]
    return FlowComponent(topo.host_path(src, dst, path))


class TestRowLifecycle:
    def test_acquire_assigns_dense_rows(self):
        store = FlowStore()
        assert [store.acquire(fid) for fid in (10, 11, 12)] == [0, 1, 2]
        assert store.size == 3
        assert store.live_count == 3
        assert store.flow_id[:3].tolist() == [10, 11, 12]

    def test_release_then_revival_reuses_smallest_row(self):
        store = FlowStore()
        for fid in range(5):
            store.acquire(fid)
        store.release(3)
        store.release(1)
        assert store.live_count == 3
        # Pop-smallest: row 1 revives before row 3; span does not grow.
        assert store.acquire(100) == 1
        assert store.acquire(101) == 3
        assert store.acquire(102) == 5
        assert store.size == 6
        assert store.stats()["store_revivals"] == 2.0

    def test_revived_row_is_reset_to_fill_values(self):
        store = FlowStore()
        row = store.acquire(7)
        store.remaining_bytes[row] = 123.0
        store.retx_fraction[row] = 0.5
        store.goodput_factor[row] = 0.5
        store.elephant[row] = True
        store.release(row)
        assert store.acquire(8) == row
        assert store.remaining_bytes[row] == 0.0
        assert store.retx_fraction[row] == 0.0
        assert store.goodput_factor[row] == 1.0
        assert not store.elephant[row]
        assert store.flow_id[row] == 8
        assert store.live[row]

    def test_release_rejects_dead_and_out_of_range_rows(self):
        store = FlowStore()
        row = store.acquire(1)
        store.release(row)
        with pytest.raises(ValueError):
            store.release(row)
        with pytest.raises(ValueError):
            store.release(99)
        with pytest.raises(ValueError):
            store.release(-1)

    def test_geometric_growth(self):
        store = FlowStore(capacity=2)
        for fid in range(5):
            store.acquire(fid)
        assert store.size == 5
        assert store.capacity >= 5
        assert store.stats()["store_grows"] >= 1.0
        # Data survives the reallocation.
        assert store.flow_id[:5].tolist() == [0, 1, 2, 3, 4]

    def test_compaction_epoch_shrinks_span(self):
        store = FlowStore()
        rows = [store.acquire(fid) for fid in range(100)]
        # Release the top half plus one: live_count*2 <= size triggers.
        for row in rows[49:]:
            store.release(row)
        assert store.live_count == 49
        assert store.size == 49
        assert store.stats()["store_compactions"] >= 1.0
        # Rows below the new span never moved.
        assert store.flow_id[:49].tolist() == list(range(49))

    def test_compaction_keeps_pinned_high_live_row(self):
        store = FlowStore()
        rows = [store.acquire(fid) for fid in range(100)]
        # Keep the topmost row live: the span can only shrink to it.
        for row in rows[:99]:
            store.release(row)
        assert store.live_count == 1
        assert store.size == 100
        assert store.flow_id[99] == 99
        # Freed rows below stay revivable.
        assert store.acquire(500) == 0


class TestFlowViewBinding:
    def make_flow(self, size=1000.0):
        return Flow(
            flow_id=1, src="a", dst="c", size_bytes=size, start_time=0.0,
            components=[FlowComponent(("a", "b", "c"))],
        )

    def test_unbound_flow_uses_shadow_attributes(self):
        flow = self.make_flow()
        assert flow.store_row == -1
        flow.remaining_bytes = 400.0
        flow.retransmitted_bytes = 50.0
        flow.is_elephant = True
        flow.monitored_path_index = 3
        assert flow.remaining_bytes == 400.0
        assert flow.retransmitted_bytes == 50.0
        assert flow.is_elephant
        assert flow.monitored_path_index == 3
        assert flow.active

    def test_bind_pushes_state_and_properties_read_columns(self):
        store = FlowStore()
        flow = self.make_flow(size=2000.0)
        flow.component_rates = [30.0, 20.0]
        flow.reorder_retx_fraction = 0.25
        flow.bind_store(store, store.acquire(flow.flow_id))
        row = flow.store_row
        assert store.rate_bps[row] == 50.0
        assert store.retx_fraction[row] == 0.25
        assert store.goodput_factor[row] == 0.75
        assert store.remaining_bytes[row] == 2000.0
        # Writes through properties land in the columns...
        flow.remaining_bytes = 1500.0
        flow.path_switches = 2
        assert store.remaining_bytes[row] == 1500.0
        assert store.path_switches[row] == 2
        # ...and column writes are visible through the properties.
        store.retransmitted_bytes[row] = 64.0
        assert flow.retransmitted_bytes == 64.0

    def test_rate_and_goodput_equal_between_view_and_columns(self):
        store = FlowStore()
        flow = self.make_flow()
        flow.component_rates = [30.0, 20.0]
        flow.reorder_retx_fraction = 0.1
        unbound_rate = flow.rate_bps
        unbound_goodput = flow.goodput_bps
        flow.bind_store(store, store.acquire(flow.flow_id))
        row = flow.store_row
        assert flow.rate_bps == float(store.rate_bps[row]) == unbound_rate
        assert flow.goodput_bps == unbound_goodput
        assert flow.goodput_bps == float(
            store.rate_bps[row] * store.goodput_factor[row]
        )

    def test_fraction_setter_maintains_goodput_factor(self):
        store = FlowStore()
        flow = self.make_flow()
        flow.bind_store(store, store.acquire(flow.flow_id))
        row = flow.store_row
        flow.reorder_retx_fraction = 0.125
        assert store.goodput_factor[row] == 1.0 - 0.125

    def test_unbind_snapshot_survives_row_revival(self):
        store = FlowStore()
        flow = self.make_flow()
        flow.bind_store(store, store.acquire(flow.flow_id))
        row = flow.store_row
        flow.remaining_bytes = 0.0
        flow.end_time = 4.5
        flow.is_elephant = True
        flow.path_switches = 3
        flow.unbind_store()
        store.release(row)
        # Another flow revives the row and scribbles over every column.
        other = store.acquire(99)
        assert other == row
        store.end_time[other] = 77.0
        store.path_switches[other] = 9
        assert flow.store_row == -1
        assert flow.end_time == 4.5
        assert flow.is_elephant
        assert flow.path_switches == 3
        assert not flow.active

    def test_end_time_none_nan_round_trip(self):
        store = FlowStore()
        flow = self.make_flow()
        flow.bind_store(store, store.acquire(flow.flow_id))
        assert flow.end_time is None
        assert flow.active
        assert math.isnan(store.end_time[flow.store_row])
        flow.end_time = 2.0
        assert not flow.active
        flow.end_time = None
        assert flow.active

    def test_validation_still_raises_on_bad_construction(self):
        with pytest.raises(SimulationError):
            Flow(flow_id=1, src="a", dst="b", size_bytes=1.0,
                 start_time=0.0, components=[])


class TestNetworkIntegration:
    def test_started_flow_is_bound_and_coherent(self, net):
        flow = net.start_flow(
            "h_0_0_0", "h_1_0_0", 10 * MB, [component(net, "h_0_0_0", "h_1_0_0")]
        )
        assert flow.store_row >= 0
        assert net.flow_store.live_count == 1
        net.engine.run_until(0.1)
        row = flow.store_row
        assert float(net.flow_store.rate_bps[row]) == sum(flow.component_rates)
        assert flow.component_id is not None
        net.check_invariants()

    def test_view_identity_after_reroute_and_retx_penalty(self, net):
        src, dst = "h_0_0_0", "h_1_0_0"
        flow = net.start_flow(src, dst, 10 * MB, [component(net, src, dst, 0)])
        net.engine.run_until(0.2)
        net.reroute_flow(flow, [component(net, src, dst, 1)])
        row = flow.store_row
        store = net.flow_store
        # The penalty went through the properties into the columns.
        assert flow.retransmitted_bytes == net.path_switch_retx_bytes
        assert float(store.retransmitted_bytes[row]) == flow.retransmitted_bytes
        assert float(store.remaining_bytes[row]) == flow.remaining_bytes
        assert flow.path_switches == 1 == int(store.path_switches[row])
        # Rates are zeroed in both views until the coalesced refill.
        assert float(store.rate_bps[row]) == sum(flow.component_rates) == 0.0
        net.engine.run_until_idle()
        net.check_invariants()

    def test_completion_releases_rows_and_revives_them(self, net):
        src = "h_0_0_0"
        for dst in ("h_1_0_0", "h_2_0_0"):
            net.start_flow(src, dst, 5 * MB, [component(net, src, dst)])
        net.engine.run_until_idle()
        assert net.flow_store.live_count == 0
        assert len(net.records) == 2
        # New flows revive the released rows instead of extending the span.
        flow = net.start_flow(src, "h_3_0_0", MB, [component(net, src, "h_3_0_0")])
        assert flow.store_row == 0
        assert net.flow_store.stats()["store_revivals"] >= 1.0

    def test_record_reads_after_completion_are_stable(self, net):
        done = []
        net.flow_completed_listeners.append(done.append)
        net.start_flow(
            "h_0_0_0", "h_1_0_0", 10 * MB, [component(net, "h_0_0_0", "h_1_0_0")]
        )
        net.engine.run_until_idle()
        # Start another flow so the released row is revived and scribbled.
        net.start_flow(
            "h_0_0_0", "h_2_0_0", 10 * MB, [component(net, "h_0_0_0", "h_2_0_0")]
        )
        net.engine.run_until(0.1)
        (finished,) = done
        assert finished.store_row == -1
        assert finished.end_time == net.records[0].end_time
        assert finished.remaining_bytes <= 1.0
        assert not finished.active

    def test_settle_mode_validation(self):
        with pytest.raises(SimulationError):
            Network(FatTree(p=4), settle_mode="bogus")

    def test_reference_mode_matches_store_mode_records(self):
        def run(settle_mode):
            net = Network(
                FatTree(p=4, link_bandwidth_bps=100 * MBPS), settle_mode=settle_mode
            )
            src = "h_0_0_0"
            for i, dst in enumerate(("h_1_0_0", "h_2_0_0", "h_3_0_0")):
                net.start_flow(src, dst, (i + 1) * 4 * MB, [component(net, src, dst)])
            flows = net.active_flows()
            net.engine.schedule_at(
                0.3, lambda: net.reroute_flow(flows[1], [component(net, src, "h_2_0_0", 1)])
            )
            net.engine.run_until_idle()
            net.check_invariants()
            return net.records

        store_records = run("store")
        reference_records = run("reference")
        assert store_records == reference_records  # bit-exact, not approx

    def test_invariants_catch_rate_column_corruption(self, net):
        flow = net.start_flow(
            "h_0_0_0", "h_1_0_0", 10 * MB, [component(net, "h_0_0_0", "h_1_0_0")]
        )
        net.engine.run_until(0.1)
        net.flow_store.rate_bps[flow.store_row] = math.nextafter(
            float(net.flow_store.rate_bps[flow.store_row]), math.inf
        )
        with pytest.raises(InvariantViolation):
            net.check_invariants()

    def test_perf_stats_exposes_store_and_settle_keys(self, net):
        net.start_flow(
            "h_0_0_0", "h_1_0_0", 10 * MB, [component(net, "h_0_0_0", "h_1_0_0")]
        )
        net.engine.run_until_idle()
        stats = net.perf_stats()
        for key in ("store_rows", "store_capacity", "store_live",
                    "store_acquires", "store_revivals", "store_grows",
                    "store_compactions", "settle_time_s", "eta_time_s",
                    "settle_batches"):
            assert key in stats, key
        assert stats["store_acquires"] == 1.0
        assert stats["store_live"] == 0.0
        assert stats["settle_batches"] >= 1


class TestStoreScale:
    def test_many_churning_flows_keep_span_bounded(self, net):
        # Bursty arrivals and completions: the span must track the live
        # population (compaction epochs), not the all-time flow count.
        rng = np.random.default_rng(0)
        hosts = sorted(net.topology.hosts())
        half = len(hosts) // 2
        sources, sinks = hosts[:half], hosts[half:]  # always inter-pod pairs
        for wave in range(4):
            for _ in range(40):
                src = str(rng.choice(sources))
                dst = str(rng.choice(sinks))
                net.start_flow(src, dst, 0.2 * MB, [component(net, src, dst)])
            net.engine.run_until_idle()
        assert net.flow_store.live_count == 0
        assert len(net.records) == 160
        assert net.flow_store.size < 160
        net.check_invariants()
