"""dardlint rule modules.

Importing this package imports every submodule, so each ``@register``-
decorated rule lands in the engine registry without a hand-maintained
list — dropping a new ``rules/<topic>.py`` file is the whole wiring.
"""

from __future__ import annotations

import importlib
import pkgutil

__all__ = ["RULE_MODULES"]

#: Discovered submodule names, sorted so registration order (and thus any
#: registration-time error) is independent of filesystem order.
RULE_MODULES = sorted(
    info.name for info in pkgutil.iter_modules(__path__) if not info.name.startswith("_")
)

for _name in RULE_MODULES:
    importlib.import_module(f"{__name__}.{_name}")
