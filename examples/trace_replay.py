#!/usr/bin/env python
"""Trace workflow: record a workload once, replay it against every
scheduler, and compare flow by flow.

The runner's seeded RNG streams already guarantee identical Poisson
workloads across schedulers; traces take that one step further — capture
the arrivals to a CSV you can inspect, version, or hand to another tool,
then replay the exact same flows anywhere. Paired per-flow statistics are
the payoff: instead of comparing two means, compare every flow against
itself under the other scheduler.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.addressing import HierarchicalAddressing, PathCodec
from repro.common.units import MB, MBPS
from repro.experiments.runner import make_scheduler
from repro.scheduling import SchedulerContext
from repro.simulator import Network
from repro.topology import FatTree
from repro.workloads import (
    ArrivalProcess,
    StridePattern,
    TraceRecorder,
    TraceReplay,
    WorkloadSpec,
    load_trace,
    save_trace,
)


def fresh_stack(scheduler_name):
    topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
    network = Network(topo)
    scheduler = make_scheduler(scheduler_name)
    scheduler.attach(
        SchedulerContext(
            network=network,
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )
    )
    return network, scheduler


def drain(network, deadline=600.0):
    while network.flows and network.engine.now < deadline:
        network.engine.run_until(network.engine.now + 5.0)


def main() -> None:
    trace_path = Path(tempfile.gettempdir()) / "dard_demo_trace.csv"

    # 1. Record: run a Poisson stride workload once, capturing arrivals.
    network, scheduler = fresh_stack("ecmp")
    recorder = TraceRecorder(network.engine, scheduler.place)
    ArrivalProcess(
        engine=network.engine,
        pattern=StridePattern(network.topology),
        spec=WorkloadSpec(arrival_rate_per_host=0.06, duration_s=90.0,
                          flow_size_bytes=128 * MB),
        sink=recorder,
        rng=np.random.default_rng(42),
    ).start()
    network.engine.run_until(90.0)
    drain(network)
    save_trace(recorder.entries, trace_path)
    print(f"recorded {len(recorder.entries)} arrivals -> {trace_path}")

    # 2. Replay the identical trace against each scheduler.
    fcts = {}
    for name in ("ecmp", "vlb", "hedera", "dard"):
        net, sched = fresh_stack(name)
        replay = TraceReplay(net.engine, net.topology, load_trace(trace_path), sched.place)
        replay.start()
        net.engine.run_until(90.0)
        drain(net)
        by_flow = {
            (r.start_time, r.src, r.dst): r.fct for r in net.records
        }
        fcts[name] = by_flow
        mean = sum(by_flow.values()) / len(by_flow)
        print(f"  {name:7s} mean FCT {mean:6.2f}s over {len(by_flow)} flows")

    # 3. Paired per-flow statistics against ECMP.
    print("\nper-flow comparison vs ecmp (positive = faster than ECMP):")
    base = fcts["ecmp"]
    for name in ("vlb", "hedera", "dard"):
        deltas = [base[k] - fcts[name][k] for k in base]
        wins = sum(1 for d in deltas if d > 0) / len(deltas)
        print(f"  {name:7s} faster on {wins:4.0%} of flows; "
              f"mean per-flow gain {sum(deltas) / len(deltas):+.2f}s")


if __name__ == "__main__":
    main()
