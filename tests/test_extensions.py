"""Tests for the extension features: flowlet-granularity TeXCP (the
paper's stated future work, §4.3.3) and Global First Fit (Hedera's second
placement algorithm)."""

import numpy as np
import pytest

from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.baselines import GlobalFirstFitScheduler, TexcpScheduler
from repro.scheduling import SchedulerContext
from repro.simulator import Network
from repro.topology import FatTree


def make_ctx(scheduler, seed=0):
    topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
    ctx = SchedulerContext(
        network=Network(topo),
        codec=PathCodec(HierarchicalAddressing(topo)),
        rng=np.random.default_rng(seed),
    )
    scheduler.attach(ctx)
    return ctx


class TestFlowletTexcp:
    def test_granularity_validated(self):
        with pytest.raises(ValueError):
            TexcpScheduler(granularity="jumbogram")

    def test_flowlet_flows_single_path(self):
        scheduler = TexcpScheduler(granularity="flowlet")
        ctx = make_ctx(scheduler)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 100 * MB)
        assert len(flow.components) == 1

    def test_flowlet_no_reordering_retx(self):
        scheduler = TexcpScheduler(granularity="flowlet")
        ctx = make_ctx(scheduler)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 100 * MB)
        ctx.engine.run_until(30.0)
        assert flow.reorder_retx_fraction == 0.0
        # Flowlet switches cost no retransmission either.
        assert flow.retransmitted_bytes == 0.0

    def test_flowlet_redraws_follow_ratios(self):
        """Under asymmetric load the agent's ratios skew, and redraws land
        mostly on the lighter paths."""
        scheduler = TexcpScheduler(granularity="flowlet", probe_interval_s=0.05)
        ctx = make_ctx(scheduler, seed=3)
        # Load one path persistently with a competing single-path elephant.
        from repro.simulator import FlowComponent

        topo = ctx.topology
        hot = topo.equal_cost_paths("tor_0_1", "tor_1_0")[0]
        ctx.network.start_flow(
            "h_0_1_0", "h_1_0_1", 2000 * MB,
            [FlowComponent(topo.host_path("h_0_1_0", "h_1_0_1", hot))],
        )
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 1000 * MB)
        ctx.engine.run_until(20.0)
        agent = scheduler._agents[("tor_0_0", "tor_1_0")]
        # The competing elephant rides core_0_0; the agent's path through
        # that core shares its downhill link and should carry less weight.
        hot_index = next(i for i, p in enumerate(agent.paths) if p[2] == "core_0_0")
        assert agent.ratios[hot_index] < 1.0 / len(agent.paths)

    def test_flowlet_survives_failures(self):
        scheduler = TexcpScheduler(granularity="flowlet")
        ctx = make_ctx(scheduler, seed=1)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 500 * MB)
        ctx.engine.run_until(1.0)
        path = flow.switch_path()
        ctx.network.fail_link(path[2], path[3])
        ctx.engine.run_until(3.0)
        assert ctx.network.path_alive(flow.switch_path())
        assert flow.rate_bps > 0


class TestGlobalFirstFit:
    def test_spreads_colliding_elephants(self):
        scheduler = GlobalFirstFitScheduler()
        ctx = make_ctx(scheduler, seed=2)
        pairs = [("h_0_0_0", "h_1_0_0"), ("h_0_0_1", "h_1_0_1"),
                 ("h_0_1_0", "h_1_1_0"), ("h_0_1_1", "h_1_1_1")]
        flows = [scheduler.place(s, d, 800 * MB) for s, d in pairs]
        ctx.engine.run_until(40.0)
        cores = {f.switch_path()[3] for f in flows if f.active}
        assert len(cores) >= 3

    def test_sticky_when_fit(self):
        """A lone elephant that already fits its path is never moved."""
        scheduler = GlobalFirstFitScheduler()
        ctx = make_ctx(scheduler)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 500 * MB)
        ctx.engine.run_until(35.0)
        assert flow.path_switches == 0

    def test_reports_and_updates_ledgered(self):
        scheduler = GlobalFirstFitScheduler()
        ctx = make_ctx(scheduler, seed=5)
        for s, d in [("h_0_0_0", "h_1_0_0"), ("h_0_0_1", "h_1_0_1")]:
            scheduler.place(s, d, 500 * MB)
        ctx.engine.run_until(30.0)
        assert scheduler.ledger.bytes_by_kind.get("report", 0) > 0

    def test_no_elephants_no_work(self):
        scheduler = GlobalFirstFitScheduler()
        ctx = make_ctx(scheduler)
        scheduler.place("h_0_0_0", "h_1_0_0", 1 * MB)
        ctx.engine.run_until(15.0)
        assert scheduler.ledger.total_bytes == 0

    def test_handles_failures(self):
        scheduler = GlobalFirstFitScheduler()
        ctx = make_ctx(scheduler, seed=6)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 800 * MB)
        ctx.engine.run_until(12.0)
        path = flow.switch_path()
        ctx.network.fail_link(path[2], path[3])
        ctx.engine.run_until(20.0)
        if flow.active:
            assert ctx.network.path_alive(flow.switch_path())


class TestRegistry:
    def test_new_schedulers_registered(self):
        from repro.experiments.runner import SCHEDULERS, make_scheduler

        assert "gff" in SCHEDULERS and "texcp-flowlet" in SCHEDULERS
        assert make_scheduler("texcp-flowlet").granularity == "flowlet"
        assert make_scheduler("gff").name == "gff"
