"""Executable checks of the paper's two theorems.

* **Theorem 1** (Appendix A): under max-min fair bandwidth allocation, the
  global minimum BoNF lower-bounds the global minimum flow rate —
  :func:`check_theorem1_bound` verifies it against the simulator's actual
  allocator on any set of demands.
* **Theorem 2** (Appendix B): asynchronous selfish moves converge to a
  Nash equilibrium in finitely many steps —
  :func:`run_best_response_dynamics` plays the dynamics and reports every
  step together with the state-vector trajectory, letting tests assert
  convergence, per-step progress, and the Nash property of the endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.simulator.maxmin import Demand, LinkId, maxmin_allocate
from repro.gametheory.congestion_game import (
    CongestionGame,
    Strategy,
    compare_state_vectors,
)


# ---------------------------------------------------------------------------
# Theorem 1
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Theorem1Report:
    """Evidence for one instance of the Theorem 1 bound."""

    min_flow_rate: float
    min_bonf: float

    @property
    def holds(self) -> bool:
        # Strict floating tolerance: the bound is >=.
        return self.min_flow_rate >= self.min_bonf - 1e-6


def check_theorem1_bound(
    demands: Sequence[Demand], capacities: Dict[LinkId, float]
) -> Theorem1Report:
    """Allocate max-min fairly, then compare min rate against min BoNF."""
    rates = maxmin_allocate(demands, capacities)
    if not rates:
        raise SimulationError("theorem 1 check needs at least one demand")
    flow_counts: Dict[LinkId, int] = {}
    for links, _ in demands:
        for link in links:
            flow_counts[link] = flow_counts.get(link, 0) + 1
    min_bonf = min(
        capacities[link] / count for link, count in flow_counts.items() if count > 0
    )
    return Theorem1Report(min_flow_rate=min(rates), min_bonf=min_bonf)


# ---------------------------------------------------------------------------
# Theorem 2
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DynamicsStep:
    """One selfish move in the best-response play."""

    flow_index: int
    from_route: int
    to_route: int
    bonf_before: float
    bonf_after: float
    sv_before: Tuple[int, ...]
    sv_after: Tuple[int, ...]

    @property
    def sv_decreased(self) -> bool:
        return compare_state_vectors(self.sv_after, self.sv_before) < 0


@dataclass
class DynamicsResult:
    """Full trajectory of asynchronous best-response dynamics."""

    initial: Strategy
    final: Strategy
    steps: List[DynamicsStep]
    converged: bool

    @property
    def num_steps(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class NashCertificate:
    """Machine-checkable evidence that a strategy is a Nash equilibrium.

    Per flow: its current BoNF and the best deviation's BoNF (equal to the
    current one when no deviation exists). The strategy is Nash iff no
    flow can gain more than the game's ``delta_bps`` by moving — exactly
    what Theorem 2's endpoint must satisfy. The validation layer's
    differential oracles consume this instead of a bare bool so failures
    name the deviating flow.
    """

    strategy: Strategy
    flow_bonfs: Tuple[float, ...]
    deviations: Tuple[Optional[int], ...]

    @property
    def is_nash(self) -> bool:
        return all(choice is None for choice in self.deviations)

    def first_deviator(self) -> Optional[int]:
        """Index of the first flow with a δ-improving move, if any."""
        for i, choice in enumerate(self.deviations):
            if choice is not None:
                return i
        return None


def nash_certificate(game: CongestionGame, strategy: Strategy) -> NashCertificate:
    """Build the per-flow Nash evidence for ``strategy``."""
    game.validate_strategy(strategy)
    n = len(game.flows)
    bonfs = tuple(game.flow_bonf(strategy, i) for i in range(n))
    deviations = tuple(game.best_response(strategy, i) for i in range(n))
    return NashCertificate(
        strategy=tuple(strategy), flow_bonfs=bonfs, deviations=deviations
    )


def run_best_response_dynamics(
    game: CongestionGame,
    strategy: Optional[Strategy] = None,
    rng: Optional[np.random.Generator] = None,
    max_steps: int = 100_000,
) -> DynamicsResult:
    """Play asynchronous selfish moves until no flow wants to deviate.

    One flow moves at a time (the paper's no-synchronized-scheduling
    assumption); move order is round-robin by default or randomized when
    ``rng`` is given. Raises :class:`SimulationError` if ``max_steps`` is
    exhausted — under Theorem 2 that should be unreachable.
    """
    current = game.initial_strategy() if strategy is None else tuple(strategy)
    game.validate_strategy(current)
    initial = current
    steps: List[DynamicsStep] = []
    n = len(game.flows)
    while len(steps) < max_steps:
        order = list(range(n))
        if rng is not None:
            rng.shuffle(order)
        moved = False
        for flow_index in order:
            choice = game.best_response(current, flow_index)
            if choice is None:
                continue
            sv_before = game.state_vector(current)
            bonf_before = game.flow_bonf(current, flow_index)
            updated = list(current)
            updated[flow_index] = choice
            updated_strategy = tuple(updated)
            steps.append(
                DynamicsStep(
                    flow_index=flow_index,
                    from_route=current[flow_index],
                    to_route=choice,
                    bonf_before=bonf_before,
                    bonf_after=game.flow_bonf(updated_strategy, flow_index),
                    sv_before=sv_before,
                    sv_after=game.state_vector(updated_strategy),
                )
            )
            current = updated_strategy
            moved = True
            if len(steps) >= max_steps:
                break
        if not moved:
            return DynamicsResult(
                initial=initial, final=current, steps=steps, converged=True
            )
    raise SimulationError(
        f"best-response dynamics did not converge within {max_steps} steps"
    )
