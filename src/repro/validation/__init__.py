"""Differential-oracle validation: the paper's claims as machine checks.

Four layers, composable and individually importable:

* :mod:`repro.validation.invariants` — runtime invariant checks (capacity
  conservation, the max-min KKT certificate, Theorem-1's BoNF bound,
  static-switch-table preservation, Theorem-2 BoNF monotonicity) plus the
  :class:`InvariantChecker` that re-runs them continuously off the event
  engine's after-event hook;
* :mod:`repro.validation.oracles` — differential oracles: indexed vs
  reference allocator, live network vs reference, the incremental
  component-scoped reallocator vs a bit-exact full refill, the batched
  vectorized DARD control plane vs the scalar per-monitor reference
  (same shift journal, bit-identical FCTs), the columnar FlowStore
  settle/ETA/completion passes vs the scalar per-flow reference loops
  (same bit-exact contract), the component-parallel execution backend
  vs a serial twin of the same scenario (the deterministic merge
  contract: records, shift journal, and control accounting identical
  across backends and worker counts), the fluid simulator vs the
  packet-level
  TCP micro-simulator inside the documented 0.81-1.02x FCT agreement
  band, and the :class:`StormOracle` that screens every placement and
  reroute against the failed-link set while auditing flow-store row
  accounting across fail/restore churn;
* :mod:`repro.validation.fuzz` — seeded randomized scenario fuzzing with
  shrink-on-failure minimal reproductions;
* :mod:`repro.validation.snapshot` — golden-trace regression snapshots
  (store / compare / update).

Everything is driven end to end by ``repro validate`` (see ``cli.py``)
and documented in TESTING.md.
"""

from repro.validation.invariants import (
    DEFAULT_NETWORK_CHECKS,
    InvariantChecker,
    SwitchTableSnapshot,
    check_dynamics_monotone,
    check_flowstore_balance,
    check_maxmin_certificate,
    check_network_allocation,
    check_static_forwarding,
    check_theorem1_bound_live,
)
from repro.validation.oracles import (
    FCT_AGREEMENT_BAND,
    FLUID_VS_PACKET_SCENARIOS,
    StormOracle,
    allocator_equivalence_suite,
    check_allocator_equivalence,
    check_controlplane_equivalence,
    check_incremental_against_full,
    check_network_against_reference,
    check_parallel_equivalence,
    check_settle_equivalence,
    compare_controlplane_results,
    compare_parallel_results,
    compare_settle_results,
    controlplane_equivalence_suite,
    parallel_equivalence_suite,
    run_fluid_vs_packet,
    settle_equivalence_suite,
)
from repro.validation.fuzz import (
    FuzzFailure,
    FuzzReport,
    inject_capacity_bug,
    inject_storm_bug,
    random_scenario,
    run_case,
    run_fuzz,
    shrink_config,
)
from repro.validation.sanitizer import OwnershipSanitizer
from repro.validation.snapshot import (
    DEFAULT_GOLDEN_PATH,
    GOLDEN_SCENARIOS,
    collect_goldens,
    compare_goldens,
    compare_goldens_incremental,
    compare_goldens_settle_reference,
    store_goldens,
)

__all__ = [
    "DEFAULT_GOLDEN_PATH",
    "DEFAULT_NETWORK_CHECKS",
    "FCT_AGREEMENT_BAND",
    "FLUID_VS_PACKET_SCENARIOS",
    "FuzzFailure",
    "FuzzReport",
    "GOLDEN_SCENARIOS",
    "InvariantChecker",
    "OwnershipSanitizer",
    "StormOracle",
    "SwitchTableSnapshot",
    "allocator_equivalence_suite",
    "check_allocator_equivalence",
    "check_controlplane_equivalence",
    "check_dynamics_monotone",
    "check_flowstore_balance",
    "check_incremental_against_full",
    "check_maxmin_certificate",
    "check_network_against_reference",
    "check_network_allocation",
    "check_parallel_equivalence",
    "check_settle_equivalence",
    "check_static_forwarding",
    "check_theorem1_bound_live",
    "collect_goldens",
    "compare_controlplane_results",
    "compare_goldens",
    "compare_goldens_incremental",
    "compare_goldens_settle_reference",
    "compare_parallel_results",
    "compare_settle_results",
    "controlplane_equivalence_suite",
    "inject_capacity_bug",
    "inject_storm_bug",
    "parallel_equivalence_suite",
    "random_scenario",
    "run_case",
    "run_fluid_vs_packet",
    "run_fuzz",
    "settle_equivalence_suite",
    "shrink_config",
    "store_goldens",
]
