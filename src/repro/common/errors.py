"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause while still
being able to distinguish subsystem failures.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A topology was constructed with invalid parameters or is malformed."""


class AddressingError(ReproError):
    """Prefix allocation or address/path encoding failed."""


class RoutingError(ReproError):
    """A packet could not be forwarded (no matching table entry, loop, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid values."""


class InvariantViolation(SimulationError):
    """A runtime invariant check failed.

    Structured so machine consumers (the fuzzer, CI reporting) can act on
    the violation without parsing the message: ``invariant`` names the
    check that fired, and ``link`` / ``flow_id`` carry the offending
    entity when one exists. Subclasses :class:`SimulationError` so legacy
    ``except SimulationError`` handlers keep working.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        link: Optional[Tuple[str, str]] = None,
        flow_id: Optional[int] = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.link = link
        self.flow_id = flow_id
        where = ""
        if link is not None:
            where += f" link={link}"
        if flow_id is not None:
            where += f" flow={flow_id}"
        super().__init__(f"[{invariant}]{where} {detail}")


class OracleViolation(SimulationError):
    """Two implementations that must agree (a differential oracle) diverged.

    ``oracle`` names the comparison (e.g. ``allocator-equivalence``,
    ``fluid-vs-packet``); ``subject`` identifies the diverging case
    (demand index, scenario name, ...).
    """

    def __init__(self, oracle: str, detail: str, *, subject: Optional[object] = None) -> None:
        self.oracle = oracle
        self.detail = detail
        self.subject = subject
        where = f" subject={subject}" if subject is not None else ""
        super().__init__(f"[{oracle}]{where} {detail}")
