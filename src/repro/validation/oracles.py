"""Differential oracles: two independent implementations must agree.

Five oracles:

* **allocator equivalence** — the vectorized integer-indexed fast path
  (``maxmin_allocate_indexed``, via its string-keyed wrapper) against the
  preserved pre-index implementation ``maxmin_allocate_reference``, the
  same 1e-9 contract the equivalence test suite enforces — plus the KKT
  certificate on the agreed result;
* **live-network equivalence** — a running :class:`Network`'s settled
  component rates against a from-scratch reference allocation over its
  own flow state (catches divergence anywhere in the CSR assembly /
  caching layer, e.g. a perturbed capacity array entry);
* **control-plane equivalence** — the batched vectorized DARD control
  plane (monitor registry + matrix Algorithm 1 + integer FV) against the
  preserved scalar per-monitor reference: the *same shift sequence* and
  *bit-identical FCTs* on the same scenario (see DESIGN.md
  "Control-plane batching");
* **settle equivalence** — the columnar FlowStore-backed settle / ETA /
  completion passes (``settle_mode="store"``, the default) against the
  preserved scalar per-flow reference loops: *bit-identical records*,
  shift journals, and control accounting on the same scenario (see
  DESIGN.md "Columnar flow state");
* **fluid vs packet** — the fluid simulator's FCTs against the
  packet-level TCP micro-simulator on the documented validation
  scenarios, enforcing the 0.81-1.02x agreement band from
  EXPERIMENTS.md ("Validating the fluid-model substitution").
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import OracleViolation
from repro.common.units import MB, MBPS
import numpy as np

from repro.simulator.maxmin import (
    Demand,
    LinkId,
    link_loads_indexed,
    maxmin_allocate,
    maxmin_allocate_indexed,
    maxmin_allocate_reference,
)
from repro.simulator.network import Network
from repro.validation.invariants import (
    check_flowstore_balance,
    check_maxmin_certificate,
)

#: The documented fluid-vs-packet FCT agreement band: packet/fluid ratio
#: observed across every checked scenario (EXPERIMENTS.md, DESIGN.md).
FCT_AGREEMENT_BAND: Tuple[float, float] = (0.81, 1.02)

#: Slack applied to the band edges — the band endpoints were themselves
#: measured (0.81 and 1.02 are attained), so exact comparisons at the
#: edges need room for float rounding.
_BAND_SLACK = 0.005

#: The validation scenarios: name -> [(src, dst, equal-cost-path index)].
#: These are the exact placements behind the EXPERIMENTS.md table; the
#: fluid-vs-packet bench imports this dict so the two stay in lockstep.
FLUID_VS_PACKET_SCENARIOS: Dict[str, List[Tuple[str, str, int]]] = {
    "single": [("h_0_0_0", "h_1_0_0", 0)],
    "shared_access": [("h_0_0_0", "h_1_0_0", 0), ("h_0_0_0", "h_2_0_0", 2)],
    "core_collision": [("h_0_0_0", "h_1_0_0", 0), ("h_0_1_0", "h_1_1_0", 0)],
    "three_way": [
        ("h_0_0_0", "h_1_0_0", 0),
        ("h_0_0_1", "h_2_0_0", 0),
        ("h_0_1_0", "h_3_0_0", 0),
    ],
    "disjoint": [("h_0_0_0", "h_1_0_0", 0), ("h_0_1_0", "h_2_0_1", 3)],
    # Many-to-one: three senders converge on one receiver's access link,
    # the adversarial incast shape (ratio 0.85 measured, inside the band).
    "incast": [
        ("h_1_0_0", "h_0_0_0", 0),
        ("h_2_0_0", "h_0_0_0", 0),
        ("h_3_0_0", "h_0_0_0", 1),
    ],
}

#: Flow size the agreement band was measured at.
FLUID_VS_PACKET_SIZE_BYTES = 4 * MB


# ---------------------------------------------------------------------------
# Allocator equivalence
# ---------------------------------------------------------------------------

def check_allocator_equivalence(
    demands: Sequence[Demand],
    capacities: Dict[LinkId, float],
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-6,
) -> List[float]:
    """Run both allocators on one instance; raise on any divergence.

    Returns the (agreed) rates. Also KKT-certifies the result, so a case
    where both implementations agree on a *wrong* answer still fails.
    """
    fast = maxmin_allocate(demands, capacities)
    reference = maxmin_allocate_reference(demands, capacities)
    if len(fast) != len(reference):
        raise OracleViolation(
            "allocator-equivalence",
            f"{len(fast)} rates from indexed path, {len(reference)} from reference",
        )
    for j, (a, b) in enumerate(zip(fast, reference)):
        if not math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol):
            raise OracleViolation(
                "allocator-equivalence",
                f"demand {j}: indexed {a!r} != reference {b!r}",
                subject=j,
            )
    if demands:
        check_maxmin_certificate(demands, reference, capacities)
    return fast


def random_allocation_case(
    rng: random.Random,
) -> Tuple[List[Demand], Dict[LinkId, float]]:
    """A random link-set allocation instance (arbitrary incidence shapes)."""
    num_links = rng.randint(2, 40)
    links = [(f"n{i}", f"n{i}'") for i in range(num_links)]
    capacities = {link: rng.uniform(10.0, 1000.0) for link in links}
    demands: List[Demand] = []
    for _ in range(rng.randint(1, 60)):
        k = rng.randint(1, min(6, num_links))
        route = tuple(rng.sample(links, k))
        demands.append((route, rng.uniform(0.1, 5.0)))
    return demands, capacities


def allocator_equivalence_suite(cases: int = 50, seed: int = 0) -> int:
    """Randomized differential sweep of the two allocators; returns cases run."""
    for i in range(cases):
        rng = random.Random(seed * 1_000_003 + i)
        demands, capacities = random_allocation_case(rng)
        try:
            check_allocator_equivalence(demands, capacities)
        except OracleViolation as violation:
            raise OracleViolation(
                violation.oracle,
                f"case seed=({seed},{i}): {violation.detail}",
                subject=violation.subject,
            ) from None
    return cases


def check_network_against_reference(network: Network) -> None:
    """Oracle the live network's settled rates against the reference allocator.

    Rebuilds the string-keyed demand set from the network's own flow
    state and the *capacities dict captured at construction time*, so any
    silent drift in the indexed layer — stale CSR caches, a corrupted
    capacity array entry, wrong owner bookkeeping — shows up as a
    divergence. Skips itself while a reallocation is pending (rates are
    stale by design at those instants).
    """
    if network.realloc_pending:
        return
    demands, owners = network.live_demand_view()
    if not demands:
        return
    expected = maxmin_allocate_reference(demands, network.capacities)
    for (flow, idx), want in zip(owners, expected):
        got = flow.component_rates[idx]
        if not math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-6):
            raise OracleViolation(
                "network-vs-reference",
                f"flow {flow.flow_id} component {idx}: live rate {got!r} != "
                f"reference {want!r}",
                subject=flow.flow_id,
            )


def check_incremental_against_full(network: Network) -> None:
    """Oracle the incremental reallocator against a from-scratch full fill.

    Bit-exactness, not tolerance: component decomposition of max-min
    fairness is exact, and the dirty refill replays the same float
    operations in the same order as a global fill restricted to the
    component, so every live ``component_rates`` entry and every
    persistent link-load entry must equal the full recomputation
    *bit-for-bit*. Any epsilon here means the splice logic lost a link,
    kept a stale rate, or reordered an accumulation — exactly the bugs an
    approximate comparison would mask. No-ops when the network runs in
    full mode (nothing to cross-check) or while a realloc is pending.
    """
    if network.realloc_pending:
        return
    if getattr(network, "_components", None) is None:
        return
    indices, indptr, weights, owners = network.demand_csr()
    expected, _ = maxmin_allocate_indexed(indices, indptr, weights, network._cap_array)
    for (flow, idx), want in zip(owners, expected):
        got = flow.component_rates[idx]
        if got != float(want):
            raise OracleViolation(
                "incremental-vs-full",
                f"flow {flow.flow_id} component {idx}: incremental rate {got!r} "
                f"!= full refill {float(want)!r} (bit-exact contract)",
                subject=flow.flow_id,
            )
    expected_load = link_loads_indexed(
        indices, indptr, expected, len(network.link_index)
    )
    if not np.array_equal(expected_load, network._load_array):
        bad = int(np.flatnonzero(expected_load != network._load_array)[0])
        raise OracleViolation(
            "incremental-vs-full",
            f"persistent load of link {network.link_index.links[bad]} is "
            f"{network._load_array[bad]!r} but a full recount gives "
            f"{expected_load[bad]!r} (bit-exact contract)",
        )


# ---------------------------------------------------------------------------
# Control-plane equivalence (batched vectorized vs scalar reference)
# ---------------------------------------------------------------------------

def compare_controlplane_results(vectorized, reference) -> None:
    """Raise unless two DARD runs of one scenario are behaviorally identical.

    The contract is exact, not approximate: the batched control plane is a
    pure execution-strategy change, so the shift journals must match tuple
    for tuple and every completed flow's record (FCT endpoints, path
    switches, retransmissions) bit for bit. Control-message accounting
    must agree too — batching is a simulator optimization, not a protocol
    change.
    """
    if vectorized.dard_shift_log != reference.dard_shift_log:
        ours, theirs = vectorized.dard_shift_log, reference.dard_shift_log
        for k, (a, b) in enumerate(zip(ours, theirs)):
            if a != b:
                raise OracleViolation(
                    "controlplane-equivalence",
                    f"shift {k} diverges: vectorized {a!r} != scalar {b!r}",
                    subject=k,
                )
        raise OracleViolation(
            "controlplane-equivalence",
            f"shift journal length {len(ours)} (vectorized) != "
            f"{len(theirs)} (scalar)",
        )
    if len(vectorized.records) != len(reference.records):
        raise OracleViolation(
            "controlplane-equivalence",
            f"{len(vectorized.records)} completed flows (vectorized) != "
            f"{len(reference.records)} (scalar)",
        )
    for ours, theirs in zip(vectorized.records, reference.records):
        if ours != theirs:
            raise OracleViolation(
                "controlplane-equivalence",
                f"flow {ours.flow_id}: vectorized record {ours!r} != "
                f"scalar {theirs!r} (bit-exact contract)",
                subject=ours.flow_id,
            )
    if vectorized.control_bytes != reference.control_bytes:
        raise OracleViolation(
            "controlplane-equivalence",
            f"control bytes {vectorized.control_bytes!r} (vectorized) != "
            f"{reference.control_bytes!r} (scalar)",
        )


def _with_vectorized(config, vectorized: bool):
    import dataclasses

    params = dict(config.scheduler_params)
    params["vectorized"] = vectorized
    return dataclasses.replace(config, scheduler_params=params)


def check_controlplane_equivalence(config) -> dict:
    """Run one DARD scenario in both control-plane modes; raise on divergence.

    Returns a small summary dict (flows, shifts) for reporting.
    """
    from repro.experiments.runner import run_scenario

    if config.scheduler != "dard":
        raise ValueError(
            f"control-plane oracle needs a dard scenario, got {config.scheduler!r}"
        )
    vectorized = run_scenario(_with_vectorized(config, True))
    reference = run_scenario(_with_vectorized(config, False))
    compare_controlplane_results(vectorized, reference)
    return {
        "flows": len(vectorized.records),
        "shifts": vectorized.dard_shifts,
    }


def controlplane_equivalence_suite() -> List[dict]:
    """The batched-vs-scalar oracle over the golden DARD scenario plus a
    failure-rich stride case; returns one summary row per scenario."""
    from repro.experiments.runner import ScenarioConfig
    from repro.validation.snapshot import GOLDEN_SCENARIOS

    scenarios = [GOLDEN_SCENARIOS["fattree_dard_random"]]
    scenarios.append(
        ScenarioConfig(
            topology="fattree",
            topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
            pattern="stride",
            scheduler="dard",
            arrival_rate_per_host=0.1,
            duration_s=25.0,
            flow_size_bytes=48 * MB,
            seed=7,
            link_events=(
                ("fail", 12.0, "agg_0_0", "core_0_0"),
                ("restore", 18.0, "agg_0_0", "core_0_0"),
            ),
        )
    )
    rows = []
    for config in scenarios:
        summary = check_controlplane_equivalence(config)
        summary["pattern"] = config.pattern
        rows.append(summary)
    return rows


# ---------------------------------------------------------------------------
# Settle equivalence (columnar FlowStore vs scalar reference loops)
# ---------------------------------------------------------------------------

def compare_settle_results(store, reference) -> None:
    """Raise unless a store-mode and a reference-mode run are identical.

    The columnar settle/ETA/completion passes are a pure execution-strategy
    change, so the contract is exact: every completed flow's record (FCT
    endpoints, path switches, retransmissions) must match bit for bit, any
    DARD shift journal tuple for tuple, and control accounting exactly.
    """
    if store.dard_shift_log != reference.dard_shift_log:
        ours, theirs = store.dard_shift_log, reference.dard_shift_log
        for k, (a, b) in enumerate(zip(ours, theirs)):
            if a != b:
                raise OracleViolation(
                    "settle-equivalence",
                    f"shift {k} diverges: store {a!r} != reference {b!r}",
                    subject=k,
                )
        raise OracleViolation(
            "settle-equivalence",
            f"shift journal length {len(ours)} (store) != "
            f"{len(theirs)} (reference)",
        )
    if len(store.records) != len(reference.records):
        raise OracleViolation(
            "settle-equivalence",
            f"{len(store.records)} completed flows (store) != "
            f"{len(reference.records)} (reference)",
        )
    for ours, theirs in zip(store.records, reference.records):
        if ours != theirs:
            raise OracleViolation(
                "settle-equivalence",
                f"flow {ours.flow_id}: store record {ours!r} != "
                f"reference {theirs!r} (bit-exact contract)",
                subject=ours.flow_id,
            )
    if store.control_bytes != reference.control_bytes:
        raise OracleViolation(
            "settle-equivalence",
            f"control bytes {store.control_bytes!r} (store) != "
            f"{reference.control_bytes!r} (reference)",
        )


def _with_settle_mode(config, mode: str):
    import dataclasses

    params = dict(config.network_params)
    params["settle_mode"] = mode
    return dataclasses.replace(config, network_params=params)


def check_settle_equivalence(config) -> dict:
    """Run one scenario in both settle modes; raise on any divergence.

    Works for every scheduler (the settle path is scheduler-agnostic).
    Returns a small summary dict (flows, shifts) for reporting.
    """
    from repro.experiments.runner import run_scenario

    store = run_scenario(_with_settle_mode(config, "store"))
    reference = run_scenario(_with_settle_mode(config, "reference"))
    compare_settle_results(store, reference)
    return {
        "flows": len(store.records),
        "shifts": store.dard_shifts,
    }


def settle_equivalence_suite() -> List[dict]:
    """The store-vs-reference oracle over golden ECMP and DARD scenarios
    plus a failure-rich stride case; returns one summary row per scenario."""
    from repro.experiments.runner import ScenarioConfig
    from repro.validation.snapshot import GOLDEN_SCENARIOS

    scenarios = [
        GOLDEN_SCENARIOS["fattree_ecmp_stride"],
        GOLDEN_SCENARIOS["fattree_dard_random"],
        ScenarioConfig(
            topology="fattree",
            topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
            pattern="stride",
            scheduler="dard",
            arrival_rate_per_host=0.1,
            duration_s=25.0,
            flow_size_bytes=48 * MB,
            seed=7,
            link_events=(
                ("fail", 12.0, "agg_0_0", "core_0_0"),
                ("restore", 18.0, "agg_0_0", "core_0_0"),
            ),
        ),
    ]
    rows = []
    for config in scenarios:
        summary = check_settle_equivalence(config)
        summary["scheduler"] = config.scheduler
        summary["pattern"] = config.pattern
        rows.append(summary)
    return rows


# ---------------------------------------------------------------------------
# Parallel equivalence (component-parallel backend vs serial)
# ---------------------------------------------------------------------------

def compare_parallel_results(parallel, serial) -> None:
    """Raise unless a parallel-backend run and a serial run are identical.

    The deterministic merge contract (``repro.simulator.parallel``) makes
    the backend a pure execution-strategy change: partition the dirty
    demands by flow-link component, water-fill each bucket on a worker,
    merge rates back positionally in submission order. Nothing downstream
    may observe the difference, so the contract is exact: every completed
    flow's record bit for bit, any DARD shift journal tuple for tuple,
    and control accounting exactly. Only ``filling_iterations`` telemetry
    may differ (a bucketed fill sums per-bucket iteration counts), which
    is why this oracle compares behavior, not ``perf_stats``.
    """
    if parallel.dard_shift_log != serial.dard_shift_log:
        ours, theirs = parallel.dard_shift_log, serial.dard_shift_log
        for k, (a, b) in enumerate(zip(ours, theirs)):
            if a != b:
                raise OracleViolation(
                    "parallel-equivalence",
                    f"shift {k} diverges: parallel {a!r} != serial {b!r}",
                    subject=k,
                )
        raise OracleViolation(
            "parallel-equivalence",
            f"shift journal length {len(ours)} (parallel) != "
            f"{len(theirs)} (serial)",
        )
    if len(parallel.records) != len(serial.records):
        raise OracleViolation(
            "parallel-equivalence",
            f"{len(parallel.records)} completed flows (parallel) != "
            f"{len(serial.records)} (serial)",
        )
    for ours, theirs in zip(parallel.records, serial.records):
        if ours != theirs:
            raise OracleViolation(
                "parallel-equivalence",
                f"flow {ours.flow_id}: parallel record {ours!r} != "
                f"serial {theirs!r} (bit-exact contract)",
                subject=ours.flow_id,
            )
    if parallel.control_bytes != serial.control_bytes:
        raise OracleViolation(
            "parallel-equivalence",
            f"control bytes {parallel.control_bytes!r} (parallel) != "
            f"{serial.control_bytes!r} (serial)",
        )


def _with_backend(config, backend: str, workers: Optional[int] = None):
    """A copy of ``config`` pinned to the given parallel backend.

    The serial twin strips the worker count too — ``serial`` rejects any
    explicit worker count other than 1, and the twin must be exactly the
    historical single-threaded configuration.
    """
    import dataclasses

    params = dict(config.network_params)
    params["parallel_backend"] = backend
    if workers is None:
        params.pop("parallel_workers", None)
    else:
        params["parallel_workers"] = workers
    return dataclasses.replace(config, network_params=params)


def check_parallel_equivalence(
    config, backend: str = "threads", workers: Optional[int] = None
) -> dict:
    """Run one scenario on a parallel backend and serially; raise on any
    divergence. Returns a small summary dict (flows, shifts) for reporting.
    """
    from repro.experiments.runner import run_scenario

    parallel = run_scenario(_with_backend(config, backend, workers))
    serial = run_scenario(_with_backend(config, "serial"))
    compare_parallel_results(parallel, serial)
    return {
        "flows": len(parallel.records),
        "shifts": parallel.dard_shifts,
    }


def _parallel_oracle_scenarios() -> List[Tuple[str, Optional[int], Any]]:
    """``(backend, workers, config)`` rows the suite and CI smoke share.

    The p=8 incast-barrier + failure-storm case is the load-bearing one:
    barrier arrivals create multi-component rounds big enough to cross the
    fan-out threshold (``_MIN_FANOUT_NNZ``), so worker buckets actually
    form and the merge path is exercised rather than trivially bypassed.
    """
    from repro.experiments.runner import ScenarioConfig
    from repro.validation.snapshot import GOLDEN_SCENARIOS

    barrier_storm = ScenarioConfig(
        topology="fattree",
        topology_params={"p": 8, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="dard",
        arrival_rate_per_host=0.05,
        duration_s=6.0,
        flow_size_bytes=32 * MB,
        seed=3,
        arrival="incast-barrier",
        arrival_params={"period_s": 1.0},
        link_events=(
            ("fail", 2.5, "agg_0_0", "core_0_0"),
            ("restore", 4.0, "agg_0_0", "core_0_0"),
        ),
    )
    return [
        ("threads", 4, barrier_storm),
        ("threads", 7, barrier_storm),
        ("processes", 2, barrier_storm),
        ("threads", 4, GOLDEN_SCENARIOS["fattree_dard_random"]),
    ]


def parallel_equivalence_suite() -> List[dict]:
    """The parallel-vs-serial oracle over a fan-out-active barrier+storm
    case (threads x4/x7, processes x2) plus the golden DARD scenario;
    returns one summary row per (backend, workers, scenario)."""
    rows = []
    for backend, workers, config in _parallel_oracle_scenarios():
        summary = check_parallel_equivalence(config, backend, workers)
        summary["backend"] = backend
        summary["workers"] = workers
        summary["pattern"] = config.pattern
        rows.append(summary)
    return rows


# ---------------------------------------------------------------------------
# Fluid vs packet
# ---------------------------------------------------------------------------

def run_fluid_vs_packet(
    scenarios: Optional[Dict[str, List[Tuple[str, str, int]]]] = None,
    size_bytes: float = FLUID_VS_PACKET_SIZE_BYTES,
    band: Optional[Tuple[float, float]] = FCT_AGREEMENT_BAND,
) -> List[dict]:
    """Run each scenario in both simulators; enforce the agreement band.

    Returns one row per scenario (fluid FCT, packet FCT, ratio). With
    ``band`` set (the default), any scenario whose packet/fluid mean-FCT
    ratio falls outside it raises :class:`OracleViolation` — the fluid
    substitution underlying every reproduction number is then no longer
    trustworthy and the run must fail.
    """
    from repro.packetsim import PacketSimulation
    from repro.simulator import FlowComponent
    from repro.topology import FatTree

    if scenarios is None:
        scenarios = FLUID_VS_PACKET_SCENARIOS
    rows: List[dict] = []
    for name, placements in scenarios.items():
        packet_sim = PacketSimulation(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        for src, dst, index in placements:
            packet_sim.add_flow(src, dst, size_bytes, path_index=index)
        packet_mean = sum(r.fct_s for r in packet_sim.run()) / len(placements)

        fluid_net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        topo = fluid_net.topology
        for src, dst, index in placements:
            path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[index]
            fluid_net.start_flow(
                src, dst, size_bytes, [FlowComponent(topo.host_path(src, dst, path))]
            )
        fluid_net.engine.run_until_idle()
        fluid_net.check_invariants()
        fluid_mean = sum(r.fct for r in fluid_net.records) / len(placements)

        ratio = packet_mean / fluid_mean
        rows.append(
            {
                "scenario": name,
                "flows": len(placements),
                "fluid_fct_s": fluid_mean,
                "packet_fct_s": packet_mean,
                "ratio": ratio,
            }
        )
        if band is not None:
            low, high = band
            if not (low - _BAND_SLACK <= ratio <= high + _BAND_SLACK):
                raise OracleViolation(
                    "fluid-vs-packet",
                    f"FCT ratio {ratio:.4f} outside agreement band "
                    f"[{low}, {high}] (fluid {fluid_mean:.4f}s, "
                    f"packet {packet_mean:.4f}s)",
                    subject=name,
                )
    return rows


# ---------------------------------------------------------------------------
# Storm oracle (routing and row accounting across fail/restore churn)
# ---------------------------------------------------------------------------

class StormOracle:
    """Certify a live network across failure storms.

    Two executable claims, checked continuously while attached:

    * **no flow is ever routed over a failed link** — every
      ``start_flow`` and ``reroute_flow`` is intercepted, and a chosen
      component crossing a cable in ``failed_links`` is a violation
      *unless no fully-alive equal-cost path existed at that instant*.
      The carve-out is the documented stall semantics
      (``Scheduler.alive_paths``): when e.g. a host's access cable is
      down, the flow is placed anyway and stalls until the failure
      heals, as real traffic would — what is never allowed is choosing
      a dead path while a live alternative was on the table;
    * **FlowStore row accounting balances across fail/restore churn** —
      after every ``fail_link`` / ``restore_link`` (the points where
      stalls, completion bursts, and compaction collide),
      :func:`~repro.validation.invariants.check_flowstore_balance`
      must pass exactly.

    Attach via the runner's ``instrument`` seam before any traffic
    starts; :meth:`final_check` re-audits the books once the run drains.
    Interception is pure observation — no RNG, no state mutation — so an
    attached oracle never changes what a seed does.
    """

    def __init__(self) -> None:
        self.network: Optional[Network] = None
        self.placements_checked = 0
        self.reroutes_checked = 0
        self.stalled_placements = 0
        self.failures_seen = 0
        self.restores_seen = 0
        self.balance_checks = 0
        self._orig_start = None
        self._orig_reroute = None

    # -- wiring -----------------------------------------------------------------

    def attach(self, network: Network) -> "StormOracle":
        """Interpose on one network's flow placement and failure hooks."""
        if self.network is not None:
            raise ValueError("StormOracle is already attached")
        self.network = network
        self._orig_start = network.start_flow
        self._orig_reroute = network.reroute_flow
        network.start_flow = self._start_flow  # type: ignore[method-assign]
        network.reroute_flow = self._reroute_flow  # type: ignore[method-assign]
        network.link_failed_listeners.append(self._on_failed)
        network.link_restored_listeners.append(self._on_restored)
        return self

    def detach(self) -> None:
        """Restore the wrapped methods and listeners (idempotent)."""
        network = self.network
        if network is None:
            return
        network.start_flow = self._orig_start  # type: ignore[method-assign]
        network.reroute_flow = self._orig_reroute  # type: ignore[method-assign]
        network.link_failed_listeners.remove(self._on_failed)
        network.link_restored_listeners.remove(self._on_restored)
        self.network = None

    # -- interception -----------------------------------------------------------

    def _start_flow(self, src, dst, size_bytes, components):
        self.placements_checked += 1
        self._check_components(src, dst, components, "placement")
        return self._orig_start(src, dst, size_bytes, components)

    def _reroute_flow(self, flow, components, count_switch=True, retx_penalty=True):
        self.reroutes_checked += 1
        self._check_components(flow.src, flow.dst, components, "reroute")
        return self._orig_reroute(
            flow, components, count_switch=count_switch, retx_penalty=retx_penalty
        )

    def _check_components(self, src, dst, components, kind) -> None:
        network = self.network
        if not network.failed_links:
            return
        dead = [c for c in components if not network.path_alive(c.path)]
        if not dead:
            return
        topo = network.topology
        paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
        alive = [
            p for p in paths if network.path_alive(topo.host_path(src, dst, p))
        ]
        if alive:
            raise OracleViolation(
                "storm-routing",
                f"{kind} of {src}->{dst} at t={network.now:.3f} rides a "
                f"failed link on {dead[0].path!r} while {len(alive)} "
                f"alive equal-cost path(s) existed",
            )
        self.stalled_placements += 1

    def _on_failed(self, u: str, v: str) -> None:
        self.failures_seen += 1
        self._check_balance()

    def _on_restored(self, u: str, v: str) -> None:
        self.restores_seen += 1
        self._check_balance()

    def _check_balance(self) -> None:
        self.balance_checks += 1
        check_flowstore_balance(self.network)

    # -- reporting --------------------------------------------------------------

    def final_check(self) -> None:
        """Audit the books once more; call after the run drains."""
        if self.network is None:
            raise ValueError("StormOracle is not attached")
        self._check_balance()

    def stats(self) -> Dict[str, float]:
        """Interception counters, for reports and coverage assertions."""
        return {
            "storm_placements_checked": float(self.placements_checked),
            "storm_reroutes_checked": float(self.reroutes_checked),
            "storm_stalled_placements": float(self.stalled_placements),
            "storm_failures_seen": float(self.failures_seen),
            "storm_restores_seen": float(self.restores_seen),
            "storm_balance_checks": float(self.balance_checks),
        }
