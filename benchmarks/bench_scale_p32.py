"""Scale check: p=32 fat-tree (8192 hosts), past the paper's largest size.

The batched control plane (monitor registry + matrix Algorithm 1 +
integer-indexed flow vectors) is what makes four-digit daemon fleets
tractable; this bench pushes to 8192 hosts and checks the paper's story
survives: DARD still beats ECMP under stride and the per-flow stability
bound tightens (p90 path switches <= 1 at this scale's light per-host
load).

The full run is a multi-minute simulation, so every knob is
env-overridable for CI's short budget: ``BENCH_SCALE_P32_DURATION``
(default 25 sim-s), ``BENCH_SCALE_P32_RATE`` (arrivals/host/s) and
``BENCH_SCALE_P32_DRAIN`` (post-arrival drain cap). The DARD-vs-ECMP
gain gate and the stability gate hold at any budget; raw rows land in
``benchmarks/results/BENCH_scale_p32.json``.
"""

import json
import os
import pathlib

import numpy as np

from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, improvement, run_scenario
from repro.experiments.figures import ExperimentOutput

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

DURATION_S = float(os.environ.get("BENCH_SCALE_P32_DURATION", "25"))
RATE = float(os.environ.get("BENCH_SCALE_P32_RATE", "0.012"))
DRAIN_S = float(os.environ.get("BENCH_SCALE_P32_DRAIN", "600"))


def _run_pair():
    base = dict(
        topology="fattree",
        topology_params={"p": 32, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        arrival_rate_per_host=RATE,
        duration_s=DURATION_S,
        flow_size_bytes=128 * MB,
        seed=1,
        drain_limit_s=DRAIN_S,
    )
    ecmp = run_scenario(ScenarioConfig(scheduler="ecmp", **base))
    dard = run_scenario(ScenarioConfig(scheduler="dard", **base))
    rows = [
        {
            "scheduler": name,
            "hosts": 8192,
            "flows": len(result.records),
            "mean_fct_s": result.mean_fct,
            "shifts": result.dard_shifts,
            "p90_switches": float(np.percentile(result.path_switches, 90))
            if result.path_switches
            else 0.0,
        }
        for name, result in [("ecmp", ecmp), ("dard", dard)]
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scale_p32.json").write_text(
        json.dumps({"experiment": "scale_p32", "rows": rows}, indent=2) + "\n"
    )
    return ExperimentOutput(
        "scale_p32",
        "p=32 fat-tree (8192 hosts), stride: DARD vs ECMP at scale",
        rows=rows,
        notes=f"improvement: {improvement(ecmp.mean_fct, dard.mean_fct):.1%}, "
        f"duration {DURATION_S:.0f}s, rate {RATE}/host/s",
    )


def test_scale_p32(benchmark, save_output):
    output = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    save_output(output)
    by_sched = {row["scheduler"]: row for row in output.rows}
    assert by_sched["ecmp"]["flows"] > 0
    gain = improvement(by_sched["ecmp"]["mean_fct_s"], by_sched["dard"]["mean_fct_s"])
    assert gain > 0.0
    # Stability tightens at scale: with 256 equal-cost paths per pair and
    # light per-host load, 90% of flows never move at all.
    assert by_sched["dard"]["p90_switches"] <= 1
