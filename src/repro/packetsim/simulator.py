"""The packet-level simulation driver.

Wires TCP senders to store-and-forward links over node paths from a real
topology. ACKs return after the forward path's propagation delay (reverse
queueing ignored — ACKs are tiny), which keeps the simulator focused on
the forward-path dynamics the validation cares about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.simulator.engine import EventEngine
from repro.topology.multirooted import MultiRootedTopology
from repro.packetsim.links import DEFAULT_QUEUE_PACKETS, LinkTable
from repro.packetsim.tcp import TcpParams, TcpReceiver, TcpSender


@dataclass(frozen=True)
class PacketFlowResult:
    """Per-flow outcome of a packet-level run."""

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    fct_s: float
    segments: int
    retransmissions: int

    @property
    def retx_rate(self) -> float:
        return self.retransmissions / self.segments if self.segments else 0.0

    @property
    def goodput_bps(self) -> float:
        return self.size_bytes * 8.0 / self.fct_s if self.fct_s > 0 else 0.0


class _PacketFlow:
    """One TCP transfer over one or more node paths."""

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        size_bytes: float,
        paths: Sequence[Tuple[str, ...]],
        weights: Sequence[float],
        links: LinkTable,
        engine: EventEngine,
        params: TcpParams,
        rng: np.random.Generator,
    ) -> None:
        if not paths:
            raise ConfigurationError("flow needs at least one path")
        if len(paths) != len(weights):
            raise ConfigurationError("paths and weights length mismatch")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = float(size_bytes)
        self.paths = [tuple(p) for p in paths]
        total_weight = float(sum(weights))
        self.weights = [w / total_weight for w in weights]
        self.links = links
        self.engine = engine
        self.rng = rng
        self.segments = max(1, math.ceil(size_bytes / params.mss_bytes))
        self.params = params
        self.receiver = TcpReceiver(self.segments)
        self.sender = TcpSender(engine, self.segments, self._send_segment, params)
        self.start_time: Optional[float] = None

    # -- path selection: weighted striping at segment granularity -----------------

    def _pick_path(self) -> Tuple[str, ...]:
        if len(self.paths) == 1:
            return self.paths[0]
        index = int(self.rng.choice(len(self.paths), p=self.weights))
        return self.paths[index]

    # -- segment pipeline --------------------------------------------------------------

    def _send_segment(self, seq: int) -> None:
        path = self._pick_path()
        self._forward(seq, path, hop=0)

    def _forward(self, seq: int, path: Tuple[str, ...], hop: int) -> None:
        if hop == len(path) - 1:
            self._deliver(seq, path)
            return
        link = self.links.link(path[hop], path[hop + 1])
        accepted = link.transmit(
            self.params.mss_bytes,
            lambda: self._forward(seq, path, hop + 1),
        )
        if not accepted:
            pass  # tail drop: recovery comes from dupacks or the RTO

    def _deliver(self, seq: int, path: Tuple[str, ...]) -> None:
        cumulative = self.receiver.on_segment(seq)
        # ACK return: propagation only (reverse queueing ignored).
        ack_delay = sum(
            self.links.link(v, u).delay_s for u, v in zip(path, path[1:])
        )
        self.engine.schedule_in(ack_delay, lambda c=cumulative: self.sender.on_ack(c))


class PacketSimulation:
    """Run a set of TCP transfers packet by packet over a topology.

    >>> sim = PacketSimulation(topology)                    # doctest: +SKIP
    >>> sim.add_flow("h_0_0_0", "h_1_0_0", 2_000_000)       # doctest: +SKIP
    >>> results = sim.run()                                  # doctest: +SKIP
    """

    def __init__(
        self,
        topology: MultiRootedTopology,
        params: TcpParams = TcpParams(),
        queue_packets: int = DEFAULT_QUEUE_PACKETS,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.params = params
        self.engine = EventEngine()
        self.links = LinkTable(self.engine, topology, queue_packets)
        self.rng = np.random.default_rng(seed)
        self._flows: List[_PacketFlow] = []
        self._start_times: Dict[int, float] = {}

    def add_flow(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        paths: Optional[Sequence[Tuple[str, ...]]] = None,
        weights: Optional[Sequence[float]] = None,
        start_time_s: float = 0.0,
        path_index: int = 0,
    ) -> int:
        """Register a transfer; returns its flow id.

        Without explicit ``paths``, the flow rides the ``path_index``-th
        equal-cost path. Pass several paths (with optional weights) for
        packet-granularity striping.
        """
        if size_bytes <= 0:
            raise ConfigurationError(f"flow size must be positive, got {size_bytes}")
        topo = self.topology
        if paths is None:
            switch_paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
            chosen = switch_paths[path_index % len(switch_paths)]
            paths = [topo.host_path(src, dst, chosen)]
        if weights is None:
            weights = [1.0] * len(paths)
        flow_id = len(self._flows)
        flow = _PacketFlow(
            flow_id, src, dst, size_bytes, paths, weights,
            self.links, self.engine, self.params, self.rng,
        )
        self._flows.append(flow)
        self._start_times[flow_id] = start_time_s

        def begin(f=flow):
            f.start_time = self.engine.now
            f.sender.start()

        self.engine.schedule_at(start_time_s, begin)
        return flow_id

    def fail_link_at(self, when_s: float, u: str, v: str) -> None:
        """Schedule both directions of cable ``u — v`` to go down."""
        self.engine.schedule_at(when_s, lambda: self.links.fail(u, v))

    def restore_link_at(self, when_s: float, u: str, v: str) -> None:
        """Schedule both directions of cable ``u — v`` to come back up."""
        self.engine.schedule_at(when_s, lambda: self.links.restore(u, v))

    def run(self, deadline_s: float = 600.0) -> List[PacketFlowResult]:
        """Simulate until every flow completes (or the deadline passes)."""
        if not self._flows:
            raise ConfigurationError("no flows registered")
        while (
            any(f.sender.completed_at is None for f in self._flows)
            and self.engine.now < deadline_s
        ):
            before = self.engine.pending_events
            self.engine.run_until(min(self.engine.now + 1.0, deadline_s))
            if self.engine.pending_events == 0 and before == 0:
                break  # wedged: deadline accounting below will flag it
        results = []
        for flow in self._flows:
            if flow.sender.completed_at is None:
                raise ConfigurationError(
                    f"flow {flow.flow_id} did not complete by t={deadline_s}s"
                )
            results.append(
                PacketFlowResult(
                    flow_id=flow.flow_id,
                    src=flow.src,
                    dst=flow.dst,
                    size_bytes=flow.size_bytes,
                    fct_s=flow.sender.completed_at - flow.start_time,
                    segments=flow.segments,
                    retransmissions=flow.sender.retransmissions,
                )
            )
        return results

    @property
    def total_drops(self) -> int:
        return self.links.total_drops()
