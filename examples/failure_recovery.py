#!/usr/bin/env python
"""Failure injection walk-through: DARD routing around a dead core uplink.

A long elephant runs across pods while we cut the agg->core cable on its
path mid-transfer. The host's monitor sees the dead link as zero BoNF in
the very state it already polls, so the next selfish scheduling round
shifts the flow to a live path — no failure detector, no control-plane
signalling, no table updates.

The example samples the flow's rate over time so the stall-and-recover
profile is visible, then prints the aggregate cost of the outage.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro.addressing import HierarchicalAddressing, PathCodec
from repro.analysis import RateSampler
from repro.common.units import MB, MBPS
from repro.core import DardScheduler
from repro.scheduling import SchedulerContext
from repro.simulator import Network
from repro.topology import FatTree


def main() -> None:
    topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
    net = Network(topo)
    scheduler = DardScheduler()
    scheduler.attach(
        SchedulerContext(
            network=net,
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(7),
        )
    )
    sampler = RateSampler(net, interval_s=1.0)

    flow = scheduler.place("h_0_0_0", "h_2_0_0", 800 * MB)  # ~64 s alone
    net.engine.run_until(15.0)  # elephant detected at 10 s, monitor live

    path = flow.switch_path()
    print(f"flow rides   : {' -> '.join(path[1:-1])}")
    print(f"t=15s        : cutting {path[2]} <-> {path[3]}")
    net.fail_link(path[2], path[3])

    net.engine.run_until(60.0)
    print(f"flow now on  : {' -> '.join(flow.switch_path()[1:-1])} "
          f"(after {flow.path_switches} path switch)")
    net.engine.run_until_idle(hard_limit=200.0)

    print("\nrate timeline (Mbps):")
    for t, rate in sampler.series_for(flow.flow_id):
        bar = "#" * int(rate / (4 * MBPS))
        print(f"  t={t:5.1f}s {rate / 1e6:6.1f} {bar}")
        if t > 40:
            break

    record = net.records[0] if net.records else None
    if record:
        ideal = 800 * MB * 8 / (100 * MBPS)
        print(f"\ncompleted in {record.fct:.1f}s "
              f"(ideal {ideal:.1f}s; the gap is the stall before the next "
              "scheduling round plus one retransmitted window)")


if __name__ == "__main__":
    main()
