"""DET004 bad fixture: json.dump without sort_keys=True."""

import json


def write_report(payload, handle):
    """Key order follows dict construction history — not byte-stable."""
    json.dump(payload, handle, indent=2)
