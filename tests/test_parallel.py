"""Tests for parallel scenario execution."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.analysis import parallel_sweep, run_scenarios_parallel, sweep
from repro.experiments import ScenarioConfig

BASE = ScenarioConfig(
    topology="fattree",
    topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
    pattern="stride",
    scheduler="ecmp",
    arrival_rate_per_host=0.05,
    duration_s=15.0,
    flow_size_bytes=16 * MB,
    seed=1,
)


class TestRunScenariosParallel:
    def test_empty(self):
        assert run_scenarios_parallel([]) == []

    def test_single_runs_serially(self):
        results = run_scenarios_parallel([BASE], max_workers=4)
        assert len(results) == 1 and results[0].records

    def test_parallel_matches_serial(self):
        import dataclasses

        configs = [dataclasses.replace(BASE, seed=s) for s in (1, 2, 3, 4)]
        serial = [r.mean_fct for r in run_scenarios_parallel(configs, max_workers=1)]
        parallel = [
            r.mean_fct for r in run_scenarios_parallel(configs, max_workers=2)
        ]
        assert parallel == serial

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            run_scenarios_parallel([BASE], max_workers=0)


class TestParallelSweep:
    def test_matches_serial_sweep(self):
        grid = {"seed": [1, 2], "scheduler": ["ecmp", "vlb"]}
        serial = sweep(BASE, grid)
        parallel = parallel_sweep(BASE, grid, max_workers=2)
        assert [o for o, _ in parallel] == [o for o, _ in serial]
        assert [r.mean_fct for _, r in parallel] == [r.mean_fct for _, r in serial]

    def test_empty_grid(self):
        results = parallel_sweep(BASE, {}, max_workers=2)
        assert len(results) == 1
