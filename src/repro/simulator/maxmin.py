"""Weighted max-min fair bandwidth allocation by progressive filling.

Given demands (each a set of directed links plus a weight) and per-link
capacities, progressively raise every unfrozen demand's rate in proportion
to its weight until some link saturates; freeze the demands on that link and
repeat. This is the textbook water-filling algorithm (Boudec's tutorial,
paper reference [11]) and yields the unique weighted max-min allocation.

Weights exist for TeXCP-style striping, where one agent deliberately sends
unequal shares down different paths; every single-path scheduler uses
weight 1.0.

The implementation is vectorized over a sparse link x demand incidence
matrix — the allocator runs after every flow arrival/completion/reroute,
so it is the simulator's hot loop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import SimulationError

#: A directed link identifier (u, v).
LinkId = Tuple[str, str]

#: One demand: the links it traverses and its weight.
Demand = Tuple[Sequence[LinkId], float]

_EPSILON = 1e-9


def maxmin_allocate(
    demands: Sequence[Demand],
    capacities: Dict[LinkId, float],
) -> List[float]:
    """Rates (bits/s) for each demand under weighted max-min fairness.

    Demands traversing no links are rejected — every real flow crosses at
    least its host access link. Unknown links or non-positive capacities
    and weights raise :class:`SimulationError`.
    """
    n = len(demands)
    if n == 0:
        return []

    # Index the links actually in use; the demand/link scan below is O(nnz).
    used_links: Dict[LinkId, int] = {}
    demand_links: List[np.ndarray] = []
    link_members: List[List[int]] = []
    weights = np.empty(n, dtype=float)
    for j, (links, weight) in enumerate(demands):
        if not links:
            raise SimulationError(f"demand {j} traverses no links")
        if weight <= 0:
            raise SimulationError(f"demand {j} has non-positive weight {weight}")
        weights[j] = weight
        indices = []
        for link in links:
            if link not in capacities:
                raise SimulationError(f"demand {j} uses unknown link {link}")
            index = used_links.get(link)
            if index is None:
                index = len(used_links)
                used_links[link] = index
                link_members.append([])
            indices.append(index)
            link_members[index].append(j)
        demand_links.append(np.asarray(indices, dtype=np.intp))

    num_links = len(used_links)
    remaining = np.empty(num_links, dtype=float)
    for link, index in used_links.items():
        cap = capacities[link]
        if cap <= 0:
            raise SimulationError(f"link {link} in use has non-positive capacity {cap}")
        remaining[index] = cap

    live_weight = np.zeros(num_links, dtype=float)
    for j, indices in enumerate(demand_links):
        live_weight[indices] += weights[j]

    rates = np.zeros(n, dtype=float)
    active = np.ones(n, dtype=bool)
    unfrozen = n

    # Progressive filling: each iteration vectorizes the bottleneck search
    # (O(L) numpy); each demand is frozen exactly once, so the per-demand
    # update work totals O(nnz) across the whole call.
    while unfrozen > 0:
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(live_weight > _EPSILON, remaining / live_weight, np.inf)
        bottleneck = int(np.argmin(share))
        best_share = share[bottleneck]
        if not np.isfinite(best_share):
            raise SimulationError("no bottleneck found with demands outstanding")
        best_share = max(float(best_share), 0.0)
        for j in link_members[bottleneck]:
            if not active[j]:
                continue
            rate = weights[j] * best_share
            rates[j] = rate
            active[j] = False
            unfrozen -= 1
            indices = demand_links[j]
            remaining[indices] -= rate
            live_weight[indices] -= weights[j]
        remaining[bottleneck] = 0.0
        live_weight[bottleneck] = 0.0
        np.maximum(remaining, 0.0, out=remaining)

    return rates.tolist()


def link_utilizations(
    demands: Sequence[Demand],
    rates: Sequence[float],
    capacities: Dict[LinkId, float],
) -> Dict[LinkId, float]:
    """Per-link utilization in [0, 1] given an allocation."""
    load: Dict[LinkId, float] = {}
    for (links, _), rate in zip(demands, rates):
        for link in links:
            load[link] = load.get(link, 0.0) + rate
    return {link: total / capacities[link] for link, total in load.items()}
