"""Dense integer interning of directed links.

The fluid simulator's hot loop — max-min reallocation after every flow
event — used to hash ``(str, str)`` link tuples on every call. A
:class:`LinkIndex` interns each directed link to a dense integer id
exactly once per :class:`~repro.simulator.network.Network`, so all
per-link quantities (capacity, delay, failure state, flow counters,
utilization) become numpy arrays indexed by link id and every hot-path
computation is a vectorized gather/scatter instead of a dict walk.

:class:`LinkArrayMapping` wraps one of those arrays back into a
``Mapping[LinkId, value]`` so code (and tests) written against the old
dict-shaped surfaces keeps working unchanged — reads and writes go
straight through to the underlying array.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.common.errors import SimulationError

#: A directed link identifier (u, v) — re-exported by :mod:`maxmin`.
LinkId = Tuple[str, str]


class LinkIndex:
    """Immutable intern table: directed link ``(u, v)`` -> dense int id.

    Built once per network from the topology's directed links; capacities
    and propagation delays ride along as arrays aligned to the ids.
    """

    __slots__ = ("ids", "links", "capacities", "delays", "switch_link_mask")

    def __init__(
        self,
        links: Sequence[LinkId],
        capacities: Iterable[float],
        delays: Iterable[float],
        switch_link_mask: Optional[np.ndarray] = None,
    ) -> None:
        self.links: List[LinkId] = list(links)
        self.ids: Dict[LinkId, int] = {link: i for i, link in enumerate(self.links)}
        if len(self.ids) != len(self.links):
            raise SimulationError("duplicate directed link in LinkIndex")
        self.capacities = np.asarray(list(capacities), dtype=float)
        self.delays = np.asarray(list(delays), dtype=float)
        if self.capacities.shape[0] != len(self.links) or self.delays.shape[0] != len(
            self.links
        ):
            raise SimulationError("LinkIndex arrays must align with the link list")
        #: per-id bool: both endpoints are switches. ``path_state``-style
        #: queries use it to drop host access hops without re-consulting the
        #: topology per call. Indexes built without topology knowledge
        #: (direct construction in allocator tests) default to all-True.
        if switch_link_mask is None:
            switch_link_mask = np.ones(len(self.links), dtype=bool)
        self.switch_link_mask = np.asarray(switch_link_mask, dtype=bool)
        if self.switch_link_mask.shape[0] != len(self.links):
            raise SimulationError("LinkIndex arrays must align with the link list")

    @classmethod
    def from_topology(cls, topology: Any) -> "LinkIndex":
        """Intern every directed link of a topology, in its link order."""
        links: List[LinkId] = []
        caps: List[float] = []
        delays: List[float] = []
        switchy: List[bool] = []
        for u, v in topology.directed_links():
            link = topology.link(u, v)
            links.append((u, v))
            caps.append(link.bandwidth_bps)
            delays.append(link.delay_s)
            switchy.append(
                topology.node(u).kind.is_switch and topology.node(v).kind.is_switch
            )
        return cls(links, caps, delays, np.asarray(switchy, dtype=bool))

    def __len__(self) -> int:
        return len(self.links)

    def __contains__(self, link: LinkId) -> bool:
        return link in self.ids

    def id_of(self, link: LinkId) -> int:
        """The dense id of one directed link; unknown links raise."""
        try:
            return self.ids[link]
        except KeyError:
            raise SimulationError(f"component uses unknown link {link}") from None

    def index_links(self, links: Iterable[LinkId]) -> np.ndarray:
        """Intern a sequence of directed links to an id array."""
        ids = self.ids
        link_list = list(links)
        try:
            return np.fromiter(
                (ids[link] for link in link_list), dtype=np.intp, count=len(link_list)
            )
        except KeyError:
            bad = next(link for link in link_list if link not in ids)
            raise SimulationError(f"component uses unknown link {bad}") from None

    def index_path(self, path: Sequence[str]) -> np.ndarray:
        """Intern the directed links of a node path to an id array."""
        return self.index_links(zip(path, path[1:]))


class LinkArrayMapping(MutableMapping):
    """Dict-shaped live view over a per-link array.

    Iteration yields every interned link (zero entries included); reads
    and writes address the backing array in place, so mutating the view
    mutates the simulator state it fronts — exactly like the plain dicts
    it replaces.
    """

    __slots__ = ("_index", "_array")

    def __init__(self, index: LinkIndex, array: np.ndarray) -> None:
        self._index = index
        self._array = array

    def __getitem__(self, link: LinkId) -> float:
        i = self._index.ids.get(link)
        if i is None:
            raise KeyError(link)
        return self._array[i].item()

    def __setitem__(self, link: LinkId, value: float) -> None:
        i = self._index.ids.get(link)
        if i is None:
            raise KeyError(link)
        self._array[i] = value

    def __delitem__(self, link: LinkId) -> None:
        raise TypeError("links cannot be removed from a LinkArrayMapping")

    def __iter__(self) -> Iterator[LinkId]:
        return iter(self._index.links)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, link: object) -> bool:
        return link in self._index.ids
