"""Hot-path rules: PERF001 and PERF002.

The reallocation hot loop (PR 1/PR 3 of this repo's history) was moved
from string-keyed dict walks to dense integer ids precisely because
hashing ``(str, str)`` link tuples per event dominated profiles. PERF001
pins that win down: inside the known hot functions, link state may only
be addressed through :class:`LinkIndex` dense ids and numpy arrays.

PERF002 pins down the columnar flow-state win the same way (PR 6): the
per-event functions — settle, completion-ETA, finisher scan — must go
through the :class:`FlowStore` columns, never iterate the ``flows`` dict
per event. The designated scalar-reference helpers (``*_reference``) are
the oracle and iterate by design; they are outside the checked set.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import Finding, ModuleContext, Rule, register

#: Functions forming the per-event reallocation hot path. A string-keyed
#: lookup anywhere in these bodies is a regression even when it "works".
_HOT_FUNCTIONS = {
    "_reallocate",
    "_refill_full",
    "_refill_dirty",
    "_assemble_demands",
    "_settle",
    "_schedule_next_completion",
    "maxmin_allocate_indexed",
    "_progressive_fill_tail",
    "scatter_link_loads",
    "link_loads_indexed",
    "batch_path_state",
}

#: String-keyed mapping attributes (the dict-shaped compatibility
#: surfaces) that hot code must not subscript or query.
_STRING_KEYED_ATTRS = {"capacities", "link_delays", "ids"}

#: LinkIndex interning entry points; legitimate at registration time
#: (start/reroute, monitor setup), a hash-per-event bug inside hot loops.
_INTERNING_METHODS = {"id_of", "index_links", "index_path"}


def _iter_hot_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in _HOT_FUNCTIONS:
                yield node


def _annotation_node_ids(function: ast.FunctionDef) -> frozenset:
    """ids of every node living inside a type annotation.

    ``Tuple[np.ndarray, int]`` in a signature is a tuple-sliced subscript
    too — annotations never execute per event, so they are exempt.
    """
    roots: List[ast.AST] = []
    if function.returns is not None:
        roots.append(function.returns)
    all_args = (
        list(function.args.posonlyargs)
        + list(function.args.args)
        + list(function.args.kwonlyargs)
    )
    for arg in all_args + [function.args.vararg, function.args.kwarg]:
        if arg is not None and arg.annotation is not None:
            roots.append(arg.annotation)
    for node in ast.walk(function):
        if isinstance(node, ast.AnnAssign):
            roots.append(node.annotation)
    ids = set()
    for root in roots:
        for node in ast.walk(root):
            ids.add(id(node))
    return frozenset(ids)


@register
class StringKeyedHotLookup(Rule):
    """PERF001: string/tuple-keyed link access inside the realloc hot path.

    Flags, within the known hot functions: subscripts keyed by tuple
    displays (``caps[(u, v)]``), subscripts or ``.get`` on the
    string-keyed mapping surfaces (``capacities``, ``link_delays``,
    ``ids``), and per-call interning (``id_of``/``index_links``/
    ``index_path``). Use the link-id arrays cached at start/reroute.
    """

    code = "PERF001"
    name = "string-keyed-hot-lookup"
    description = "string/tuple-keyed link lookup inside a realloc hot function"
    scope = ("repro.simulator",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for function in _iter_hot_functions(ctx.tree):
            annotation_ids = _annotation_node_ids(function)
            seen: List[Tuple[int, int]] = []
            for node in ast.walk(function):
                if id(node) in annotation_ids:
                    continue
                finding = self._inspect(ctx, function, node)
                if finding is not None and (finding.line, finding.col) not in seen:
                    seen.append((finding.line, finding.col))
                    yield finding

    def _inspect(
        self, ctx: ModuleContext, function: ast.FunctionDef, node: ast.AST
    ) -> Optional[Finding]:
        if isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Tuple):
                return ctx.finding(
                    node,
                    self.code,
                    f"tuple-keyed subscript in hot function "
                    f"{function.name}(); use LinkIndex dense ids",
                )
            if (
                isinstance(node.value, ast.Attribute)
                and node.value.attr in _STRING_KEYED_ATTRS
            ):
                return ctx.finding(
                    node,
                    self.code,
                    f"string-keyed mapping .{node.value.attr}[...] in hot "
                    f"function {function.name}(); use the dense arrays",
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _INTERNING_METHODS:
                return ctx.finding(
                    node,
                    self.code,
                    f".{node.func.attr}() interns per call inside hot "
                    f"function {function.name}(); index once at "
                    "start/reroute and reuse the id arrays",
                )
            if (
                node.func.attr == "get"
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in _STRING_KEYED_ATTRS
            ):
                return ctx.finding(
                    node,
                    self.code,
                    f"string-keyed .{node.func.value.attr}.get(...) in hot "
                    f"function {function.name}(); use the dense arrays",
                )
        return None


#: Per-event network functions that must stay columnar. The scalar
#: reference twins (``_settle_reference`` etc.) are deliberately absent:
#: they are the differential oracle and iterate flows by design.
_EVENT_FUNCTIONS = {
    "_settle",
    "_schedule_next_completion",
    "_on_completion_event",
}

#: Mapping-view calls that enumerate the flows dict.
_FLOWS_VIEW_METHODS = {"values", "items", "keys"}


def _is_flows_attribute(node: ast.AST) -> bool:
    """Whether ``node`` is an attribute access ending in ``.flows``."""
    return isinstance(node, ast.Attribute) and node.attr == "flows"


def _is_flows_enumeration(node: ast.AST) -> bool:
    """``X.flows`` itself, or ``X.flows.values()/items()/keys()``."""
    if _is_flows_attribute(node):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _FLOWS_VIEW_METHODS
        and _is_flows_attribute(node.func.value)
    )


@register
class PerEventFlowIteration(Rule):
    """PERF002: per-flow iteration inside a per-event network function.

    Flags, within the per-event functions (settle / completion-ETA /
    finisher scan): ``for`` loops and comprehensions iterating ``.flows``
    or its ``values()/items()/keys()`` views, and bare enumeration calls
    on those views. Per-flow work in these bodies reverts the columnar
    FlowStore win — use masked array expressions over the store columns,
    or put scalar loops in the designated ``*_reference`` oracle twins.
    """

    code = "PERF002"
    name = "per-event-flow-iteration"
    description = "per-flow iteration inside a per-event network function"
    scope = ("repro.simulator",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in _EVENT_FUNCTIONS:
                continue
            seen: List[Tuple[int, int]] = []
            for inner in ast.walk(node):
                finding = self._inspect(ctx, node, inner)
                if finding is not None and (finding.line, finding.col) not in seen:
                    seen.append((finding.line, finding.col))
                    yield finding

    def _inspect(
        self, ctx: ModuleContext, function: ast.FunctionDef, node: ast.AST
    ) -> Optional[Finding]:
        # Every values()/items()/keys() call on .flows is an enumeration,
        # whether it feeds a for loop, a comprehension, or list(...). A
        # bare ``.flows`` attribute is only flagged when it is directly
        # iterated (it also appears in legitimate keyed lookups).
        flagged = isinstance(node, ast.Call) and _is_flows_enumeration(node)
        if not flagged:
            iterators: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterators.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterators.extend(gen.iter for gen in node.generators)
            flagged = any(_is_flows_attribute(it) for it in iterators)
        if flagged:
            return ctx.finding(
                node,
                self.code,
                f"per-flow iteration in per-event function "
                f"{function.name}(); use the FlowStore columns (scalar "
                "loops belong in the *_reference oracle twins)",
            )
        return None
