"""Validation: the fluid simulator against packet-level ground truth.

Every reproduction number in this repo comes from the fluid max-min model
(DESIGN.md's ns-2 substitution). This bench quantifies that substitution:
the same small scenarios run in both simulators, and the fluid flow
completion times must track the packet-level ones within tens of percent
— close enough that scheduler orderings (who wins, by what factor) carry
over, which is all the paper-shape claims need.
"""

from repro.common.units import MB, MBPS
from repro.experiments.figures import ExperimentOutput
from repro.packetsim import PacketSimulation
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree
from conftest import run_once

SCENARIOS = {
    "single": [("h_0_0_0", "h_1_0_0", 0)],
    "shared_access": [("h_0_0_0", "h_1_0_0", 0), ("h_0_0_0", "h_2_0_0", 2)],
    "core_collision": [("h_0_0_0", "h_1_0_0", 0), ("h_0_1_0", "h_1_1_0", 0)],
    "three_way": [
        ("h_0_0_0", "h_1_0_0", 0),
        ("h_0_0_1", "h_2_0_0", 0),
        ("h_0_1_0", "h_3_0_0", 0),
    ],
    "disjoint": [("h_0_0_0", "h_1_0_0", 0), ("h_0_1_0", "h_2_0_1", 3)],
}

SIZE = 4 * MB


def _compare_all():
    rows = []
    for name, placements in SCENARIOS.items():
        packet_sim = PacketSimulation(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        for src, dst, index in placements:
            packet_sim.add_flow(src, dst, SIZE, path_index=index)
        packet_mean = sum(r.fct_s for r in packet_sim.run()) / len(placements)

        fluid_net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        topo = fluid_net.topology
        for src, dst, index in placements:
            path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[index]
            fluid_net.start_flow(
                src, dst, SIZE, [FlowComponent(topo.host_path(src, dst, path))]
            )
        fluid_net.engine.run_until_idle()
        fluid_mean = sum(r.fct for r in fluid_net.records) / len(placements)

        rows.append(
            {
                "scenario": name,
                "flows": len(placements),
                "fluid_fct_s": fluid_mean,
                "packet_fct_s": packet_mean,
                "ratio": packet_mean / fluid_mean,
            }
        )
    return ExperimentOutput(
        "validation_fluid_vs_packet",
        "Fluid simulator FCT vs packet-level (TCP Reno) ground truth",
        rows=rows,
        notes="ratio = packet / fluid; 1.0 is perfect agreement. TCP's "
        "slow start and loss recovery make packet FCTs run slightly "
        "faster or slower per scenario; scheduler orderings are "
        "preserved as long as ratios stay near 1.",
    )


def test_validation_fluid_vs_packet(benchmark, save_output):
    output = run_once(benchmark, _compare_all)
    save_output(output)
    for row in output.rows:
        assert 0.6 < row["ratio"] < 1.4, row
