"""API-contract rules: API001 and API002.

Machine-checked ownership contracts that the incremental reallocator's
bit-exactness proof (DESIGN.md "Component decomposition") relies on:
the persistent load array has exactly three writers, and same-time event
ordering is owned by :class:`EventEngine` alone.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import Finding, ModuleContext, Rule, register

#: The only functions allowed to write ``_load_array``: construction, and
#: the two refill owners whose splices are proven bit-exact against each
#: other (scatter_link_loads mutates its *parameter*, so it needs no slot
#: in this list — the rule tracks attribute writes).
_LOAD_ARRAY_OWNERS = {"__init__", "_refill_full", "_refill_dirty"}

#: ndarray methods that mutate in place.
_MUTATING_ARRAY_METHODS = {"fill", "put", "sort", "resize", "partition"}


def _enclosing_functions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(enclosing function name, node)`` for every node in the tree.

    Module-level nodes report the enclosing name ``"<module>"``.
    """
    stack: List[Tuple[str, ast.AST]] = [("<module>", tree)]
    while stack:
        name, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield name, child
                stack.append((child.name, child))
            else:
                yield name, child
                stack.append((name, child))


@register
class LoadArrayOwnership(Rule):
    """API001: ``_load_array`` mutated outside its refill owners.

    The persistent per-link load array stays bit-identical between the
    incremental and full reallocation modes only because every write goes
    through the audited splice in ``_refill_full``/``_refill_dirty``
    (backed by ``scatter_link_loads``'s ordered accumulation). Any other
    writer silently voids that proof.
    """

    code = "API001"
    name = "load-array-ownership"
    description = "_load_array written outside _refill_full/_refill_dirty"
    scope = ("repro",)

    _ATTR = "_load_array"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for function_name, node in _enclosing_functions(ctx.tree):
            allowed = function_name in _LOAD_ARRAY_OWNERS
            target: Optional[ast.AST] = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for candidate in targets:
                    if self._targets_load_array(candidate):
                        target = candidate
                        break
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_ARRAY_METHODS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == self._ATTR
                ):
                    target = node
            if target is not None and not allowed:
                yield ctx.finding(
                    target,
                    self.code,
                    f"write to {self._ATTR} outside "
                    f"{sorted(_LOAD_ARRAY_OWNERS)}; persistent load is owned "
                    "by the refill pair (scatter_link_loads splice)",
                )

    def _targets_load_array(self, node: ast.AST) -> bool:
        # `x._load_array = ...` rebinding, or `x._load_array[...] = ...`
        # element/slice stores.
        if isinstance(node, ast.Attribute) and node.attr == self._ATTR:
            return True
        if isinstance(node, ast.Subscript):
            value = node.value
            return isinstance(value, ast.Attribute) and value.attr == self._ATTR
        return False


@register
class EventHeapBypass(Rule):
    """API002: event-heap access bypassing the ``EventEngine`` API.

    Same-time events order by the engine's monotonic sequence numbers;
    pushing onto (or inspecting) ``engine._heap`` directly desynchronizes
    that sequence between otherwise identical runs — the exact bug class
    ``EventEngine.reschedule`` exists to prevent. Schedule through
    ``schedule_at``/``schedule_in``/``reschedule`` only.
    """

    code = "API002"
    name = "event-heap-bypass"
    description = "direct _heap/_seq access; use EventEngine schedule APIs"
    scope = ("repro",)
    exempt = ("repro.simulator.engine",)

    _PRIVATE_ATTRS = {"_heap", "_seq"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in self._PRIVATE_ATTRS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"direct access to EventEngine.{node.attr}; use "
                    "schedule_at/schedule_in/reschedule so sequence numbers "
                    "stay deterministic",
                )
