"""Determinism regression: one seed, one trace.

The reproduction's pairwise scheduler comparisons and the golden-trace
regression layer both rest on the same guarantee — a scenario is a pure
function of its seed. These tests pin that down hard: two in-process runs
and one fresh-interpreter subprocess run must produce *byte-identical*
FCT traces (full repr precision, not rounded)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.common.units import MB, MBPS
from repro.experiments.runner import ScenarioConfig, run_scenario

SCENARIO = ScenarioConfig(
    topology="fattree",
    topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
    pattern="random",
    scheduler="dard",
    arrival_rate_per_host=0.08,
    duration_s=15.0,
    flow_size_bytes=16 * MB,
    seed=1234,
)


def trace(result):
    """The full-precision per-flow trace, in completion order."""
    return [
        (record.flow_id, repr(record.start_time), repr(record.fct),
         record.path_switches)
        for record in result.records
    ]


# One subprocess-visible program that prints the trace as JSON. It
# rebuilds the exact SCENARIO above from the constants, so the subprocess
# shares no interpreter state with us at all.
_SUBPROCESS_PROGRAM = """
import json
from repro.common.units import MB, MBPS
from repro.experiments.runner import ScenarioConfig, run_scenario

result = run_scenario(ScenarioConfig(
    topology="fattree",
    topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
    pattern="random",
    scheduler="dard",
    arrival_rate_per_host=0.08,
    duration_s=15.0,
    flow_size_bytes=16 * MB,
    seed=1234,
))
print(json.dumps([
    [r.flow_id, repr(r.start_time), repr(r.fct), r.path_switches]
    for r in result.records
]))
"""


class TestDeterminism:
    def test_two_in_process_runs_byte_identical(self):
        first = run_scenario(SCENARIO)
        second = run_scenario(SCENARIO)
        assert first.flows_generated == second.flows_generated
        assert trace(first) == trace(second)
        assert repr(first.control_bytes) == repr(second.control_bytes)
        assert first.dard_shifts == second.dard_shifts

    def test_subprocess_run_byte_identical(self):
        in_process = [list(row) for row in trace(run_scenario(SCENARIO))]
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "0"  # prove we do not depend on it either way
        completed = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_PROGRAM],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout) == in_process

    def test_different_seeds_diverge(self):
        # Sanity check that the byte-identity above is not vacuous.
        import dataclasses

        other = run_scenario(dataclasses.replace(SCENARIO, seed=4321))
        assert trace(other) != trace(run_scenario(SCENARIO))
