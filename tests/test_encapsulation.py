"""Tests for the IP-in-IP encapsulation data path."""

import pytest

from repro.common.errors import AddressingError, RoutingError
from repro.addressing import (
    EncapsulationModule,
    HierarchicalAddressing,
    IdMapper,
    Packet,
    PathCodec,
)
from repro.switches import SwitchFabric
from repro.topology import FatTree


@pytest.fixture(scope="module")
def stack():
    topo = FatTree(p=4)
    addressing = HierarchicalAddressing(topo)
    codec = PathCodec(addressing)
    mapper = IdMapper(topo.hosts())
    fabric = SwitchFabric(addressing)
    return topo, codec, mapper, fabric


def modules(stack, src, dst):
    topo, codec, mapper, _ = stack
    return (
        EncapsulationModule(src, codec, mapper),
        EncapsulationModule(dst, codec, mapper),
    )


class TestEncapsulation:
    def test_wrap_unwrap_round_trip(self, stack):
        topo, codec, mapper, fabric = stack
        src, dst = "h_0_0_0", "h_1_0_0"
        tx, rx = modules(stack, src, dst)
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[1]
        tx.set_path(dst, path)
        packet = Packet(src_id=mapper.id_of(src), dst_id=mapper.id_of(dst), payload=b"hi")
        wrapped = tx.encapsulate(packet)
        # The fabric really delivers it along the pinned path.
        trace = fabric.forward_trace(src, wrapped.outer_src, wrapped.outer_dst)
        assert trace == (src,) + path + (dst,)
        assert rx.decapsulate(wrapped) == packet

    def test_path_shift_changes_outer_header_only(self, stack):
        topo, codec, mapper, fabric = stack
        src, dst = "h_0_0_0", "h_2_0_0"
        tx, rx = modules(stack, src, dst)
        paths = topo.equal_cost_paths("tor_0_0", "tor_2_0")
        packet = Packet(src_id=mapper.id_of(src), dst_id=mapper.id_of(dst))
        tx.set_path(dst, paths[0])
        first = tx.encapsulate(packet)
        tx.set_path(dst, paths[3])  # the DARD shift
        second = tx.encapsulate(packet)
        assert (first.outer_src, first.outer_dst) != (second.outer_src, second.outer_dst)
        assert first.inner == second.inner  # application-invisible
        assert rx.decapsulate(second) == packet

    def test_cannot_spoof_source_id(self, stack):
        topo, codec, mapper, _ = stack
        tx, _ = modules(stack, "h_0_0_0", "h_1_0_0")
        spoofed = Packet(src_id=mapper.id_of("h_3_1_1"), dst_id=mapper.id_of("h_1_0_0"))
        with pytest.raises(AddressingError):
            tx.encapsulate(spoofed)

    def test_send_without_pinned_path(self, stack):
        topo, codec, mapper, _ = stack
        tx, _ = modules(stack, "h_0_0_0", "h_1_0_0")
        packet = Packet(src_id=mapper.id_of("h_0_0_0"), dst_id=mapper.id_of("h_1_0_0"))
        with pytest.raises(AddressingError):
            tx.encapsulate(packet)

    def test_misdelivery_detected(self, stack):
        topo, codec, mapper, _ = stack
        src, dst = "h_0_0_0", "h_1_0_0"
        tx, _ = modules(stack, src, dst)
        wrong_rx = EncapsulationModule("h_2_0_0", codec, mapper)
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        tx.set_path(dst, path)
        wrapped = tx.encapsulate(
            Packet(src_id=mapper.id_of(src), dst_id=mapper.id_of(dst))
        )
        with pytest.raises(RoutingError):
            wrong_rx.decapsulate(wrapped)

    def test_set_path_validates(self, stack):
        topo, codec, mapper, _ = stack
        tx, _ = modules(stack, "h_0_0_0", "h_1_0_0")
        bad_path = topo.equal_cost_paths("tor_2_0", "tor_1_0")[0]
        with pytest.raises(AddressingError):
            tx.set_path("h_1_0_0", bad_path)

    def test_current_path_reported(self, stack):
        topo, codec, mapper, _ = stack
        tx, _ = modules(stack, "h_0_0_0", "h_1_0_0")
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[2]
        tx.set_path("h_1_0_0", path)
        assert tx.current_path("h_1_0_0") == path
        with pytest.raises(AddressingError):
            tx.current_path("h_3_0_0")
