"""OpenFlow-style switch substrate.

Switches hold two static longest-prefix-match tables (paper §2.3): a
*downhill* table of prefixes allocated to downstream branches (checked
first, like the higher-priority OpenFlow table the prototype installs) and
an *uphill* table of prefixes allocated from upstream cores. Tables are
written exactly once, at fabric construction time — DARD never touches them
again; all adaptivity lives in the end hosts' choice of address pair.

The fabric also exposes the switch *state query* API DARD's monitors use:
per egress port, the link bandwidth and the current number of elephant
flows (served by the live :class:`repro.simulator.network.Network` via a
pluggable provider).
"""

from repro.switches.flowtable import FlowTable, TableEntry
from repro.switches.switch import Switch, SwitchFabric
from repro.switches.verification import (
    VerificationReport,
    audit_table_sizes,
    verify_fabric,
)

__all__ = [
    "FlowTable",
    "Switch",
    "SwitchFabric",
    "TableEntry",
    "VerificationReport",
    "audit_table_sizes",
    "verify_fabric",
]
