"""Tests for repro.common: units, RNG streams, errors."""

import numpy as np
import pytest

from repro.common import (
    GBPS,
    MB,
    MBPS,
    AddressingError,
    ReproError,
    RngStreams,
    RoutingError,
    SimulationError,
    TopologyError,
    bytes_to_bits,
    mbps,
    seconds_to_transfer,
)


class TestUnits:
    def test_mbps_conversion(self):
        assert mbps(100 * MBPS) == 100.0

    def test_gbps_is_thousand_mbps(self):
        assert GBPS == 1000 * MBPS

    def test_bytes_to_bits(self):
        assert bytes_to_bits(1) == 8.0
        assert bytes_to_bits(128 * MB) == 128 * MB * 8

    def test_transfer_time_128mb_at_100mbps(self):
        # The paper's testbed case: one 128 MB file on a 100 Mbps link.
        assert seconds_to_transfer(128 * MB, 100 * MBPS) == pytest.approx(10.24)

    def test_transfer_time_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            seconds_to_transfer(1 * MB, 0.0)

    def test_transfer_time_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            seconds_to_transfer(1 * MB, -5.0)


class TestRngStreams:
    def test_same_name_same_generator_object(self):
        rngs = RngStreams(7)
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_names_are_independent(self):
        rngs = RngStreams(7)
        a_first = rngs.stream("a").random(5).tolist()
        rngs2 = RngStreams(7)
        rngs2.stream("b").random(100)  # drain an unrelated stream
        assert rngs2.stream("a").random(5).tolist() == a_first

    def test_reproducible_across_instances(self):
        assert (
            RngStreams(3).stream("x").integers(0, 1000, 10).tolist()
            == RngStreams(3).stream("x").integers(0, 1000, 10).tolist()
        )

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(8)
        b = RngStreams(2).stream("x").random(8)
        assert not np.allclose(a, b)

    def test_spawn_creates_independent_child(self):
        parent = RngStreams(5)
        child = parent.spawn("worker")
        assert child.seed != parent.seed
        # Children are reproducible too.
        again = RngStreams(5).spawn("worker")
        assert again.seed == child.seed

    def test_seed_property(self):
        assert RngStreams(42).seed == 42


class TestErrors:
    @pytest.mark.parametrize(
        "exc", [TopologyError, AddressingError, RoutingError, SimulationError]
    )
    def test_hierarchy(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise RoutingError("nope")
