"""PERF001 bad fixture: tuple-keyed link lookup inside a hot function."""


class FakeNetwork:
    """Minimal shape for the rule: only the method name matters."""

    def _refill_full(self):
        """Hashes a (u, v) tuple per link per event — the PR 1 regression."""
        for u, v in self.links:
            self.load[(u, v)] = 0.0
