"""Whole-network statistics sampled over time.

Complements the per-flow and per-link samplers with the aggregate view:
active flows, live elephants, and total goodput per sampling instant —
the series behind "how loaded was the fabric during this run".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import ConfigurationError
from repro.simulator.network import Network


@dataclass(frozen=True)
class NetworkSample:
    """One aggregate snapshot."""

    time_s: float
    active_flows: int
    active_elephants: int
    throughput_bps: float
    failed_links: int


class NetworkStatsSampler:
    """Periodic aggregate snapshots of a live network."""

    def __init__(self, network: Network, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval_s}")
        self.network = network
        self.interval_s = interval_s
        self.samples: List[NetworkSample] = []
        network.engine.schedule_every(interval_s, self._sample, start_delay=interval_s)

    def _sample(self) -> None:
        net = self.network
        flows = list(net.flows.values())
        self.samples.append(
            NetworkSample(
                time_s=net.now,
                active_flows=len(flows),
                active_elephants=sum(1 for f in flows if f.is_elephant),
                throughput_bps=sum(f.rate_bps for f in flows),
                failed_links=len(net.failed_links) // 2,  # cables, not directions
            )
        )

    def peak_active_flows(self) -> int:
        """The highest sampled number of simultaneously active flows."""
        return max((s.active_flows for s in self.samples), default=0)

    def mean_throughput_bps(self) -> float:
        """Average sampled aggregate goodput."""
        if not self.samples:
            return 0.0
        return sum(s.throughput_bps for s in self.samples) / len(self.samples)

    def busiest_instant(self) -> NetworkSample:
        """The sample with the highest goodput; raises if none taken."""
        if not self.samples:
            raise ConfigurationError("no samples recorded yet")
        return max(self.samples, key=lambda s: s.throughput_bps)
