"""Shared utilities: units, deterministic RNG streams, and errors.

Everything in :mod:`repro` that needs randomness or unit conversions goes
through this package so experiments stay exactly reproducible and unit
mistakes (bits vs bytes, Mbps vs bps) are impossible to make silently.
"""

from repro.common.errors import (
    AddressingError,
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.common.logging import enable_console_logging, get_logger
from repro.common.rng import RngStreams
from repro.common.units import (
    GBPS,
    KBPS,
    MB,
    MBPS,
    bits,
    bytes_to_bits,
    mbps,
    seconds_to_transfer,
)

__all__ = [
    "AddressingError",
    "ConfigurationError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "TopologyError",
    "RngStreams",
    "enable_console_logging",
    "get_logger",
    "GBPS",
    "KBPS",
    "MB",
    "MBPS",
    "bits",
    "bytes_to_bits",
    "mbps",
    "seconds_to_transfer",
]
