"""DET003 good fixture: order-independent float accumulation."""

import math


def total_load(rates):
    """math.fsum is exact, so input order cannot change the result."""
    distinct = {float(rate) for rate in rates}
    return math.fsum(sorted(distinct))
