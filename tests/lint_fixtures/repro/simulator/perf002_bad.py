"""PERF002 bad fixture: per-flow iteration inside a per-event function."""


class FakeNetwork:
    """Minimal shape for the rule: only the method name matters."""

    def _settle(self, dt):
        """Walks every flow object per event — the PR 6 regression."""
        for flow in self.flows.values():
            flow.remaining_bytes -= flow.rate_bps * dt / 8.0
