"""Reallocation benchmark: incremental component-scoped vs full refills.

Runs the same seeded DARD scenario twice — once with the incremental
reallocator disabled (every membership change triggers a global
water-fill) and once enabled (only dirty flow-link components are
re-filled, rates spliced into the persistent load array) — and checks
three things:

* **equivalence**: the two runs produce identical flow records — the
  incremental mode's bit-exactness contract, end to end;
* **locality**: the majority of incremental rounds touch a strict subset
  of the live components (otherwise the machinery is pure overhead);
* **speed**: whole-scenario wall time improves by the acceptance factor.

Output rows land in ``benchmarks/results/perf_realloc.txt`` and the raw
numbers in ``benchmarks/results/BENCH_perf_realloc.json`` so the perf
trajectory is tracked across PRs. Scale and duration are env-overridable
(``BENCH_PERF_REALLOC_P``, ``BENCH_PERF_REALLOC_DURATION``) so CI can run
a fast smoke at p=4 while the default exercises p=16; the locality and
speedup gates only apply at p >= 16 where components are plentiful.
"""

import json
import os
import pathlib
import time

from repro.common.units import MB, MBPS
from repro.experiments.figures import ExperimentOutput
from repro.experiments.runner import ScenarioConfig, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

P = int(os.environ.get("BENCH_PERF_REALLOC_P", "16"))
DURATION_S = float(os.environ.get("BENCH_PERF_REALLOC_DURATION", "15"))

#: Whole-scenario speedup the incremental mode must deliver at p=16.
MIN_SPEEDUP = 1.5

#: Fraction of incremental rounds that must touch a strict component subset.
MIN_SUBSET_FRACTION = 0.5


def _config(incremental):
    return ScenarioConfig(
        topology="fattree",
        topology_params={"p": P, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="dard",
        arrival_rate_per_host=0.035,
        duration_s=DURATION_S,
        flow_size_bytes=128 * MB,
        seed=1,
        network_params={"incremental_realloc": incremental},
    )


def _run_mode(incremental):
    network_box = []
    started = time.perf_counter()
    result = run_scenario(_config(incremental), instrument=network_box.append)
    wall_s = time.perf_counter() - started
    stats = network_box[0].perf_stats()
    incr = int(stats["realloc_incremental"])
    row = {
        "mode": "incremental" if incremental else "full",
        "p": P,
        "duration_s": DURATION_S,
        "wall_s": wall_s,
        "flows_completed": len(result.records),
        "realloc_calls": int(stats["realloc_calls"]),
        "realloc_full": int(stats["realloc_full"]),
        "realloc_incremental": incr,
        "realloc_subset": int(stats["realloc_subset"]),
        "subset_fraction": stats["realloc_subset"] / incr if incr else 0.0,
        "components_touched": int(stats["components_touched"]),
        "components_live": int(stats["components_live"]),
        "flows_rerated": int(stats["flows_rerated"]),
        "flows_preserved": int(stats["flows_preserved"]),
        "realloc_time_s": stats["realloc_time_s"],
    }
    return row, result


def _run_all():
    full_row, full_result = _run_mode(incremental=False)
    incr_row, incr_result = _run_mode(incremental=True)

    # Bit-exactness, end to end: every completed flow identical.
    full_records = [
        (r.flow_id, r.src, r.dst, r.start_time, r.end_time, r.path_switches)
        for r in full_result.records
    ]
    incr_records = [
        (r.flow_id, r.src, r.dst, r.start_time, r.end_time, r.path_switches)
        for r in incr_result.records
    ]
    assert full_records == incr_records, (
        f"incremental mode diverged: {len(full_records)} full vs "
        f"{len(incr_records)} incremental records"
    )

    speedup = full_row["wall_s"] / incr_row["wall_s"]
    rows = [full_row, dict(incr_row, speedup=speedup)]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_perf_realloc.json").write_text(
        json.dumps({"experiment": "perf_realloc", "rows": rows}, indent=2) + "\n"
    )
    return ExperimentOutput(
        "perf_realloc",
        "scenario wall time: incremental component-scoped vs full reallocation",
        rows=[
            {
                "mode": r["mode"],
                "wall_s": round(r["wall_s"], 2),
                "realloc_calls": r["realloc_calls"],
                "subset_fraction": round(r["subset_fraction"], 2),
                "flows_preserved": r["flows_preserved"],
            }
            for r in rows
        ],
        notes=f"p={P} dard stride, {DURATION_S:.0f}s, records verified "
        f"identical across modes; speedup {speedup:.2f}x",
    )


def test_perf_realloc(benchmark, save_output):
    output = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_output(output)
    rows = json.loads(
        (RESULTS_DIR / "BENCH_perf_realloc.json").read_text()
    )["rows"]
    incr = rows[1]
    assert incr["realloc_incremental"] > 0, incr
    if P >= 16:
        # Rich component structure only emerges at scale; the p=4 CI smoke
        # checks equivalence and telemetry but not locality or speed.
        assert incr["subset_fraction"] >= MIN_SUBSET_FRACTION, incr
        assert incr["speedup"] >= MIN_SPEEDUP, incr
