"""Command-line interface: ``dard`` (or ``python -m repro``).

Subcommands:

* ``dard list`` — list reproducible experiments;
* ``dard run <experiment-id> [--seed N] [--duration S]`` — run one of the
  paper's tables/figures and print the rendered result;
* ``dard compare --topology ... --pattern ... --rate ...`` — one-off
  comparison of any scheduler subset on any topology;
* ``dard validate [--fuzz]`` — the differential-oracle validation layer:
  allocator equivalence, the fluid-vs-packet FCT agreement band,
  golden-trace regression, and (with ``--fuzz``) randomized invariant
  fuzzing with shrink-on-failure (see TESTING.md);
* ``dard lint [paths ...]`` — dardlint, the repo's AST static analyzer
  for determinism/hot-path/API-contract rules (see DESIGN.md
  "Static guarantees"); exits non-zero on any finding.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.common.units import MB, MBPS
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.metrics import improvement
from repro.experiments.report import render_table
from repro.experiments.runner import SCHEDULERS, ScenarioConfig, run_scenario


def _seconds(text: str) -> float:
    """Parse a duration flag; accepts ``60`` and ``60s``."""
    return float(text.rstrip("sS"))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dard",
        description="DARD (ICDCS 2012) reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    run_cmd = sub.add_parser("run", help="run one experiment by id")
    run_cmd.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument(
        "--duration", type=float, default=None, help="override duration in seconds"
    )
    run_cmd.add_argument("--csv", default=None, help="also write the rows to this CSV file")
    run_cmd.add_argument("--json", default=None, help="also write the full output to this JSON file")
    run_cmd.add_argument(
        "--profile", default=None, metavar="PSTATS_FILE",
        help="profile the command under cProfile: dump pstats to this file "
             "and print the top 20 functions by cumulative time",
    )

    analyze = sub.add_parser("analyze", help="structural report of a topology")
    analyze.add_argument(
        "--topology", default="fattree", choices=["fattree", "clos", "threetier"]
    )
    analyze.add_argument("--pods", type=int, default=4, help="fat-tree p")
    analyze.add_argument("--d", type=int, default=4, help="Clos D_I = D_A")
    analyze.add_argument("--bandwidth-mbps", type=float, default=1000.0)

    run_config = sub.add_parser(
        "run-config", help="run a scenario described by a JSON config file"
    )
    run_config.add_argument("config", help="path to a scenario JSON file")
    run_config.add_argument("--records-csv", default=None,
                            help="write per-flow records to this CSV")

    verify = sub.add_parser(
        "verify", help="verify addressing + switch tables forward every path"
    )
    verify.add_argument(
        "--topology", default="fattree", choices=["fattree", "clos", "threetier"]
    )
    verify.add_argument("--pods", type=int, default=4, help="fat-tree p")
    verify.add_argument("--d", type=int, default=4, help="Clos D_I = D_A")
    verify.add_argument("--max-pairs", type=int, default=500)

    validate = sub.add_parser(
        "validate", help="run the differential-oracle validation layer"
    )
    validate.add_argument(
        "--fuzz", action="store_true",
        help="also run the randomized scenario fuzzer (draws incast "
             "patterns, heavy-tailed empirical arrivals, barrier bursts, "
             "failure storms, and the predictive detector; every case "
             "runs under the invariant battery plus the storm oracle)",
    )
    validate.add_argument(
        "--seeds", type=int, default=None,
        help="number of fuzz seeds (default 100 when --fuzz and no --budget)",
    )
    validate.add_argument(
        "--start-seed", type=int, default=0,
        help="first fuzz seed (reproduce a reported failure)",
    )
    validate.add_argument(
        "--budget", type=_seconds, default=None, metavar="SECONDS",
        help="wall-clock fuzz budget, e.g. 60 or 60s (stops after the "
             "case that crosses it)",
    )
    validate.add_argument(
        "--inject-bug", action="store_true",
        help="self-test: corrupt one capacity array entry per case; the "
             "oracles must catch it",
    )
    validate.add_argument(
        "--sanitize", action="store_true",
        help="run fuzz cases under the runtime ownership sanitizer: "
             "write-barriers on the registered shared state assert the "
             "static RACE verdicts dynamically (results stay bit-identical)",
    )
    validate.add_argument(
        "--fuzz-backend", choices=("serial", "threads", "processes"), default=None,
        help="pin every fuzz case to one parallel execution backend "
             "instead of the generator's weighted draw (nightly CI pins "
             "threads so every seed dual-runs the merge-contract oracle)",
    )
    validate.add_argument(
        "--oracle-cases", type=int, default=50,
        help="random instances for the allocator differential oracle",
    )
    validate.add_argument(
        "--skip-oracles", action="store_true",
        help="skip the allocator and fluid-vs-packet oracles",
    )
    validate.add_argument(
        "--golden", choices=["compare", "update", "skip"], default="compare",
        help="golden-trace snapshots: compare against (default), rewrite, or skip",
    )
    validate.add_argument(
        "--golden-path", default=None,
        help="golden file location (default tests/goldens/golden_traces.json)",
    )
    validate.add_argument(
        "--profile", default=None, metavar="PSTATS_FILE",
        help="profile the command under cProfile: dump pstats to this file "
             "and print the top 20 functions by cumulative time",
    )

    lint = sub.add_parser(
        "lint", help="run dardlint, the repo's determinism/hot-path analyzer"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (json is the CI artifact schema)",
    )
    lint.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the report to this file",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    lint.add_argument(
        "--parallel-safety-report", default=None, metavar="FILE",
        help="write the component-purity certificate (ownership table, "
             "component closure, proven-pure function list) as JSON",
    )
    lint.add_argument(
        "--allow-unused-suppressions", action="store_true",
        help="transitional: do not report stale disable comments (DRD001)",
    )

    compare = sub.add_parser("compare", help="ad-hoc scheduler comparison")
    compare.add_argument(
        "--topology", default="fattree", choices=["fattree", "clos", "threetier"]
    )
    compare.add_argument("--pods", type=int, default=4, help="fat-tree p")
    compare.add_argument(
        "--pattern", default="stride",
        choices=["random", "staggered", "stride", "incast"],
    )
    compare.add_argument(
        "--incast-targets", type=int, default=1, metavar="N",
        help="receiver count for --pattern incast",
    )
    compare.add_argument(
        "--schedulers", nargs="+", default=["ecmp", "dard"], choices=sorted(SCHEDULERS)
    )
    compare.add_argument(
        "--arrival", default="poisson",
        choices=["poisson", "empirical", "incast-barrier"],
        help="arrival process (see repro.workloads.scenarios)",
    )
    compare.add_argument(
        "--size-preset", default="websearch", metavar="NAME",
        help="flow-size preset for --arrival empirical "
             "(websearch / datamining / cache)",
    )
    compare.add_argument(
        "--barrier-period", type=float, default=None, metavar="SECONDS",
        help="burst period for --arrival incast-barrier "
             "(default: duration/6, so short runs still see bursts)",
    )
    compare.add_argument(
        "--detector", default="threshold", choices=["threshold", "predictive"],
        help="elephant detection: the paper's age threshold or the "
             "EWMA predictive classifier",
    )
    compare.add_argument(
        "--storm", action="store_true",
        help="overlay a rolling failure storm (fail/restore waves over "
             "random switch cables, seeded from --seed)",
    )
    compare.add_argument("--rate", type=float, default=0.06, help="flows/s per host")
    compare.add_argument("--duration", type=float, default=90.0)
    compare.add_argument("--size-mb", type=float, default=128.0)
    compare.add_argument("--bandwidth-mbps", type=float, default=100.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--paired",
        action="store_true",
        help="also report per-flow paired statistics against the first scheduler",
    )
    return parser


def _cmd_list() -> int:
    rows = [
        {"experiment": name, "what": (fn.__doc__ or "").strip().splitlines()[0]}
        for name, fn in sorted(EXPERIMENTS.items())
    ]
    print(render_table(rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {"seed": args.seed}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    # Wall time is display-only; the experiment itself is seed-driven.
    started = time.time()  # dardlint: disable=DET002
    output = run_experiment(args.experiment, **kwargs)
    print(output.render())
    print(f"\n(ran in {time.time() - started:.1f}s wall time)")  # dardlint: disable=DET002
    if args.csv:
        from repro.analysis import rows_to_csv

        rows_to_csv(output.rows, args.csv)
        print(f"rows written to {args.csv}")
    if args.json:
        from repro.analysis import results_to_json

        results_to_json(output, args.json)
        print(f"output written to {args.json}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_topology
    from repro.topology import build_topology

    params = {"link_bandwidth_bps": args.bandwidth_mbps * MBPS}
    if args.topology == "fattree":
        params["p"] = args.pods
    elif args.topology == "clos":
        params["d_i"] = args.d
        params["d_a"] = args.d
    topo = build_topology(args.topology, **params)
    print(repr(topo))
    print(analyze_topology(topo).render())
    return 0


def _cmd_run_config(args: argparse.Namespace) -> int:
    from repro.experiments import load_config
    from repro.experiments.metrics import summarize_fct, summarize_path_switches

    config = load_config(args.config)
    result = run_scenario(config)
    print(f"scheduler={config.scheduler} topology={config.topology} "
          f"pattern={config.pattern} seed={config.seed}")
    print(f"  flows : {len(result.records)} of {result.flows_generated} generated")
    print(f"  FCT   : {summarize_fct(result.fcts)}")
    print(f"  paths : {summarize_path_switches(result.path_switches)}")
    print(f"  ctrl  : {result.control_bytes / 1e3:.1f} KB "
          f"({result.control_bytes_per_second:.0f} B/s)")
    if args.records_csv:
        from repro.analysis import records_to_csv

        n = records_to_csv(result.records, args.records_csv)
        print(f"  wrote {n} records to {args.records_csv}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.addressing import HierarchicalAddressing, PathCodec
    from repro.switches import SwitchFabric, verify_fabric
    from repro.topology import build_topology

    params = {}
    if args.topology == "fattree":
        params["p"] = args.pods
    elif args.topology == "clos":
        params["d_i"] = args.d
        params["d_a"] = args.d
    topo = build_topology(args.topology, **params)
    addressing = HierarchicalAddressing(topo)
    fabric = SwitchFabric(addressing)
    report = verify_fabric(fabric, PathCodec(addressing), max_pairs=args.max_pairs)
    print(repr(topo))
    print(report.render())
    return 0 if report.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    topology_params = {"link_bandwidth_bps": args.bandwidth_mbps * MBPS}
    if args.topology == "fattree":
        topology_params["p"] = args.pods
    pattern_params = {}
    if args.pattern == "incast":
        pattern_params = {"targets": args.incast_targets}
    arrival_params = {}
    if args.arrival == "empirical":
        arrival_params = {"size_preset": args.size_preset}
    elif args.arrival == "incast-barrier":
        # The process default (1/rate) can exceed a short --duration and
        # fire zero bursts; tie the default to the run length instead.
        period = args.barrier_period
        if period is None:
            period = max(0.5, args.duration / 6)
        arrival_params = {"period_s": period}
    network_params = {}
    if args.detector != "threshold":
        network_params = {"elephant_detector": args.detector}
    link_events = ()
    if args.storm:
        from repro.common.rng import RngStreams
        from repro.topology import build_topology
        from repro.workloads import FailureStormScenario

        storm = FailureStormScenario(
            start_s=max(1.0, args.duration / 6),
            wave_interval_s=max(1.0, args.duration / 10),
            waves=3,
            cables_per_wave=1,
            outage_s=max(0.5, args.duration / 12),
        )
        link_events = storm.link_events(
            build_topology(args.topology, **topology_params),
            RngStreams(args.seed).stream("storm"),
        )
    rows = []
    results = []
    baseline = None
    for scheduler in args.schedulers:
        result = run_scenario(
            ScenarioConfig(
                topology=args.topology,
                topology_params=topology_params,
                pattern=args.pattern,
                pattern_params=pattern_params,
                scheduler=scheduler,
                arrival_rate_per_host=args.rate,
                duration_s=args.duration,
                flow_size_bytes=args.size_mb * MB,
                seed=args.seed,
                network_params=network_params,
                arrival=args.arrival,
                arrival_params=arrival_params,
                link_events=link_events,
            )
        )
        results.append((scheduler, result))
        if baseline is None:
            baseline = result.mean_fct
        rows.append(
            {
                "scheduler": scheduler,
                "flows": len(result.records),
                "mean_fct_s": result.mean_fct,
                "vs_first": improvement(baseline, result.mean_fct),
                "control_kb": result.control_bytes / 1e3,
            }
        )
    print(render_table(rows))
    if args.paired and len(results) > 1:
        from repro.experiments import paired_comparison

        first_name, first = results[0]
        print(f"\npaired per-flow statistics (vs {first_name}):")
        for name, result in results[1:]:
            comparison = paired_comparison(first, result)
            print(f"  {name:14s} {comparison.summary()}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.common.errors import ReproError
    from repro.validation import (
        DEFAULT_GOLDEN_PATH,
        allocator_equivalence_suite,
        compare_goldens,
        compare_goldens_incremental,
        compare_goldens_settle_reference,
        controlplane_equivalence_suite,
        parallel_equivalence_suite,
        run_fluid_vs_packet,
        run_fuzz,
        settle_equivalence_suite,
        store_goldens,
    )

    failed = False

    if not args.skip_oracles:
        print(f"oracle: allocator equivalence on {args.oracle_cases} random instances ...")
        try:
            allocator_equivalence_suite(cases=args.oracle_cases)
            print("oracle: allocator equivalence OK")
        except ReproError as error:
            failed = True
            print(f"oracle: allocator equivalence FAILED\n  {error}")

        print("oracle: control-plane batched vs scalar equivalence ...")
        try:
            for row in controlplane_equivalence_suite():
                print(
                    f"  {row['pattern']:14s} flows={row['flows']} "
                    f"shifts={row['shifts']} (journal + FCTs identical)"
                )
            print("oracle: control-plane equivalence OK")
        except ReproError as error:
            failed = True
            print(f"oracle: control-plane equivalence FAILED\n  {error}")

        print("oracle: columnar flow-store vs scalar settle equivalence ...")
        try:
            for row in settle_equivalence_suite():
                print(
                    f"  {row['scheduler']:8s} {row['pattern']:14s} "
                    f"flows={row['flows']} (records bit-identical)"
                )
            print("oracle: settle equivalence OK")
        except ReproError as error:
            failed = True
            print(f"oracle: settle equivalence FAILED\n  {error}")

        print("oracle: parallel backend vs serial equivalence ...")
        try:
            for row in parallel_equivalence_suite():
                print(
                    f"  {row['backend']:9s} x{row['workers']} "
                    f"{row['pattern']:14s} flows={row['flows']} "
                    f"shifts={row['shifts']} (merge deterministic)"
                )
            print("oracle: parallel equivalence OK")
        except ReproError as error:
            failed = True
            print(f"oracle: parallel equivalence FAILED\n  {error}")

        print("oracle: fluid vs packet FCT agreement ...")
        try:
            rows = run_fluid_vs_packet()
            for row in rows:
                print(
                    f"  {row['scenario']:14s} fluid={row['fluid_fct_s']:.3f}s "
                    f"packet={row['packet_fct_s']:.3f}s ratio={row['ratio']:.3f}"
                )
            from repro.validation import FCT_AGREEMENT_BAND

            low, high = FCT_AGREEMENT_BAND
            print(f"oracle: fluid vs packet OK (band {low:.2f}-{high:.2f}x)")
        except ReproError as error:
            failed = True
            print(f"oracle: fluid vs packet FAILED\n  {error}")

    golden_path = args.golden_path or DEFAULT_GOLDEN_PATH
    if args.golden == "update":
        store_goldens(golden_path, progress=print)
        print(f"golden: wrote {golden_path}")
    elif args.golden == "compare":
        mismatches = compare_goldens(golden_path, progress=print)
        if mismatches:
            failed = True
            print(f"golden: {len(mismatches)} mismatch(es) against {golden_path}:")
            for line in mismatches:
                print(f"  {line}")
        else:
            print(f"golden: matches {golden_path}")
    if args.golden in ("compare", "update"):
        # The incremental reallocator must reproduce the full-mode goldens
        # bit-for-bit (convergence round counts excepted) — checked after
        # both compare and update so a rewritten golden is validated too.
        mismatches = compare_goldens_incremental(golden_path, progress=print)
        if mismatches:
            failed = True
            print(f"golden[incremental]: {len(mismatches)} mismatch(es) "
                  f"against {golden_path}:")
            for line in mismatches:
                print(f"  {line}")
        else:
            print(f"golden[incremental]: matches {golden_path}")
        # The scalar settle reference must reproduce the store-mode goldens
        # bit-for-bit — no exemptions; the settle path changes no counters.
        mismatches = compare_goldens_settle_reference(golden_path, progress=print)
        if mismatches:
            failed = True
            print(f"golden[settle-reference]: {len(mismatches)} mismatch(es) "
                  f"against {golden_path}:")
            for line in mismatches:
                print(f"  {line}")
        else:
            print(f"golden[settle-reference]: matches {golden_path}")

    if args.fuzz:
        report = run_fuzz(
            seeds=args.seeds,
            budget_s=args.budget,
            start_seed=args.start_seed,
            inject_bug=args.inject_bug,
            progress=print,
            sanitize=args.sanitize,
            force_backend=args.fuzz_backend,
        )
        print(report.render())
        if args.inject_bug:
            # Self-test inverts the verdict: the injected bug MUST be caught.
            if report.ok:
                failed = True
                print("inject-bug: FAILED — the oracles missed the injected bug")
            else:
                print("inject-bug: OK — injected bug caught "
                      f"in {len(report.failures)}/{report.cases} case(s)")
        elif not report.ok:
            failed = True

    print("validate: FAILED" if failed else "validate: OK")
    return 1 if failed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.lint import (
        all_rules,
        load_config,
        render_json,
        render_text,
        run_lint_result,
    )

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) or "*"
            print(f"{rule.code}  {rule.name:26s} [{scope}]  {rule.description}")
        return 0
    config = load_config()
    if args.allow_unused_suppressions:
        config.allow_unused_suppressions = True
    result = run_lint_result(args.paths, config)
    renderer = render_json if args.format == "json" else render_text
    report = renderer(result.findings, result.files_scanned, result.files_skipped)
    print(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
    if args.parallel_safety_report:
        from repro.lint.callgraph import OwnershipAnalysis, parallel_safety_document

        analysis = result.program.cache.get("ownership")
        if not isinstance(analysis, OwnershipAnalysis):
            analysis = OwnershipAnalysis(result.program.contexts)
        document = parallel_safety_document(analysis)
        with open(args.parallel_safety_report, "w") as handle:
            _json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"parallel-safety: {len(document['proven_pure'])} of "
            f"{len(document['functions'])} closure function(s) proven pure "
            f"-> {args.parallel_safety_report}"
        )
    return 1 if result.findings else 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "run-config":
        return _cmd_run_config(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return 2  # pragma: no cover - argparse enforces choices


def _run_profiled(args: argparse.Namespace, pstats_path: str) -> int:
    """Run a subcommand under cProfile; dump stats and print a summary."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = _dispatch(args)
    finally:
        profiler.disable()
        profiler.dump_stats(pstats_path)
        print(f"\nprofile: pstats written to {pstats_path}")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    profile_path = getattr(args, "profile", None)
    if profile_path:
        return _run_profiled(args, profile_path)
    return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
