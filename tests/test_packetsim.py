"""Tests for the packet-level micro-simulator and its TCP implementation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.simulator import EventEngine, FlowComponent, Network
from repro.packetsim import PacketSimulation, TcpParams
from repro.packetsim.links import PacketLink
from repro.packetsim.tcp import TcpReceiver, TcpSender
from repro.topology import FatTree


@pytest.fixture
def topo():
    return FatTree(p=4, link_bandwidth_bps=100 * MBPS)


class TestPacketLink:
    def test_serialization_and_propagation(self):
        engine = EventEngine()
        link = PacketLink(engine, capacity_bps=100 * MBPS, delay_s=0.001)
        arrivals = []
        link.transmit(1500, lambda: arrivals.append(engine.now))
        engine.run_until_idle()
        # 1500 B at 100 Mbps = 120 us serialization + 1 ms propagation.
        assert arrivals[0] == pytest.approx(0.00112)

    def test_fifo_queueing(self):
        engine = EventEngine()
        link = PacketLink(engine, capacity_bps=100 * MBPS, delay_s=0.0)
        arrivals = []
        for _ in range(3):
            link.transmit(1500, lambda: arrivals.append(engine.now))
        engine.run_until_idle()
        # Back-to-back serialization: 120, 240, 360 us.
        assert arrivals == pytest.approx([0.00012, 0.00024, 0.00036])

    def test_tail_drop(self):
        engine = EventEngine()
        link = PacketLink(engine, capacity_bps=100 * MBPS, delay_s=0.0, queue_packets=2)
        accepted = [link.transmit(1500, lambda: None) for _ in range(4)]
        assert accepted == [True, True, False, False]
        assert link.drops == 2

    def test_validation(self):
        engine = EventEngine()
        with pytest.raises(ConfigurationError):
            PacketLink(engine, capacity_bps=0.0, delay_s=0.0)
        with pytest.raises(ConfigurationError):
            PacketLink(engine, capacity_bps=1.0, delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            PacketLink(engine, capacity_bps=1.0, delay_s=0.0, queue_packets=0)


class TestTcpUnits:
    def test_receiver_cumulative_ack(self):
        receiver = TcpReceiver(5)
        assert receiver.on_segment(0) == 1
        assert receiver.on_segment(2) == 1  # hole at 1
        assert receiver.on_segment(1) == 3  # hole filled, jumps past 2
        assert not receiver.complete
        receiver.on_segment(3)
        assert receiver.on_segment(4) == 5
        assert receiver.complete

    def test_stale_duplicates_ignored(self):
        receiver = TcpReceiver(3)
        receiver.on_segment(0)
        assert receiver.on_segment(0) == 1  # duplicate does not regress

    def test_sender_slow_start_growth(self):
        engine = EventEngine()
        sent = []
        sender = TcpSender(engine, 100, sent.append, TcpParams(initial_cwnd=2.0))
        sender.start()
        assert len(sent) == 2  # initial window
        sender.on_ack(1)
        sender.on_ack(2)
        # Two new ACKs in slow start: cwnd 2 -> 4; window allows up to seq 6.
        assert len(sent) == 6

    def test_fast_retransmit_on_three_dupacks(self):
        engine = EventEngine()
        sent = []
        sender = TcpSender(engine, 100, sent.append, TcpParams(initial_cwnd=8.0))
        sender.start()
        cwnd_before = sender.cwnd
        for _ in range(3):
            sender.on_ack(0)
        assert sender.retransmissions == 1
        assert sent.count(0) == 2  # original + fast retransmit
        assert sender.cwnd < cwnd_before

    def test_sender_needs_segments(self):
        with pytest.raises(ConfigurationError):
            TcpSender(EventEngine(), 0, lambda s: None)


class TestPacketSimulation:
    def test_single_flow_near_line_rate(self, topo):
        sim = PacketSimulation(topo)
        sim.add_flow("h_0_0_0", "h_1_0_0", 2 * MB)
        result = sim.run()[0]
        assert result.goodput_bps > 90 * MBPS
        assert result.retransmissions == 0
        assert sim.total_drops == 0

    def test_two_flows_share_bottleneck(self, topo):
        sim = PacketSimulation(topo)
        sim.add_flow("h_0_0_0", "h_1_0_0", 2 * MB, path_index=0)
        sim.add_flow("h_0_0_0", "h_2_0_0", 2 * MB, path_index=2)
        results = sim.run()
        total_bits = sum(r.size_bytes * 8 for r in results)
        makespan = max(r.fct_s for r in results)
        # Aggregate goodput through the shared 100 Mbps access link.
        assert total_bits / makespan > 70 * MBPS

    def test_striping_causes_reordering_retx(self, topo):
        """The Fig. 13/14 mechanism, packet by packet: a flow striped over
        paths with different queueing delays retransmits; a single-path
        flow in the same conditions does not."""
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        background = topo.host_path("h_0_0_1", "h_1_0_1", paths[0])

        striped_sim = PacketSimulation(topo, seed=3)
        striped_sim.add_flow("h_0_0_1", "h_1_0_1", 4 * MB, paths=[background])
        striped_sim.add_flow(
            "h_0_0_0", "h_1_0_0", 2 * MB,
            paths=[topo.host_path("h_0_0_0", "h_1_0_0", p) for p in paths],
            weights=[0.25] * 4,
        )
        striped = striped_sim.run()[1]
        assert striped.retransmissions > 0

        # Control: a single-path flow on a link-disjoint idle path (via the
        # other aggregation switch) sees neither reordering nor drops.
        single_sim = PacketSimulation(topo, seed=3)
        single_sim.add_flow("h_0_0_1", "h_1_0_1", 4 * MB, paths=[background])
        single_sim.add_flow("h_0_0_0", "h_1_0_0", 2 * MB, path_index=2)
        single = single_sim.run()[1]
        assert single.retransmissions == 0

    def test_staggered_start(self, topo):
        sim = PacketSimulation(topo)
        sim.add_flow("h_0_0_0", "h_1_0_0", 1 * MB, start_time_s=0.5)
        result = sim.run()[0]
        assert result.fct_s < 0.5  # FCT excludes the waiting time

    def test_validation_errors(self, topo):
        sim = PacketSimulation(topo)
        with pytest.raises(ConfigurationError):
            sim.run()  # no flows
        with pytest.raises(ConfigurationError):
            sim.add_flow("h_0_0_0", "h_1_0_0", 0.0)


class TestFluidAgreement:
    """The validation the whole fluid substitution rests on."""

    @pytest.mark.parametrize("scenario", ["single", "shared_access", "cross_core"])
    def test_fct_tracks_fluid_model(self, topo, scenario):
        placements = {
            "single": [("h_0_0_0", "h_1_0_0", 0)],
            "shared_access": [("h_0_0_0", "h_1_0_0", 0), ("h_0_0_0", "h_2_0_0", 2)],
            "cross_core": [("h_0_0_0", "h_1_0_0", 0), ("h_0_1_0", "h_1_1_0", 0)],
        }[scenario]
        size = 4 * MB

        packet_sim = PacketSimulation(topo)
        for src, dst, index in placements:
            packet_sim.add_flow(src, dst, size, path_index=index)
        packet_mean = sum(r.fct_s for r in packet_sim.run()) / len(placements)

        fluid_net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        ftopo = fluid_net.topology
        for src, dst, index in placements:
            path = ftopo.equal_cost_paths(ftopo.tor_of(src), ftopo.tor_of(dst))[index]
            fluid_net.start_flow(
                src, dst, size, [FlowComponent(ftopo.host_path(src, dst, path))]
            )
        fluid_net.engine.run_until_idle()
        fluid_mean = sum(r.fct for r in fluid_net.records) / len(placements)

        assert packet_mean == pytest.approx(fluid_mean, rel=0.35), scenario
