"""API002 good fixture: scheduling through the EventEngine API."""


def schedule(engine, when, event):
    """The engine assigns the deterministic tie-break sequence number."""
    engine.schedule_at(when, event)
