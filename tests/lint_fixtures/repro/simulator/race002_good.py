"""RACE002 good fixture: dirty state consumed via the merge point."""


def drain_dirty_components(components):
    """The sanctioned path: ``consume_dirty`` pops the dirty-root set."""
    touched, flow_ids = components.consume_dirty()
    return touched, list(flow_ids)
