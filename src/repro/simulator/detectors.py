"""Pluggable elephant detection: age threshold vs EWMA prediction.

DARD's built-in detector is the paper's: a flow becomes an elephant once
it has lived ``elephant_age_s`` seconds (10 s, §3.3). That is the
weakest way to find the flows worth moving — under incast bursts and
heavy-tailed empirical sizes, a true elephant carries traffic for a full
threshold period before the control plane may touch it.

:class:`PredictiveElephantDetector` implements the EWMA-over-first-RTTs
classifier family of Alawadi et al. ("Methods for Predicting Behavior of
Elephant Flows in Data Center Networks"): sample a flow's delivered rate
over its first few RTT-scale intervals, keep an exponentially weighted
moving average, and promote as soon as the *projected lifetime* —
current age plus remaining bytes at the EWMA rate — crosses the
threshold age. A flow sampled at zero rate (stalled behind a failure or
a saturated cable) projects an infinite lifetime and is promoted
immediately, which is exactly when adaptive routing should take over.

The detector never *misses* relative to the threshold baseline: an
age-threshold fallback timer fires at ``elephant_age_s`` for every flow
the predictor left undecided, so the promoted set is a superset reached
earlier. Every event it schedules is a deterministic function of the
flow's start time, preserving the simulator's seed-purity contract.

Wired through ``Network(elephant_detector="predictive")``; the default
``"threshold"`` keeps the paper's exact historical event sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.flows import Flow
    from repro.simulator.network import Network

__all__ = ["PredictiveElephantDetector"]


class _TrackState:
    """Per-flow sampling state (delivered-byte baseline + EWMA)."""

    __slots__ = ("sent_bytes", "ewma_bps", "samples")

    def __init__(self) -> None:
        self.sent_bytes = 0.0
        self.ewma_bps = 0.0
        self.samples = 0


class PredictiveElephantDetector:
    """EWMA-over-first-RTTs elephant classifier (Alawadi et al.).

    Parameters:

    * ``sample_interval_s`` — spacing of the rate probes (RTT scale;
      0.25 s default against the simulator's millisecond link delays);
    * ``max_samples`` — probes before the predictor gives up on an early
      call and leaves the flow to the age fallback;
    * ``min_samples`` — probes required before a promotion may fire
      (guards against classifying on one cold-start interval);
    * ``ewma_alpha`` — weight of the newest observation;
    * ``promote_age_s`` — the projected-lifetime threshold *and* the
      fallback promotion age (defaults to the network's
      ``elephant_age_s``, keeping the elephant definition unchanged —
      only detection latency moves).
    """

    def __init__(
        self,
        sample_interval_s: float = 0.25,
        max_samples: int = 8,
        min_samples: int = 2,
        ewma_alpha: float = 0.5,
        promote_age_s: float | None = None,
    ) -> None:
        if sample_interval_s <= 0:
            raise SimulationError(
                f"sample interval must be positive, got {sample_interval_s}"
            )
        if min_samples < 1 or max_samples < min_samples:
            raise SimulationError(
                f"need max_samples >= min_samples >= 1, got "
                f"{max_samples} / {min_samples}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise SimulationError(f"ewma alpha must be in (0, 1], got {ewma_alpha}")
        if promote_age_s is not None and promote_age_s <= 0:
            raise SimulationError(f"promote age must be positive, got {promote_age_s}")
        self.sample_interval_s = float(sample_interval_s)
        self.max_samples = int(max_samples)
        self.min_samples = int(min_samples)
        self.ewma_alpha = float(ewma_alpha)
        self.promote_age_s: float | None = (
            None if promote_age_s is None else float(promote_age_s)
        )
        self.network: "Network" | None = None
        self._tracked: Dict[int, _TrackState] = {}
        self._stat_flows_seen = 0
        self._stat_samples = 0
        self._stat_early = 0
        self._stat_fallback = 0
        self._detection_age_sum_s = 0.0

    # -- wiring -----------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Bind to a network; resolves the default promotion age."""
        self.network = network
        if self.promote_age_s is None:
            self.promote_age_s = float(network.elephant_age_s)

    def _bound_network(self) -> "Network":
        network = self.network
        if network is None:
            raise SimulationError("detector used before attach()")
        return network

    def _promote_age(self) -> float:
        age = self.promote_age_s
        if age is None:
            raise SimulationError("detector used before attach()")
        return age

    def on_flow_started(self, flow: "Flow") -> None:
        """Arm sampling and the age fallback for a freshly started flow."""
        network = self._bound_network()
        self._stat_flows_seen += 1
        self._tracked[flow.flow_id] = _TrackState()
        network.engine.schedule_in(
            self.sample_interval_s, lambda fid=flow.flow_id: self._sample(fid)
        )
        network.engine.schedule_in(
            self._promote_age(), lambda fid=flow.flow_id: self._age_fallback(fid)
        )

    # -- sampling ---------------------------------------------------------------

    def _sample(self, flow_id: int) -> None:
        network = self._bound_network()
        flow = network.flows.get(flow_id)
        state = self._tracked.get(flow_id)
        if flow is None or state is None or flow.is_elephant:
            self._tracked.pop(flow_id, None)
            return
        # Settle byte counters up to now so the delivered-byte delta is
        # exact; settle is idempotent and itself event-deterministic.
        network._settle()
        sent = flow.size_bytes + flow.retransmitted_bytes - flow.remaining_bytes
        observed_bps = max(0.0, sent - state.sent_bytes) * 8.0 / self.sample_interval_s
        state.sent_bytes = sent
        if state.samples == 0:
            state.ewma_bps = observed_bps
        else:
            state.ewma_bps = (
                self.ewma_alpha * observed_bps
                + (1.0 - self.ewma_alpha) * state.ewma_bps
            )
        state.samples += 1
        self._stat_samples += 1
        if (
            state.samples >= self.min_samples
            and self._projected_lifetime_s(flow, state.ewma_bps)
            >= self._promote_age()
        ):
            self._promote(flow, early=True)
            return
        if state.samples < self.max_samples:
            network.engine.schedule_in(
                self.sample_interval_s, lambda fid=flow_id: self._sample(fid)
            )
        else:
            # Undecided within the sampling window: the age fallback
            # scheduled at flow start still guarantees threshold parity.
            del self._tracked[flow_id]

    def _projected_lifetime_s(self, flow: "Flow", ewma_bps: float) -> float:
        age = self._bound_network().now - flow.start_time
        if ewma_bps <= 0.0:
            return float("inf")
        return age + flow.remaining_bytes * 8.0 / ewma_bps

    def _age_fallback(self, flow_id: int) -> None:
        self._tracked.pop(flow_id, None)
        flow = self._bound_network().flows.get(flow_id)
        if flow is None or flow.is_elephant:
            return
        self._promote(flow, early=False)

    def _promote(self, flow: "Flow", early: bool) -> None:
        network = self._bound_network()
        self._tracked.pop(flow.flow_id, None)
        if early:
            self._stat_early += 1
        else:
            self._stat_fallback += 1
        self._detection_age_sum_s += network.now - flow.start_time
        network._promote_elephant(flow.flow_id)

    # -- telemetry ---------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Detector telemetry, merged into ``Network.perf_stats()``.

        ``det_mean_detection_age_s`` is the mean flow age at promotion
        across both paths — the headline the ablation benchmark gates on
        (threshold detection pins it at exactly ``elephant_age_s``).
        """
        promoted = self._stat_early + self._stat_fallback
        return {
            "det_predictive": 1.0,
            "det_flows_seen": float(self._stat_flows_seen),
            "det_samples": float(self._stat_samples),
            "det_early_promotions": float(self._stat_early),
            "det_fallback_promotions": float(self._stat_fallback),
            "det_mean_detection_age_s": (
                self._detection_age_sum_s / promoted if promoted else 0.0
            ),
        }
