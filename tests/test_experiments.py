"""Tests for metrics, report rendering, the scenario runner, and the CLI."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.cli import main as cli_main
from repro.experiments import (
    ScenarioConfig,
    cdf_points,
    improvement,
    make_scheduler,
    mean,
    percentile,
    run_scenario,
    summarize_fct,
    summarize_path_switches,
)
from repro.experiments.report import render_cdf, render_table


class TestMetrics:
    def test_mean_and_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert mean(values) == 2.5
        assert percentile(values, 50) == 2.5
        assert math.isnan(mean([]))
        assert math.isnan(percentile([], 90))

    def test_cdf_points_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    def test_improvement_formula(self):
        # Paper eq. 1: (avg_ecmp - avg_dard) / avg_ecmp.
        assert improvement(10.0, 8.0) == pytest.approx(0.2)
        assert improvement(10.0, 12.0) == pytest.approx(-0.2)
        with pytest.raises(ValueError):
            improvement(0.0, 1.0)

    def test_fct_summary(self):
        summary = summarize_fct([1.0, 2.0, 3.0, 10.0])
        assert summary.count == 4
        assert summary.mean_s == 4.0
        assert summary.max_s == 10.0
        assert "mean" in str(summary)

    def test_path_switch_summary(self):
        summary = summarize_path_switches([0, 0, 1, 2, 3])
        assert summary.fraction_zero == pytest.approx(0.4)
        assert summary.max == 3
        empty = summarize_path_switches([])
        assert empty.count == 0


class TestReport:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_render_table_empty(self):
        assert render_table([]) == "(no rows)"

    def test_render_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        assert "b" not in render_table(rows, columns=["a"])

    def test_render_cdf_quantiles(self):
        series = {"x": [(1.0, 0.5), (2.0, 1.0)]}
        text = render_cdf(series, unit="s")
        assert "x" in text and "(values in s)" in text

    def test_render_cdf_empty_series(self):
        text = render_cdf({"x": []})
        assert "-" in text


class TestRunner:
    BASE = dict(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        arrival_rate_per_host=0.05,
        duration_s=40.0,
        flow_size_bytes=64 * MB,
    )

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("magic")

    def test_scheduler_kwargs_forwarded(self):
        scheduler = make_scheduler("dard", delta_bps=5.0)
        assert scheduler.delta_bps == 5.0

    def test_identical_workload_across_schedulers(self):
        """The heart of pairwise comparability: the same seed produces the
        same flows regardless of scheduler."""
        a = run_scenario(ScenarioConfig(scheduler="ecmp", seed=9, **self.BASE))
        b = run_scenario(ScenarioConfig(scheduler="dard", seed=9, **self.BASE))
        assert [(r.src, r.dst, r.size_bytes) for r in sorted(a.records, key=lambda r: r.flow_id)] == [
            (r.src, r.dst, r.size_bytes) for r in sorted(b.records, key=lambda r: r.flow_id)
        ]

    def test_same_seed_reproducible(self):
        a = run_scenario(ScenarioConfig(scheduler="dard", seed=4, **self.BASE))
        b = run_scenario(ScenarioConfig(scheduler="dard", seed=4, **self.BASE))
        assert a.mean_fct == b.mean_fct
        assert a.path_switches == b.path_switches

    def test_different_seeds_differ(self):
        a = run_scenario(ScenarioConfig(scheduler="ecmp", seed=1, **self.BASE))
        b = run_scenario(ScenarioConfig(scheduler="ecmp", seed=2, **self.BASE))
        assert a.fcts != b.fcts

    def test_all_admitted_flows_complete(self):
        result = run_scenario(ScenarioConfig(scheduler="ecmp", seed=0, **self.BASE))
        assert len(result.records) == result.flows_generated
        assert result.sim_time_s >= self.BASE["duration_s"]

    def test_network_params_passthrough(self):
        result = run_scenario(
            ScenarioConfig(
                scheduler="dard", seed=0,
                network_params={"elephant_age_s": 3.0}, **self.BASE,
            )
        )
        assert result.peak_elephants > 0


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "tab6" in out

    def test_compare(self, capsys):
        code = cli_main([
            "compare", "--pods", "4", "--rate", "0.05", "--duration", "30",
            "--size-mb", "64", "--schedulers", "ecmp", "dard",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ecmp" in out and "dard" in out

    def test_run_small_experiment(self, capsys):
        code = cli_main(["run", "ablation_sync", "--duration", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "randomized" in out and "synchronized" in out
