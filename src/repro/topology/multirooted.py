"""Generic multi-rooted tree structure shared by all three topology families.

A multi-rooted tree has three switch layers — ToR (edge/access),
aggregation, and core/intermediate — plus hosts. DARD's addressing treats
the topology as a forest: one tree per core, where each tree contains every
root-to-ToR *downhill chain* ``(core, agg, tor)`` that exists in the wiring.
Hosts receive one address per chain ending at their ToR, and an end-to-end
path is the concatenation of an uphill chain (reversed) and a downhill chain
through the same core.

This module provides:

* layer/pod metadata helpers,
* :meth:`MultiRootedTopology.downhill_chains` — the chain inventory the
  prefix allocator walks, and
* :meth:`MultiRootedTopology.equal_cost_paths` — every loop-free up-down
  switch path between two ToRs (the path set DARD monitors).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import TopologyError
from repro.topology.graph import NodeKind, Topology

#: A switch-level path from source ToR to destination ToR, inclusive.
SwitchPath = Tuple[str, ...]

#: A downhill chain (core, agg, tor) along which prefixes are allocated.
Chain = Tuple[str, str, str]


class MultiRootedTopology(Topology):
    """Base class for fat-tree, Clos, and 3-tier topologies."""

    def __init__(self) -> None:
        super().__init__()
        self._paths_cache: Dict[Tuple[str, str], List[SwitchPath]] = {}
        self._tor_cache: Dict[str, str] = {}
        # Adjacency is immutable once a topology is built (failures are
        # modeled in the Network, never by graph surgery), so layer-filtered
        # neighbor lists can be memoized. The control plane asks for them
        # per scheduling round per daemon — a hot path at scale.
        self._up_cache: Dict[str, List[str]] = {}
        self._down_cache: Dict[str, List[str]] = {}

    # -- layer helpers -------------------------------------------------------

    def cores(self) -> List[str]:
        """All core/intermediate switch names."""
        return self.nodes_of_kind(NodeKind.CORE)

    def aggs(self) -> List[str]:
        """All aggregation switch names."""
        return self.nodes_of_kind(NodeKind.AGG)

    def tors(self) -> List[str]:
        """All ToR/access switch names."""
        return self.nodes_of_kind(NodeKind.TOR)

    def up_neighbors(self, name: str) -> List[str]:
        """Neighbors one layer above ``name`` (memoized; returns a copy)."""
        cached = self._up_cache.get(name)
        if cached is None:
            layer = self.node(name).kind.layer
            cached = [
                n for n in self.neighbors(name) if self.node(n).kind.layer == layer + 1
            ]
            self._up_cache[name] = cached
        return list(cached)

    def down_neighbors(self, name: str) -> List[str]:
        """Neighbors one layer below ``name`` (memoized; returns a copy)."""
        cached = self._down_cache.get(name)
        if cached is None:
            layer = self.node(name).kind.layer
            cached = [
                n for n in self.neighbors(name) if self.node(n).kind.layer == layer - 1
            ]
            self._down_cache[name] = cached
        return list(cached)

    def tor_of(self, host: str) -> str:
        """The ToR switch a host hangs off (hosts are single-homed)."""
        cached = self._tor_cache.get(host)
        if cached is not None:
            return cached
        node = self.node(host)
        if node.kind is not NodeKind.HOST:
            raise TopologyError(f"{host!r} is not a host")
        ups = self.up_neighbors(host)
        if len(ups) != 1:
            raise TopologyError(f"host {host!r} has {len(ups)} ToR uplinks, expected 1")
        self._tor_cache[host] = ups[0]
        return ups[0]

    def hosts_of_tor(self, tor: str) -> List[str]:
        """The hosts hanging off one ToR switch."""
        if self.node(tor).kind is not NodeKind.TOR:
            raise TopologyError(f"{tor!r} is not a ToR switch")
        return self.down_neighbors(tor)

    def pod_of(self, name: str) -> Optional[int]:
        """The node's pod index (None for cores)."""
        return self.node(name).pod

    # -- chains (addressing substrate) ---------------------------------------

    def downhill_chains(self) -> Iterator[Chain]:
        """Every (core, agg, tor) downhill chain, in deterministic order.

        One chain exists per way of descending from a core to a ToR. In a
        fat-tree each core reaches each ToR through exactly one aggregation
        switch; in Clos/3-tier a ToR may be dual-homed, producing one chain
        per parent aggregation switch per core.
        """
        for core in sorted(self.cores()):
            for agg in sorted(self.down_neighbors(core)):
                for tor in sorted(self.down_neighbors(agg)):
                    yield (core, agg, tor)

    def chains_to_tor(self, tor: str) -> List[Chain]:
        """All downhill chains terminating at ``tor``."""
        chains = []
        for agg in sorted(self.up_neighbors(tor)):
            for core in sorted(self.up_neighbors(agg)):
                chains.append((core, agg, tor))
        return chains

    # -- equal-cost path enumeration -------------------------------------------

    def equal_cost_paths(self, src_tor: str, dst_tor: str) -> List[SwitchPath]:
        """All loop-free up-down switch paths between two ToRs.

        * same ToR: the single trivial path ``(tor,)``;
        * same pod (a shared aggregation parent exists): one 3-hop path per
          common aggregation switch;
        * otherwise: one 5-hop path per (up-agg, core, down-agg) combination
          wired end to end.

        Results are cached; topologies are immutable once built.
        """
        for name in (src_tor, dst_tor):
            if self.node(name).kind is not NodeKind.TOR:
                raise TopologyError(f"{name!r} is not a ToR switch")
        key = (src_tor, dst_tor)
        if key in self._paths_cache:
            return self._paths_cache[key]
        paths = self._compute_paths(src_tor, dst_tor)
        self._paths_cache[key] = paths
        return paths

    def _compute_paths(self, src_tor: str, dst_tor: str) -> List[SwitchPath]:
        if src_tor == dst_tor:
            return [(src_tor,)]
        src_aggs = sorted(self.up_neighbors(src_tor))
        dst_aggs = set(self.up_neighbors(dst_tor))
        common = [a for a in src_aggs if a in dst_aggs]
        if common:
            return [(src_tor, agg, dst_tor) for agg in common]
        paths: List[SwitchPath] = []
        for agg_up in src_aggs:
            for core in sorted(self.up_neighbors(agg_up)):
                for agg_down in sorted(self.down_neighbors(core)):
                    if agg_down in dst_aggs:
                        paths.append((src_tor, agg_up, core, agg_down, dst_tor))
        if not paths:
            raise TopologyError(f"no up-down path between {src_tor!r} and {dst_tor!r}")
        return paths

    def host_path(self, src_host: str, dst_host: str, switch_path: SwitchPath) -> Tuple[str, ...]:
        """Expand a ToR-to-ToR switch path into the full host-to-host path."""
        if src_host == dst_host:
            raise TopologyError("source and destination host are identical")
        if switch_path[0] != self.tor_of(src_host):
            raise TopologyError(
                f"path starts at {switch_path[0]!r} but {src_host!r} is on {self.tor_of(src_host)!r}"
            )
        if switch_path[-1] != self.tor_of(dst_host):
            raise TopologyError(
                f"path ends at {switch_path[-1]!r} but {dst_host!r} is on {self.tor_of(dst_host)!r}"
            )
        return (src_host,) + tuple(switch_path) + (dst_host,)

    # -- sanity ---------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants every multi-rooted tree must satisfy."""
        if not self.cores():
            raise TopologyError("topology has no core switches")
        if not self.hosts():
            raise TopologyError("topology has no hosts")
        for host in self.hosts():
            self.tor_of(host)  # raises if not single-homed
        for tor in self.tors():
            if not self.up_neighbors(tor):
                raise TopologyError(f"ToR {tor!r} has no aggregation uplink")
        for agg in self.aggs():
            if not self.up_neighbors(agg):
                raise TopologyError(f"aggregation switch {agg!r} has no core uplink")
            if not self.down_neighbors(agg):
                raise TopologyError(f"aggregation switch {agg!r} has no ToR downlink")
        for core in self.cores():
            if not self.down_neighbors(core):
                raise TopologyError(f"core {core!r} has no downlinks")
