"""Regression tests for the network's reallocation telemetry surface."""

import pytest

from repro.common.units import MB, MBPS
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


@pytest.fixture
def topo():
    return FatTree(p=4, link_bandwidth_bps=100 * MBPS)


def _component(topo, src, dst, path_i=0):
    paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
    return FlowComponent(topo.host_path(src, dst, paths[path_i % len(paths)]))


class TestPerfStats:
    def test_counters_match_event_counts(self, topo):
        net = Network(topo)
        pairs = [
            ("h_0_0_0", "h_1_0_0"),
            ("h_0_0_1", "h_2_0_0"),
            ("h_0_1_0", "h_3_0_0"),
            ("h_1_0_1", "h_2_1_0"),
        ]
        flows = [
            net.start_flow(src, dst, 10 * MB, [_component(topo, src, dst)])
            for src, dst in pairs
        ]
        net.engine.run_until(1.0)
        net.reroute_flow(flows[0], [_component(topo, *pairs[0], path_i=1)])
        cable = next(
            (l.u, l.v)
            for l in topo.links()
            if topo.node(l.u).kind.is_switch and topo.node(l.v).kind.is_switch
        )
        net.fail_link(*cable)
        net.restore_link(*cable)
        net.engine.run_until(500.0)  # long enough for everything to finish

        stats = net.perf_stats()
        assert stats["flows_started"] == len(pairs)
        assert stats["flows_completed"] == len(pairs)
        assert stats["reroutes"] == 1
        assert stats["realloc_sync"] == 2  # one fail + one restore
        # Every executed reallocation is either a drained scheduled request
        # or a synchronous fail/restore call; coalesced requests never run.
        assert (
            stats["realloc_calls"]
            == stats["realloc_requests"] - stats["realloc_coalesced"] + stats["realloc_sync"]
        )
        # Starts, the reroute, and per-flow completions each filed a request.
        assert stats["realloc_requests"] >= len(pairs) + 1
        assert stats["realloc_calls"] >= 1
        assert stats["realloc_demands"] >= len(pairs)
        assert stats["filling_iterations"] >= 1
        assert stats["realloc_time_s"] > 0.0
        assert stats["num_links"] == len(net.link_index)

    def test_coalescing_counts_same_instant_requests(self, topo):
        """Several starts at the same instant fold into one reallocation."""
        net = Network(topo)
        for i in range(5):
            src, dst = f"h_0_0_{i % 2}", f"h_1_0_{i % 2}"
            net.start_flow(src, dst, 10 * MB, [_component(topo, src, dst, i)])
        net.engine.run_until(0.0)
        stats = net.perf_stats()
        assert stats["realloc_requests"] == 5
        assert stats["realloc_coalesced"] == 4
        assert stats["realloc_calls"] == 1

    def test_stats_start_at_zero(self, topo):
        net = Network(topo)
        stats = net.perf_stats()
        assert stats["realloc_calls"] == 0
        assert stats["realloc_time_s"] == 0.0
        assert stats["flows_started"] == 0
