"""OWN001 good fixture: shared state resized through the owner's API."""


def resize_band_cache(registry, capacity):
    """``_reserve`` is the owner-side writer that reallocates the caches."""
    registry._reserve(capacity)
