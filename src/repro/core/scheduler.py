"""DARD as a pluggable scheduler.

Wires per-host daemons into the simulator:

* placement uses ECMP hashing ("DARD utilizes ECMP as the default routing
  mechanism", §2.4) — adaptivity only ever concerns elephants;
* the network's elephant promotions and flow completions are dispatched to
  the owning host's daemon (the Elephant Flow Detector's view);
* every daemon independently polls its monitors each ``query_interval_s``
  (1 s) and runs a selfish scheduling round every ``scheduling_interval_s``
  (5 s) **plus a uniform random 1-5 s re-drawn each round** — the paper
  credits exactly this per-host randomization for the absence of
  synchronized path flapping (§4.2). Set ``synchronized=True`` to disable
  the jitter and reproduce the pathological case (ablation bench).

With ``vectorized=True`` (the default) the scheduler owns a fleet-wide
:class:`~repro.core.registry.MonitorRegistry` — monitor polls are answered
from one batched, dirty-tracked cache — and daemons run the vectorized
scheduling round. ``vectorized=False`` preserves the original scalar
control plane (per-monitor numpy calls, tuple-keyed FV) as the reference
implementation for the differential oracle; both modes make bit-identical
decisions (see DESIGN.md "Control-plane batching"). Control-plane wall
time is metered around both loops either way, so the two modes' costs are
directly comparable in ``Network.perf_stats()``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.common.units import MBPS
from repro.scheduling.base import Scheduler, SchedulerContext
from repro.scheduling.messages import MessageSizes
from repro.simulator.flows import Flow, FlowComponent
from repro.baselines.ecmp import five_tuple_hash
from repro.core.daemon import HostDaemon, ShiftRecord
from repro.core.registry import MonitorRegistry

DEFAULT_DELTA_BPS = 10 * MBPS
DEFAULT_QUERY_INTERVAL_S = 1.0
DEFAULT_SCHEDULING_INTERVAL_S = 5.0
DEFAULT_JITTER_RANGE_S = (1.0, 5.0)


class DardScheduler(Scheduler):
    """Distributed Adaptive Routing for Datacenter networks."""

    name = "dard"

    def __init__(
        self,
        delta_bps: float = DEFAULT_DELTA_BPS,
        query_interval_s: float = DEFAULT_QUERY_INTERVAL_S,
        scheduling_interval_s: float = DEFAULT_SCHEDULING_INTERVAL_S,
        jitter_range_s: tuple = DEFAULT_JITTER_RANGE_S,
        synchronized: bool = False,
        message_sizes: MessageSizes = MessageSizes(),
        vectorized: bool = True,
    ) -> None:
        super().__init__()
        self.delta_bps = delta_bps
        self.query_interval_s = query_interval_s
        self.scheduling_interval_s = scheduling_interval_s
        self.jitter_range_s = jitter_range_s
        self.synchronized = synchronized
        self.message_sizes = message_sizes
        self.vectorized = vectorized
        self.daemons: Dict[str, HostDaemon] = {}
        self.registry: Optional[MonitorRegistry] = None
        #: fleet-wide shift journal, in event order (shared by all
        #: daemons); the scalar-vs-batched oracle compares these.
        self.shift_log: List[ShiftRecord] = []
        # Control-plane wall time (telemetry only — simulated time is
        # event-driven and never reads the wall clock).
        self._stat_query_rounds = 0
        self._stat_query_time_s = 0.0
        self._stat_round_time_s = 0.0

    def attach(self, ctx: SchedulerContext) -> None:
        super().attach(ctx)
        if self.vectorized:
            self.registry = MonitorRegistry(ctx.network)
        ctx.network.elephant_listeners.append(self._on_elephant)
        ctx.network.flow_completed_listeners.append(self._on_flow_completed)
        ctx.network.controlplane_stats_providers.append(self.controlplane_stats)

    def _jitter(self) -> float:
        if self.synchronized:
            return 0.0
        low, high = self.jitter_range_s
        return float(self.ctx.rng.uniform(low, high))

    # -- placement: ECMP until an elephant proves otherwise -----------------------

    def choose_components(self, src: str, dst: str) -> List[FlowComponent]:
        paths = self.alive_paths(src, dst)
        sport = int(self.ctx.rng.integers(1024, 65536))
        dport = int(self.ctx.rng.integers(1024, 65536))
        index = five_tuple_hash(src, dst, sport, dport, len(paths))
        return [self.component_for(src, dst, paths[index])]

    # -- detector dispatch ----------------------------------------------------------

    def daemon_for(self, host: str) -> HostDaemon:
        """The host's daemon, created (and its control loops armed) lazily."""
        daemon = self.daemons.get(host)
        if daemon is None:
            daemon = HostDaemon(
                host=host,
                network=self.ctx.network,
                codec=self.ctx.codec,
                ledger=self.ledger,
                delta_bps=self.delta_bps,
                message_sizes=self.message_sizes,
                registry=self.registry,
                vectorized=self.vectorized,
                shift_log=self.shift_log,
            )
            self.daemons[host] = daemon
            # Each host runs its own independent control loops; the
            # scheduling loop re-draws its random jitter every round.
            self.ctx.engine.schedule_every(
                self.query_interval_s, lambda d=daemon: self._timed_query(d)
            )
            self.ctx.engine.schedule_every(
                self.scheduling_interval_s,
                lambda d=daemon: self._timed_round(d),
                jitter=self._jitter,
            )
        return daemon

    def _timed_query(self, daemon: HostDaemon) -> None:
        started = time.perf_counter()  # dardlint: disable=DET002
        daemon.query_monitors()
        self._stat_query_rounds += 1
        self._stat_query_time_s += time.perf_counter() - started  # dardlint: disable=DET002

    def _timed_round(self, daemon: HostDaemon) -> None:
        started = time.perf_counter()  # dardlint: disable=DET002
        daemon.run_scheduling_round()
        self._stat_round_time_s += time.perf_counter() - started  # dardlint: disable=DET002

    def _on_elephant(self, flow: Flow) -> None:
        daemon = self.daemon_for(flow.src)
        daemon.on_elephant(flow)
        # Prime the new monitor immediately so the first scheduling round
        # after detection sees real path states rather than zeros.
        self._timed_query(daemon)

    def _on_flow_completed(self, flow: Flow) -> None:
        daemon = self.daemons.get(flow.src)
        if daemon is not None:
            daemon.on_flow_completed(flow)

    # -- statistics ----------------------------------------------------------------------

    def total_shifts(self) -> int:
        """Total selfish path shifts performed across all host daemons."""
        return sum(d.shifts_performed for d in self.daemons.values())

    def controlplane_stats(self) -> Dict[str, float]:
        """The ``cp_*`` telemetry merged into ``Network.perf_stats()``.

        ``cp_query_time_s`` / ``cp_round_time_s`` are wall time inside the
        two control loops — the quantity the ≥2x batching gate of
        ``bench_perf_controlplane`` is measured on.
        """
        daemons = self.daemons.values()
        stats = {
            "cp_vectorized": float(bool(self.vectorized)),
            "cp_daemons": float(len(self.daemons)),
            "cp_monitors_live": float(sum(len(d.monitors) for d in daemons)),
            "cp_query_rounds": float(self._stat_query_rounds),
            "cp_query_time_s": self._stat_query_time_s,
            "cp_round_time_s": self._stat_round_time_s,
            "cp_vector_rounds": float(sum(d.vector_rounds for d in daemons)),
            "cp_scalar_rounds": float(sum(d.scalar_rounds for d in daemons)),
            "cp_shift_tails": float(sum(d.shift_tails for d in daemons)),
            "cp_shifts": float(self.total_shifts()),
        }
        if self.registry is not None:
            stats.update(self.registry.stats())
        return stats
