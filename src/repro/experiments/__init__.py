"""Experiment harness: scenario runner, metrics, and figure/table renderers.

Each table and figure in the paper's evaluation (§4) has a function in
:mod:`repro.experiments.figures` that runs the underlying scenarios and
returns the same rows/series the paper reports; the ``benchmarks/``
directory exposes each as a pytest-benchmark target, and the ``dard`` CLI
can run any of them by id.
"""

from repro.experiments.comparison import PairedComparison, paired_comparison
from repro.experiments.configio import load_config, save_config
from repro.experiments.metrics import (
    cdf_points,
    improvement,
    mean,
    percentile,
    summarize_fct,
    summarize_path_switches,
)
from repro.experiments.runner import (
    ScenarioConfig,
    ScenarioResult,
    make_scheduler,
    run_scenario,
)

__all__ = [
    "PairedComparison",
    "ScenarioConfig",
    "ScenarioResult",
    "paired_comparison",
    "cdf_points",
    "improvement",
    "load_config",
    "make_scheduler",
    "mean",
    "save_config",
    "percentile",
    "run_scenario",
    "summarize_fct",
    "summarize_path_switches",
]
