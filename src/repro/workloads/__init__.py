"""Traffic patterns and arrival processes (paper §4.1).

Three synthetic patterns, straight from the paper (which takes them from
the fat-tree paper because commercial traces were unavailable):

* ``random`` — destination uniform over all other hosts;
* ``staggered(ToRP, PodP)`` — same-ToR with probability ToRP (0.5), same
  pod with PodP (0.3), otherwise a different pod;
* ``stride(step)`` — host ``x`` always sends to host ``(x + step) mod N``,
  with ``step`` chosen to force every flow across pods.

Each source host generates elephant flows (128 MB FTP transfers) with
exponentially distributed inter-arrival times.
"""

from repro.workloads.composite import (
    CompositePattern,
    LoadPhase,
    LoadProfile,
    ModulatedArrivalProcess,
)
from repro.workloads.generator import ArrivalProcess, WorkloadSpec
from repro.workloads.patterns import (
    RandomPattern,
    StaggeredPattern,
    StridePattern,
    TrafficPattern,
    make_pattern,
)
from repro.workloads.scenarios import (
    ARRIVAL_PROCESSES,
    EmpiricalArrivalProcess,
    EmpiricalDistribution,
    FailureStormScenario,
    INTERARRIVAL_PRESETS,
    IncastBarrierProcess,
    IncastPattern,
    LognormalDistribution,
    MixtureDistribution,
    ParetoDistribution,
    PredictiveElephantDetector,
    SIZE_PRESETS,
    make_arrival_process,
    make_interarrival_distribution,
    make_size_distribution,
)
from repro.workloads.trace import (
    TraceEntry,
    TraceRecorder,
    TraceReplay,
    load_trace,
    save_trace,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalProcess",
    "CompositePattern",
    "EmpiricalArrivalProcess",
    "EmpiricalDistribution",
    "FailureStormScenario",
    "INTERARRIVAL_PRESETS",
    "IncastBarrierProcess",
    "IncastPattern",
    "LoadPhase",
    "LoadProfile",
    "LognormalDistribution",
    "MixtureDistribution",
    "ModulatedArrivalProcess",
    "ParetoDistribution",
    "PredictiveElephantDetector",
    "RandomPattern",
    "SIZE_PRESETS",
    "StaggeredPattern",
    "StridePattern",
    "TraceEntry",
    "TraceRecorder",
    "TraceReplay",
    "TrafficPattern",
    "WorkloadSpec",
    "load_trace",
    "make_arrival_process",
    "make_interarrival_distribution",
    "make_pattern",
    "make_size_distribution",
    "save_trace",
]
