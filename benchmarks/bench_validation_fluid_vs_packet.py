"""Validation: the fluid simulator against packet-level ground truth.

Every reproduction number in this repo comes from the fluid max-min model
(DESIGN.md's ns-2 substitution). This bench quantifies that substitution:
the same small scenarios run in both simulators, and the fluid flow
completion times must track the packet-level ones within tens of percent
— close enough that scheduler orderings (who wins, by what factor) carry
over, which is all the paper-shape claims need.

The scenario set and flow size live in :mod:`repro.validation.oracles`
(the differential-oracle layer enforces the tight 0.81-1.02x band on
every ``repro validate`` run); this bench reports the same measurements
with the wider exploratory tolerance.
"""

from repro.experiments.figures import ExperimentOutput
from repro.validation.oracles import (
    FLUID_VS_PACKET_SCENARIOS as SCENARIOS,
    FLUID_VS_PACKET_SIZE_BYTES as SIZE,
    run_fluid_vs_packet,
)
from conftest import run_once


def _compare_all():
    rows = run_fluid_vs_packet(scenarios=SCENARIOS, size_bytes=SIZE, band=None)
    return ExperimentOutput(
        "validation_fluid_vs_packet",
        "Fluid simulator FCT vs packet-level (TCP Reno) ground truth",
        rows=rows,
        notes="ratio = packet / fluid; 1.0 is perfect agreement. TCP's "
        "slow start and loss recovery make packet FCTs run slightly "
        "faster or slower per scenario; scheduler orderings are "
        "preserved as long as ratios stay near 1.",
    )


def test_validation_fluid_vs_packet(benchmark, save_output):
    output = run_once(benchmark, _compare_all)
    save_output(output)
    for row in output.rows:
        assert 0.6 < row["ratio"] < 1.4, row
