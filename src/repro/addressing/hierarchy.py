"""Hierarchical prefix allocation over a multi-rooted tree (paper §2.3).

The allocator walks every downhill chain ``(core, agg, tor)`` of the
topology and subdivides the base prefix level by level:

* core ``i`` gets subdivision ``i`` of the base prefix;
* within core ``i``'s tree, the aggregation switch reached through core
  port ``j`` gets subdivision ``j``;
* within that, the ToR reached through aggregation port ``k`` gets
  subdivision ``k``;
* hosts get consecutive full addresses inside the chain prefix.

The paper fixes 6 bits per level (supporting p <= 16 fat-trees under
``10.0.0.0/8``); we default to 6 bits but auto-widen per level when the
topology needs more branches. When no base prefix is given and the
default ``10.0.0.0/8`` cannot fit the widened hierarchy (p=64 fat-trees
need 27 subdivision bits), the default base itself auto-shortens to the
longest prefix that can — topologies that fit under /8 keep their exact
historical addresses. An explicitly passed base is never adjusted;
:class:`AddressingError` is raised if the hierarchy cannot fit under it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import AddressingError
from repro.topology.multirooted import Chain, MultiRootedTopology
from repro.addressing.prefix import Prefix


def _bits_needed(count: int, minimum: int) -> int:
    bits = minimum
    while (1 << bits) < count:
        bits += 1
    return bits


class HierarchicalAddressing:
    """Prefix allocation and host multi-address assignment for a topology."""

    def __init__(
        self,
        topology: MultiRootedTopology,
        base: Prefix = None,
        bits_per_level: int = 6,
    ) -> None:
        self.topology = topology
        cores = sorted(topology.cores())
        max_aggs = max(len(topology.down_neighbors(c)) for c in cores)
        max_tors = max(len(topology.down_neighbors(a)) for a in topology.aggs())
        max_hosts = max(len(topology.hosts_of_tor(t)) for t in topology.tors())
        self.core_bits = _bits_needed(len(cores), bits_per_level)
        self.agg_bits = _bits_needed(max_aggs, bits_per_level)
        self.tor_bits = _bits_needed(max_tors, bits_per_level)
        level_bits = self.core_bits + self.agg_bits + self.tor_bits
        if base is None:
            base = self._default_base(level_bits, _bits_needed(max_hosts, 1))
        self.base = base
        host_bits = 32 - self.base.length - level_bits
        if host_bits < 1 or (1 << host_bits) < max_hosts:
            raise AddressingError(
                "address space exhausted: "
                f"base /{self.base.length} + {self.core_bits}+{self.agg_bits}+{self.tor_bits} "
                f"level bits leave {host_bits} host bits for {max_hosts} hosts per ToR"
            )
        self.host_bits = host_bits
        self._core_prefix: Dict[str, Prefix] = {}
        self._agg_prefix: Dict[Tuple[str, str], Prefix] = {}
        self._chain_prefix: Dict[Chain, Prefix] = {}
        self._host_addresses: Dict[str, Dict[Chain, int]] = {}
        self._address_owner: Dict[int, Tuple[str, Chain]] = {}
        self._allocate()

    @staticmethod
    def _default_base(level_bits: int, min_host_bits: int) -> Prefix:
        """The paper's ``10.0.0.0/8``, auto-shortened only when it must be.

        Topologies whose hierarchy fits in 24 bits keep the historical /8
        (and thus their exact historical addresses); larger ones (p=64
        fat-trees) get the longest base prefix that still leaves room, so
        the level subdivision stays identical and only the base shrinks.
        """
        length = min(8, 32 - level_bits - min_host_bits)
        if length < 0:
            raise AddressingError(
                f"hierarchy needs {level_bits} level bits + {min_host_bits} host "
                "bits: does not fit in a 32-bit address space"
            )
        ten = 10 << 24
        value = (ten >> (32 - length)) << (32 - length) if length else 0
        return Prefix(value, length)

    # -- allocation ------------------------------------------------------------

    def _allocate(self) -> None:
        topo = self.topology
        for core_index, core in enumerate(sorted(topo.cores())):
            core_pfx = self.base.subdivide(core_index, self.core_bits)
            self._core_prefix[core] = core_pfx
            for agg_port, agg in enumerate(sorted(topo.down_neighbors(core))):
                agg_pfx = core_pfx.subdivide(agg_port, self.agg_bits)
                self._agg_prefix[(core, agg)] = agg_pfx
                for tor_port, tor in enumerate(sorted(topo.down_neighbors(agg))):
                    chain = (core, agg, tor)
                    chain_pfx = agg_pfx.subdivide(tor_port, self.tor_bits)
                    self._chain_prefix[chain] = chain_pfx
                    for host_index, host in enumerate(sorted(topo.hosts_of_tor(tor))):
                        addr = chain_pfx.address(host_index)
                        self._host_addresses.setdefault(host, {})[chain] = addr
                        self._address_owner[addr] = (host, chain)

    # -- queries ---------------------------------------------------------------

    def core_prefix(self, core: str) -> Prefix:
        """The prefix owned by a core switch (root of one tree)."""
        try:
            return self._core_prefix[core]
        except KeyError:
            raise AddressingError(f"{core!r} is not a core switch") from None

    def agg_prefix(self, core: str, agg: str) -> Prefix:
        """The prefix core ``core`` allocated to aggregation switch ``agg``."""
        try:
            return self._agg_prefix[(core, agg)]
        except KeyError:
            raise AddressingError(f"no allocation from {core!r} to {agg!r}") from None

    def chain_prefix(self, chain: Chain) -> Prefix:
        """The ToR-level prefix of a downhill chain (core, agg, tor)."""
        try:
            return self._chain_prefix[chain]
        except KeyError:
            raise AddressingError(f"no such downhill chain {chain!r}") from None

    def addresses_of(self, host: str) -> Dict[Chain, int]:
        """All addresses of ``host``, keyed by the chain that allocated them."""
        try:
            return dict(self._host_addresses[host])
        except KeyError:
            raise AddressingError(f"{host!r} is not an addressed host") from None

    def address_of(self, host: str, chain: Chain) -> int:
        """The host's address on one specific downhill chain."""
        addresses = self.addresses_of(host)
        try:
            return addresses[chain]
        except KeyError:
            raise AddressingError(f"host {host!r} has no address on chain {chain!r}") from None

    def owner_of(self, addr: int) -> Tuple[str, Chain]:
        """Reverse lookup: which (host, chain) does an address belong to."""
        try:
            return self._address_owner[addr]
        except KeyError:
            raise AddressingError(f"unallocated address {addr}") from None

    def num_addresses_per_host(self, host: str) -> int:
        """How many locator addresses the host holds (one per chain)."""
        return len(self._host_addresses[host])

    def all_chains(self) -> List[Chain]:
        """Every downhill chain that received a prefix."""
        return list(self._chain_prefix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalAddressing(base={self.base}, "
            f"bits=({self.core_bits},{self.agg_bits},{self.tor_bits},{self.host_bits}))"
        )
