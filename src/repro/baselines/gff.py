"""Global First Fit — Hedera's simpler placement algorithm (NSDI 2010).

The Hedera paper evaluates two centralized placement algorithms: Simulated
Annealing (re-implemented in :mod:`repro.baselines.hedera`, as the DARD
paper did) and **Global First Fit**, which this module adds as an
extension baseline. Each scheduling round the controller:

1. collects the elephants and estimates their natural demands;
2. walks the elephants in arrival order, *linearly searching* each one's
   equal-cost paths for the first that can fit its whole demand on every
   hop given the reservations made so far; the flow keeps its current path
   when that still fits (no gratuitous moves) and stays put when nothing
   fits.

Greedy and granular where the annealer is global and stochastic — the
classic quality/complexity trade-off the ablation bench measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.scheduling.base import Scheduler, SchedulerContext
from repro.scheduling.messages import MessageSizes
from repro.simulator.flows import Flow, FlowComponent
from repro.topology.multirooted import SwitchPath
from repro.baselines.ecmp import five_tuple_hash
from repro.baselines.hedera import estimate_demands

DEFAULT_SCHEDULING_INTERVAL_S = 5.0


class GlobalFirstFitScheduler(Scheduler):
    """Centralized greedy first-fit elephant placement."""

    name = "gff"

    def __init__(
        self,
        scheduling_interval_s: float = DEFAULT_SCHEDULING_INTERVAL_S,
        message_sizes: MessageSizes = MessageSizes(),
    ) -> None:
        super().__init__()
        self.scheduling_interval_s = scheduling_interval_s
        self.message_sizes = message_sizes

    def attach(self, ctx: SchedulerContext) -> None:
        super().attach(ctx)
        ctx.engine.schedule_every(self.scheduling_interval_s, self._schedule_round)
        ctx.network.link_failed_listeners.append(self._on_link_failed)

    def _on_link_failed(self, u: str, v: str) -> None:
        def hash_pick(paths):
            sport = int(self.ctx.rng.integers(1024, 65536))
            dport = int(self.ctx.rng.integers(1024, 65536))
            return paths[five_tuple_hash("rehash", "rehash", sport, dport, len(paths))]

        self.evacuate_failed_link(u, v, hash_pick)

    # -- placement: ECMP until scheduled ----------------------------------------

    def choose_components(self, src: str, dst: str) -> List[FlowComponent]:
        paths = self.alive_paths(src, dst)
        sport = int(self.ctx.rng.integers(1024, 65536))
        dport = int(self.ctx.rng.integers(1024, 65536))
        index = five_tuple_hash(src, dst, sport, dport, len(paths))
        return [self.component_for(src, dst, paths[index])]

    # -- the periodic greedy round -----------------------------------------------

    def _schedule_round(self) -> None:
        network = self.ctx.network
        elephants = sorted(network.active_elephants(), key=lambda f: f.flow_id)
        if not elephants:
            return
        self.ledger.record(
            "report", self.message_sizes.report_to_controller, len(elephants)
        )
        demands = estimate_demands([(f.src, f.dst) for f in elephants])
        nic_bps = min(
            network.capacities[(f.src, network.topology.tor_of(f.src))]
            for f in elephants
        )
        reserved: Dict[Tuple[str, str], float] = {}
        for flow, demand in zip(elephants, demands):
            demand_bps = demand * nic_bps
            placement = self._first_fit(flow, demand_bps, reserved)
            if placement is None:
                # Nothing fits outright; the flow keeps its path unreserved
                # (it will share whatever it lands on, like Hedera's GFF).
                continue
            path, links = placement
            for link in links:
                reserved[link] = reserved.get(link, 0.0) + demand_bps
            if path != tuple(flow.switch_path()[1:-1]):
                network.reroute_flow(
                    flow, [self.component_for(flow.src, flow.dst, path)]
                )
                self.ledger.record(
                    "update", self.message_sizes.update_from_controller, len(path)
                )

    def _first_fit(
        self,
        flow: Flow,
        demand_bps: float,
        reserved: Dict[Tuple[str, str], float],
    ) -> Optional[Tuple[SwitchPath, List[Tuple[str, str]]]]:
        """The first path with headroom for the flow's demand on every hop.

        The current path is tried first so converged placements are sticky.
        """
        network = self.ctx.network
        current = tuple(flow.switch_path()[1:-1])
        candidates = [current] + [
            p for p in self.alive_paths(flow.src, flow.dst) if p != current
        ]
        for path in candidates:
            full = self.ctx.topology.host_path(flow.src, flow.dst, path)
            if network.failed_links and not network.path_alive(full):
                continue
            links = list(zip(full, full[1:]))
            if all(
                reserved.get(link, 0.0) + demand_bps
                <= network.capacities[link] + 1e-6
                for link in links
            ):
                return path, links
        return None
