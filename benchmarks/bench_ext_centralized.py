"""Extension: Hedera's two centralized algorithms vs DARD.

Global First Fit is greedier but deterministic; Simulated Annealing
searches globally but at per-destination granularity. Expected: both beat
ECMP under stride, and DARD stays competitive with the better of the two.
"""

from repro.experiments.figures import ext_centralized_variants
from conftest import run_once


def test_ext_centralized(benchmark, save_output):
    output = run_once(benchmark, ext_centralized_variants, duration_s=90.0)
    save_output(output)
    stride = next(row for row in output.rows if row["pattern"] == "stride")
    assert stride["hedera_s"] < stride["ecmp_s"]
    assert stride["gff_s"] < stride["ecmp_s"]
    best_centralized = min(stride["hedera_s"], stride["gff_s"])
    assert stride["dard_s"] <= best_centralized * 1.15
