"""Tests for the scheduler interface and message accounting."""

import numpy as np
import pytest

from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.scheduling import MessageLedger, MessageSizes, SchedulerContext
from repro.scheduling.base import Scheduler, encode_and_verify
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


class FirstPathScheduler(Scheduler):
    """Minimal concrete scheduler for interface tests."""

    name = "first"

    def choose_components(self, src, dst):
        return [self.component_for(src, dst, self.paths_between(src, dst)[0])]


@pytest.fixture
def ctx():
    topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
    return SchedulerContext(
        network=Network(topo),
        codec=PathCodec(HierarchicalAddressing(topo)),
        rng=np.random.default_rng(0),
    )


class TestSchedulerInterface:
    def test_place_starts_flow(self, ctx):
        scheduler = FirstPathScheduler()
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 10 * MB)
        assert flow.flow_id in ctx.network.flows
        assert flow.components[0].path[0] == "h_0_0_0"

    def test_context_shortcuts(self, ctx):
        assert ctx.topology is ctx.network.topology
        assert ctx.engine is ctx.network.engine

    def test_paths_between(self, ctx):
        scheduler = FirstPathScheduler()
        scheduler.attach(ctx)
        assert len(scheduler.paths_between("h_0_0_0", "h_1_0_0")) == 4

    def test_switch_path_of(self, ctx):
        scheduler = FirstPathScheduler()
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 10 * MB)
        assert scheduler.switch_path_of(flow) == tuple(
            scheduler.paths_between("h_0_0_0", "h_1_0_0")[0]
        )

    def test_control_bytes_default_zero(self, ctx):
        scheduler = FirstPathScheduler()
        scheduler.attach(ctx)
        assert scheduler.control_message_bytes() == 0.0


class TestEncodeAndVerify:
    def test_round_trip_ok(self, ctx):
        path = ctx.topology.equal_cost_paths("tor_0_0", "tor_1_0")[1]
        src_addr, dst_addr = encode_and_verify(ctx.codec, "h_0_0_0", "h_1_0_0", path)
        assert ctx.codec.decode(src_addr, dst_addr) == path


class TestMessageLedger:
    def test_accumulates_by_kind(self):
        ledger = MessageLedger()
        ledger.record("query", 48, count=10)
        ledger.record("reply", 32, count=10)
        ledger.record("query", 48, count=5)
        assert ledger.bytes_by_kind["query"] == 48 * 15
        assert ledger.count_by_kind["reply"] == 10
        assert ledger.total_bytes == 48 * 15 + 32 * 10
        assert ledger.total_messages == 25

    def test_rate(self):
        ledger = MessageLedger()
        ledger.record("x", 100, count=10)
        assert ledger.bytes_per_second(10.0) == 100.0
        with pytest.raises(ValueError):
            ledger.bytes_per_second(0.0)

    def test_negative_rejected(self):
        ledger = MessageLedger()
        with pytest.raises(ValueError):
            ledger.record("x", -1)
        with pytest.raises(ValueError):
            ledger.record("x", 1, count=-1)

    def test_paper_message_sizes(self):
        sizes = MessageSizes()
        assert sizes.dard_query == 48
        assert sizes.dard_reply == 32
        assert sizes.report_to_controller == 80
        assert sizes.update_from_controller == 72
