"""Figure 11: FCT CDFs on the oversubscribed 8-core 3-tier topology.

Paper shape: with oversubscription > 1 the bottlenecks move into the tree;
under staggered traffic DARD beats even the centralized scheduler, and
under stride it beats random flow-level scheduling with a small gap to
centralized.
"""

from repro.experiments.figures import fig11_threetier_cdf
from conftest import run_once


def test_fig11_threetier_cdf(benchmark, save_output):
    output = run_once(benchmark, fig11_threetier_cdf, duration_s=60.0)
    save_output(output)
    mean = {
        (row["pattern"], row["scheduler"]): row["mean_fct_s"] for row in output.rows
    }
    assert mean[("stride", "dard")] < mean[("stride", "ecmp")]
    assert mean[("staggered", "dard")] <= mean[("staggered", "hedera")] * 1.05
