"""Control-plane message accounting (paper §4.3.4, Fig. 15).

The paper compares DARD's probe traffic with the centralized scheduler's
report/update traffic using these on-the-wire sizes:

* DARD host -> switch state query: 48 bytes
* DARD switch -> host state reply: 32 bytes
* ToR -> controller elephant-flow report: 80 bytes
* controller -> switch flow-table update: 72 bytes
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class MessageSizes:
    """Control message sizes in bytes (defaults straight from the paper)."""

    dard_query: int = 48
    dard_reply: int = 32
    report_to_controller: int = 80
    update_from_controller: int = 72


@dataclass
class MessageLedger:
    """Counts control messages and bytes by kind."""

    bytes_by_kind: Dict[str, float] = field(default_factory=dict)
    count_by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, size_bytes: float, count: int = 1) -> None:
        """Account ``count`` messages of ``size_bytes`` each under ``kind``."""
        if count < 0 or size_bytes < 0:
            raise ValueError("message count and size must be non-negative")
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0.0) + size_bytes * count
        self.count_by_kind[kind] = self.count_by_kind.get(kind, 0) + count

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_by_kind.values())

    @property
    def total_messages(self) -> int:
        return sum(self.count_by_kind.values())

    def bytes_per_second(self, duration_s: float) -> float:
        """Average control bandwidth over an experiment (Fig. 15's y-axis)."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        return self.total_bytes / duration_s
