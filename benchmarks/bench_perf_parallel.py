"""Parallel-backend benchmark: component-parallel fills vs serial.

Runs one seeded DARD scenario engineered to stress the parallel backend
— incast-barrier arrivals (many components dirtied in one coalesced
round, the multi-bucket regime) plus a fail/restore storm (full refills
and large registry refreshes) — once per backend, and checks two things:

* **equivalence**: bit-identical flow records, shift journal, and
  control accounting across serial, threads, and processes backends —
  the deterministic merge contract, enforced at every scale including
  the CI smoke;
* **speed**: reallocation + control-plane wall time (``realloc_time_s``
  + ``cp_query_time_s`` + ``cp_round_time_s``) drops by the acceptance
  factor under the threads backend.

The speedup gate arms only when the topology is at scale (p >= 16) AND
the host actually grants this process >= 4 CPUs: the backends fan work
across cores, so on a single-core runner (or a cgroup-pinned CI
container) the gate would measure scheduler overhead, not parallelism.
Equivalence and telemetry are asserted unconditionally, and the JSON
artifact records the CPU budget so a recorded number is always
interpretable. Env knobs (``BENCH_PERF_PARALLEL_P``,
``BENCH_PERF_PARALLEL_DURATION``, ``BENCH_PERF_PARALLEL_WORKERS``) let
CI run a p=4 smoke while the default exercises p=32.

Output rows land in ``benchmarks/results/perf_parallel.txt`` and the raw
numbers in ``benchmarks/results/BENCH_perf_parallel.json``.
"""

import json
import os
import pathlib
import time

from repro.common.units import MB, MBPS
from repro.experiments.figures import ExperimentOutput
from repro.experiments.runner import ScenarioConfig, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

P = int(os.environ.get("BENCH_PERF_PARALLEL_P", "32"))
DURATION_S = float(os.environ.get("BENCH_PERF_PARALLEL_DURATION", "6"))
WORKERS = int(os.environ.get("BENCH_PERF_PARALLEL_WORKERS", "4"))

#: Realloc + control-plane wall-time reduction the threads backend must
#: deliver at scale on a multi-core host (the ISSUE acceptance gate).
MIN_SPEEDUP = 1.5
#: CPUs this process must actually be granted before the gate arms.
MIN_GATE_CPUS = 4


def _available_cpus():
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def _config(backend, workers):
    params = {"parallel_backend": backend}
    if backend != "serial":
        params["parallel_workers"] = workers
    return ScenarioConfig(
        topology="fattree",
        topology_params={"p": P, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="dard",
        arrival_rate_per_host=0.02 if P >= 16 else 0.1,
        duration_s=DURATION_S,
        flow_size_bytes=64 * MB,
        seed=3,
        arrival="incast-barrier",
        # At scale, cap each barrier burst: an uncapped barrier at p=32
        # opens 8192 flows per period and the bench stops being a
        # reallocation benchmark. 512 synchronized senders still builds
        # multi-thousand-nnz multi-component rounds.
        arrival_params=(
            {"period_s": 1.0, "senders_per_burst": 512}
            if P >= 16
            else {"period_s": 1.0}
        ),
        link_events=(
            ("fail", DURATION_S * 0.4, "agg_0_0", "core_0_0"),
            ("restore", DURATION_S * 0.65, "agg_0_0", "core_0_0"),
        ),
        network_params=params,
        drain_limit_s=600.0,
    )


def _run_backend(backend, workers):
    network_box = []
    started = time.perf_counter()
    result = run_scenario(
        _config(backend, workers), instrument=network_box.append
    )
    wall_s = time.perf_counter() - started
    stats = network_box[0].perf_stats()
    gated = (
        stats["realloc_time_s"]
        + stats["cp_query_time_s"]
        + stats["cp_round_time_s"]
    )
    row = {
        "backend": backend,
        "workers": int(stats["par_workers"]),
        "p": P,
        "duration_s": DURATION_S,
        "wall_s": wall_s,
        "flows_completed": len(result.records),
        "shifts": result.dard_shifts,
        "gated_time_s": gated,
        "realloc_time_s": stats["realloc_time_s"],
        "cp_time_s": stats["cp_query_time_s"] + stats["cp_round_time_s"],
        "par_rounds": int(stats["par_rounds"]),
        "par_tasks": int(stats["par_tasks"]),
        "par_fanout_max": int(stats["par_fanout_max"]),
        "par_cp_rounds": int(stats["par_cp_rounds"]),
        "par_merge_wait_s": stats["par_merge_wait_s"],
    }
    return row, result


def _fingerprint(result):
    return (
        tuple(
            (r.flow_id, r.src, r.dst, r.start_time, r.end_time, r.path_switches)
            for r in result.records
        ),
        result.dard_shift_log,
        result.control_bytes,
    )


def _run_all():
    cpus = _available_cpus()
    serial_row, serial_result = _run_backend("serial", 1)
    threads_row, threads_result = _run_backend("threads", WORKERS)
    processes_row, processes_result = _run_backend("processes", WORKERS)

    # The merge contract, at every scale: each parallel backend must be
    # bit-identical to serial — records, shift journal, control bytes.
    reference = _fingerprint(serial_result)
    assert _fingerprint(threads_result) == reference, (
        "threads backend diverged from serial"
    )
    assert _fingerprint(processes_result) == reference, (
        "processes backend diverged from serial"
    )

    speedup = (
        serial_row["gated_time_s"] / threads_row["gated_time_s"]
        if threads_row["gated_time_s"]
        else float("inf")
    )
    rows = [
        serial_row,
        dict(threads_row, speedup=speedup),
        processes_row,
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_perf_parallel.json").write_text(
        json.dumps(
            {
                "experiment": "perf_parallel",
                "cpus_available": cpus,
                "gate_armed": P >= 16 and cpus >= MIN_GATE_CPUS,
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return ExperimentOutput(
        "perf_parallel",
        "realloc + control-plane wall time: parallel backends vs serial",
        rows=[
            {
                "backend": r["backend"],
                "workers": r["workers"],
                "wall_s": round(r["wall_s"], 2),
                "gated_time_s": round(r["gated_time_s"], 3),
                "par_rounds": r["par_rounds"],
                "flows": r["flows_completed"],
            }
            for r in rows
        ],
        notes=(
            f"p={P} dard stride + barrier + storm, {DURATION_S:.0f}s, "
            f"{cpus} cpu(s) available; records + shift journal verified "
            f"identical across backends; threads speedup {speedup:.2f}x"
        ),
    )


def test_perf_parallel(benchmark, save_output):
    output = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_output(output)
    document = json.loads(
        (RESULTS_DIR / "BENCH_perf_parallel.json").read_text()
    )
    threads = document["rows"][1]
    # Fan-out must actually have happened — a bench whose rounds all fell
    # below the structural threshold would gate nothing.
    assert threads["par_rounds"] > 0, threads
    assert threads["par_fanout_max"] >= 2, threads
    if document["gate_armed"]:
        # Parallelism can only be measured when the host grants cores;
        # the single-core CI smoke checks equivalence and telemetry only.
        assert threads["speedup"] >= MIN_SPEEDUP, threads
