"""Tests for parallel scenario execution."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.analysis import parallel_sweep, run_scenarios_parallel, sweep
from repro.experiments import ScenarioConfig

BASE = ScenarioConfig(
    topology="fattree",
    topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
    pattern="stride",
    scheduler="ecmp",
    arrival_rate_per_host=0.05,
    duration_s=15.0,
    flow_size_bytes=16 * MB,
    seed=1,
)


class TestRunScenariosParallel:
    def test_empty(self):
        assert run_scenarios_parallel([]) == []

    def test_single_runs_serially(self):
        results = run_scenarios_parallel([BASE], max_workers=4)
        assert len(results) == 1 and results[0].records

    def test_parallel_matches_serial(self):
        import dataclasses

        configs = [dataclasses.replace(BASE, seed=s) for s in (1, 2, 3, 4)]
        serial = [r.mean_fct for r in run_scenarios_parallel(configs, max_workers=1)]
        parallel = [
            r.mean_fct for r in run_scenarios_parallel(configs, max_workers=2)
        ]
        assert parallel == serial

    def test_parallel_records_bit_identical_on_grid(self):
        # Determinism down to the last float bit, across schedulers and
        # both reallocation modes: worker processes must replay exactly
        # the event sequence a serial run produces.
        import dataclasses

        configs = [
            dataclasses.replace(
                BASE,
                scheduler=scheduler,
                seed=seed,
                duration_s=8.0,
                network_params={"incremental_realloc": incremental},
            )
            for scheduler in ("ecmp", "dard")
            for seed in (1, 2)
            for incremental in (False, True)
        ]

        def fingerprint(result):
            return [
                (r.flow_id, r.src, r.dst, r.start_time, r.end_time,
                 r.path_switches, r.retransmitted_bytes)
                for r in result.records
            ]

        serial = run_scenarios_parallel(configs, max_workers=1)
        parallel = run_scenarios_parallel(configs, max_workers=4)
        for one, other in zip(serial, parallel):
            assert fingerprint(one) == fingerprint(other)
        assert all(r.records for r in serial)

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            run_scenarios_parallel([BASE], max_workers=0)


class TestParallelSweep:
    def test_matches_serial_sweep(self):
        grid = {"seed": [1, 2], "scheduler": ["ecmp", "vlb"]}
        serial = sweep(BASE, grid)
        parallel = parallel_sweep(BASE, grid, max_workers=2)
        assert [o for o, _ in parallel] == [o for o, _ in serial]
        assert [r.mean_fct for _, r in parallel] == [r.mean_fct for _, r in serial]

    def test_empty_grid(self):
        results = parallel_sweep(BASE, {}, max_workers=2)
        assert len(results) == 1
