"""Discrete-event engine: a time-ordered heap of callbacks.

Cancellation is O(1) via handle invalidation: cancelled events stay in the
heap and are skipped when popped. Ties break by schedule order, so runs are
fully deterministic.

The live-event count is maintained incrementally — push increments,
cancel and fire decrement — so :attr:`EventEngine.pending_events` is O(1)
instead of a heap scan (the network's completion rescheduling queries it
per event at scale). :meth:`EventEngine.audit_pending_events` is the
full-scan reference the tests assert the counter against.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.common.errors import SimulationError


class EventHandle:
    """A scheduled event; call :meth:`cancel` to invalidate it."""

    __slots__ = ("time", "callback", "cancelled", "_engine", "_fired")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        #: owning engine, for live-count maintenance on cancel.
        self._engine: Optional["EventEngine"] = None
        #: set when the event has been popped and executed — cancelling a
        #: fired handle must not decrement the live count again.
        self._fired = False

    def cancel(self) -> None:
        """Invalidate the event; it will be skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            if not self._fired and self._engine is not None:
                self._engine._live_events -= 1
        self.callback = None  # free references early


class EventEngine:
    """A classic event heap with a monotonically advancing clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._live_events = 0
        self._after_event_hooks: List[Callable[[], None]] = []

    # -- instrumentation ------------------------------------------------------

    def add_after_event_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after every processed event (validation probes).

        Hooks fire once per event callback, after it returns and with the
        clock still at the event's time — the quiescent points where the
        simulation's invariants must hold. Hooks may schedule new events
        but must not raise unless the run should abort (the validation
        layer's invariant checkers raise
        :class:`~repro.common.errors.InvariantViolation` on purpose).
        """
        self._after_event_hooks.append(hook)

    def remove_after_event_hook(self, hook: Callable[[], None]) -> None:
        """Detach a previously added after-event hook (no-op if absent)."""
        try:
            self._after_event_hooks.remove(hook)
        except ValueError:
            pass

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before now={self.now}")
        handle = EventHandle(time, callback)
        handle._engine = self
        heapq.heappush(self._heap, (time, next(self._seq), handle))
        self._live_events += 1
        return handle

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback)

    def reschedule(
        self,
        handle: Optional[EventHandle],
        delay: float,
        callback: Callable[[], None],
    ) -> Tuple[EventHandle, bool]:
        """Replace ``handle`` with a fresh event ``delay`` from now.

        Returns ``(new_handle, preserved)`` where ``preserved`` is True
        when the replacement fires at exactly the old handle's time — the
        network's events-preserved/rescheduled telemetry. The old entry is
        always cancelled and a new one always pushed (never reused in
        place), so the tie-breaking sequence numbers advance identically
        whether or not the fire time moved — same-time event ordering, and
        therefore whole-run determinism, cannot depend on how often the
        recomputed time happens to coincide with the old one.
        """
        new = self.schedule_in(delay, callback)
        preserved = (
            handle is not None and not handle.cancelled and handle.time == new.time
        )
        if handle is not None:
            handle.cancel()
        return new, preserved

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        jitter: Optional[Callable[[], float]] = None,
        start_delay: Optional[float] = None,
    ) -> None:
        """Run ``callback`` periodically; ``jitter()`` adds to each interval.

        This implements the paper's randomized control intervals (§3.1):
        DARD schedules every 5 s *plus a uniform random 1-5 s* to prevent
        synchronized path switching.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")

        def fire() -> None:
            callback()
            delay = interval + (jitter() if jitter is not None else 0.0)
            self.schedule_in(delay, fire)

        first = start_delay if start_delay is not None else interval
        first += jitter() if jitter is not None else 0.0
        self.schedule_in(first, fire)

    def run_until(self, end_time: float) -> None:
        """Process events in order until the clock would pass ``end_time``."""
        while self._heap and self._heap[0][0] <= end_time:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue  # cancel already decremented the live count
            handle._fired = True
            self._live_events -= 1
            self.now = time
            callback = handle.callback
            handle.callback = None
            self._events_processed += 1
            assert callback is not None
            callback()
            if self._after_event_hooks:
                for hook in tuple(self._after_event_hooks):
                    hook()
        self.now = max(self.now, end_time)

    def run_until_idle(self, hard_limit: float = float("inf")) -> None:
        """Drain every pending event, up to an optional time ``hard_limit``."""
        while self._heap and self._heap[0][0] <= hard_limit:
            self.run_until(self._heap[0][0])

    @property
    def pending_events(self) -> int:
        """Live (not cancelled, not fired) events, maintained in O(1)."""
        return self._live_events

    def audit_pending_events(self) -> int:
        """O(n) full-heap recount of live events (test oracle for the counter)."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed
