"""Flow objects and completion records.

A :class:`Flow` transfers a fixed number of bytes between two hosts. Its
traffic is carried by one or more :class:`FlowComponent` s — (path, weight)
pairs. Single-path schedulers (ECMP, VLB, Hedera, DARD) keep exactly one
component and re-route by replacing it; TeXCP stripes a flow across several
weighted components.

The paper's elephant definition (§1) is a TCP connection lasting at least
10 seconds; flows are *promoted* to elephant status at that age by the
network, which is when DARD's detector first sees them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import SimulationError

#: Default elephant promotion age (seconds), per the paper.
ELEPHANT_AGE_S = 10.0

#: Bytes retransmitted per path switch: one congestion window of in-flight
#: data is lost when the path changes mid-connection (~64 KB receive window).
PATH_SWITCH_RETX_BYTES = 64_000


@dataclass(frozen=True)
class FlowComponent:
    """One (path, weight) strand of a flow.

    ``path`` is the full node path, hosts included. ``weight`` scales the
    component's max-min share; weights across a flow's components need not
    sum to anything in particular — only ratios matter to the allocator.
    """

    path: Tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        # Frozen dataclass: stash the derived link tuple once via
        # object.__setattr__ — links() is called from every hot path
        # (counter updates, reallocation, invariant checks).
        object.__setattr__(self, "_links", tuple(zip(self.path, self.path[1:])))

    def links(self) -> Tuple[Tuple[str, str], ...]:
        """The directed links this component traverses (cached)."""
        return self._links


@dataclass
class Flow:
    """A live transfer. Mutable state is owned by the Network."""

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    start_time: float
    components: List[FlowComponent]
    remaining_bytes: float = field(init=False)
    #: current per-component rates (bits/s), parallel to ``components``.
    component_rates: List[float] = field(default_factory=list)
    is_elephant: bool = False
    path_switches: int = 0
    #: distinct single-path routes this flow has used, in order — lets the
    #: stability analysis detect A->B->A oscillation, which the paper
    #: claims never happens ("no flow switches its paths back and forth").
    path_history: List[Tuple[str, ...]] = field(default_factory=list)
    retransmitted_bytes: float = 0.0
    #: reordering-induced retransmission fraction of current goodput
    #: (recomputed whenever components change; 0 for single-path flows).
    reorder_retx_fraction: float = 0.0
    end_time: Optional[float] = None
    #: per-component link-id arrays over the owning network's LinkIndex,
    #: computed once at start/reroute and reused by every hot path
    #: (set by the Network; ``None`` for flows never attached to one).
    component_link_ids: Optional[List] = None
    #: sorted unique link ids across all components (set by the Network).
    unique_link_ids: Optional[object] = None
    #: which monitored equal-cost path this flow currently rides, as an
    #: index into its (src ToR, dst ToR) monitor's path list. Assigned by
    #: the DARD daemon at elephant promotion and on every shift, so the
    #: control plane's FV accounting compares integers instead of hashing
    #: switch-path tuples. ``None`` for mice and non-DARD flows.
    monitored_path_index: Optional[int] = None

    def __post_init__(self) -> None:
        self.remaining_bytes = float(self.size_bytes)
        if not self.components:
            raise SimulationError(f"flow {self.flow_id} has no components")
        if self.src != self.components[0].path[0] or self.dst != self.components[0].path[-1]:
            raise SimulationError(
                f"flow {self.flow_id} endpoints ({self.src}, {self.dst}) do not match "
                f"component path {self.components[0].path}"
            )

    @property
    def rate_bps(self) -> float:
        """Aggregate allocated rate across components."""
        return sum(self.component_rates)

    @property
    def goodput_bps(self) -> float:
        """Rate net of reordering-induced retransmissions.

        The completion-scheduling rate: remaining bytes drain at this
        speed. Kept as one shared definition so the network's ETA
        computation and any external telemetry agree bit-for-bit.
        """
        return self.rate_bps * (1.0 - self.reorder_retx_fraction)

    @property
    def active(self) -> bool:
        return self.end_time is None

    def age(self, now: float) -> float:
        """Seconds since the flow started."""
        return now - self.start_time

    def switch_path(self) -> Tuple[str, ...]:
        """The single path of a single-component flow (scheduler convenience)."""
        if len(self.components) != 1:
            raise ValueError(f"flow {self.flow_id} is striped over {len(self.components)} paths")
        return self.components[0].path

    def retx_rate(self) -> float:
        """Retransmitted bytes over unique bytes (the Fig. 14 metric)."""
        if self.size_bytes <= 0:
            return 0.0
        return self.retransmitted_bytes / self.size_bytes

    def path_revisits(self) -> int:
        """How many route changes returned to a previously used path."""
        revisits = 0
        seen = set()
        for path in self.path_history:
            if path in seen:
                revisits += 1
            seen.add(path)
        return revisits


@dataclass(frozen=True)
class FlowRecord:
    """Immutable record of a finished flow, kept for metrics."""

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    start_time: float
    end_time: float
    path_switches: int
    path_revisits: int
    retransmitted_bytes: float
    was_elephant: bool

    @property
    def fct(self) -> float:
        """Flow completion time (the paper's "file transfer time")."""
        return self.end_time - self.start_time

    @property
    def retx_rate(self) -> float:
        return self.retransmitted_bytes / self.size_bytes if self.size_bytes else 0.0
