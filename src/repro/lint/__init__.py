"""dardlint: the repo's AST-based determinism & hot-path static analyzer.

``dard lint src`` runs repo-specific rules that dynamic testing can only
catch probabilistically — unordered set iteration feeding results
(DET001), global RNG / wall-clock reads (DET002), hash-ordered float
accumulation (DET003), unordered serialization (DET004), string-keyed
lookups in the reallocation hot path (PERF001), persistent-load mutation
outside its owners (API001), event-heap bypasses (API002), and broad
``except`` clauses that can swallow invariant violations (EXC001).

See DESIGN.md "Static guarantees" for the determinism contract each rule
enforces and the suppression policy; TESTING.md for how the CI gate runs.
"""

from repro.lint.engine import (
    Finding,
    LintConfig,
    ModuleContext,
    Rule,
    all_rules,
    load_config,
    module_name_for,
    register,
    run_lint,
)
from repro.lint.reporting import SCHEMA_VERSION, render_json, render_text, to_document

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "SCHEMA_VERSION",
    "all_rules",
    "load_config",
    "module_name_for",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "to_document",
]
