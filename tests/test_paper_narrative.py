"""Tests that walk the paper's own worked examples, step by step.

Table 1's rounds are replayed move-by-move in the congestion game: the
exact BoNF vectors, the exact shifting pairs, and the exact stopping
condition. The other design-section claims (§2.2-2.4) get targeted
checks: BoNF of an empty link, monitor sharing, and the first/last-hop
exclusion rationale.
"""

import numpy as np
import pytest

from repro.common.units import GBPS, MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.core import DardScheduler
from repro.gametheory import CongestionGame, GameFlow
from repro.scheduling import SchedulerContext
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


def _routes(topo, src_tor, dst_tor):
    return tuple(tuple(zip(p, p[1:])) for p in topo.equal_cost_paths(src_tor, dst_tor))


@pytest.fixture(scope="module")
def table1_game():
    """The Figure 1 instance as a congestion game: three flows, unit-
    bandwidth links, everyone initially through core 1 (our core_0_0)."""
    topo = FatTree(p=4, link_bandwidth_bps=GBPS)
    capacities = {}
    for u, v in topo.directed_links():
        if topo.node(u).kind.is_switch and topo.node(v).kind.is_switch:
            capacities[(u, v)] = 1.0  # unit bandwidth, as in the example
    flows = [
        GameFlow(0, _routes(topo, "tor_0_0", "tor_1_0")),  # Flow0: E11->E21
        GameFlow(1, _routes(topo, "tor_0_1", "tor_1_1")),  # Flow1: E13->E24
        GameFlow(2, _routes(topo, "tor_2_0", "tor_1_1")),  # Flow2: E32->E23
    ]
    game = CongestionGame(capacities, flows, delta_bps=1e-6)
    # Route index of the path through core_0_0 for each flow: paths are
    # ordered (agg asc, core asc), so index 0 is via agg_x_0 / core_0_0.
    initial = (0, 0, 0)
    return game, initial


class TestTable1Rounds:
    def test_round0_initial_vector(self, table1_game):
        """Round 0: the global minimum BoNF is 1/3 — three elephants on
        the most congested link (core1-aggr2, ours core_0_0->agg_1_0)."""
        game, strategy = table1_game
        assert game.min_bonf(strategy) == pytest.approx(1 / 3)
        counts = game.link_counts(strategy)
        assert counts[("core_0_0", "agg_1_0")] == 3

    def test_round0_first_shift_estimate(self, table1_game):
        """(E11,E21)'s estimate: moving one flow off path 1 raises the
        minimum BoNF from 1/3 toward 1/2 — the move is taken."""
        game, strategy = table1_game
        move = game.best_response(strategy, 0)
        assert move is not None
        shifted = (move, strategy[1], strategy[2])
        assert game.min_bonf(shifted) == pytest.approx(1 / 2)

    def test_round1_second_shift(self, table1_game):
        """Round 1: with Flow0 moved, (E13,E24) still gains by leaving
        the shared bottleneck; after its move every flow runs at 1."""
        game, strategy = table1_game
        first = game.best_response(strategy, 0)
        strategy = (first, strategy[1], strategy[2])
        second = game.best_response(strategy, 1)
        assert second is not None
        strategy = (strategy[0], second, strategy[2])
        assert game.min_bonf(strategy) == pytest.approx(1.0)

    def test_round2_converged(self, table1_game):
        """Round 2: no source-destination pair wants to move — Nash."""
        game, strategy = table1_game
        strategy = (game.best_response(strategy, 0), strategy[1], strategy[2])
        strategy = (strategy[0], game.best_response(strategy, 1), strategy[2])
        assert game.is_nash(strategy)

    def test_total_moves_exactly_two(self, table1_game):
        """The paper's example converges after exactly two shifts."""
        from repro.gametheory import run_best_response_dynamics

        game, initial = table1_game
        result = run_best_response_dynamics(game, initial)
        assert result.num_steps == 2


class TestDesignSectionClaims:
    def test_empty_link_bonf_is_infinite(self):
        """§2.2: 'If a link has no flow, its BoNF is infinity.'"""
        net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
        assert net.link_state("core_0_0", "agg_0_0").bonf == float("inf")

    def test_monitor_shared_across_same_tor_pair(self):
        """§2.4.1: two elephants between the same ToR pair share one
        monitor; it is released when the last one finishes."""
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        net = Network(topo)
        scheduler = DardScheduler()
        scheduler.attach(
            SchedulerContext(
                network=net,
                codec=PathCodec(HierarchicalAddressing(topo)),
                rng=np.random.default_rng(0),
            )
        )
        # Same source host, two destinations on the same remote ToR.
        scheduler.place("h_0_0_0", "h_1_0_0", 200 * MB)
        scheduler.place("h_0_0_0", "h_1_0_1", 200 * MB)
        net.engine.run_until(12.0)
        daemon = scheduler.daemons["h_0_0_0"]
        assert len(daemon.monitors) == 1  # shared, not duplicated
        assert len(daemon.elephants[("tor_0_0", "tor_1_0")]) == 2
        net.engine.run_until(120.0)
        assert len(daemon.monitors) == 0  # released after both finish

    def test_first_last_hop_cannot_be_bypassed(self):
        """§2.2's rationale for excluding host links from BoNF: every
        equal-cost path shares the same first and last hop."""
        topo = FatTree(p=4)
        src, dst = "h_0_0_0", "h_1_0_0"
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        full_paths = [topo.host_path(src, dst, p) for p in paths]
        first_hops = {(p[0], p[1]) for p in full_paths}
        last_hops = {(p[-2], p[-1]) for p in full_paths}
        assert len(first_hops) == 1 and len(last_hops) == 1

    def test_ip_alias_budget(self):
        """§2.3: per-host address counts stay far below the OS alias
        limits the paper cites (255 for pre-2.2 kernels)."""
        for p in (4, 8):
            topo = FatTree(p=p)
            addressing = HierarchicalAddressing(topo)
            host = topo.hosts()[0]
            assert addressing.num_addresses_per_host(host) == p * p // 4
            assert addressing.num_addresses_per_host(host) <= 255
