"""Figure 7: FCT CDFs on the (scaled) large fat-tree, all four schedulers.

Paper shape (p=32, here p=8): under stride both DARD and the centralized
simulated annealing beat ECMP/pVLB and sit within ~10% of each other;
under staggered DARD wins outright; random lies in between.
"""

from repro.experiments.figures import fig7_fattree_cdf
from conftest import run_once


def test_fig7_fattree_cdf(benchmark, save_output):
    output = run_once(benchmark, fig7_fattree_cdf, duration_s=60.0)
    save_output(output)
    mean = {
        (row["pattern"], row["scheduler"]): row["mean_fct_s"] for row in output.rows
    }
    # Stride: adaptive schedulers beat random flow-level scheduling.
    assert mean[("stride", "dard")] < mean[("stride", "ecmp")]
    assert mean[("stride", "hedera")] < mean[("stride", "ecmp")]
    # ... and are within 15% of each other.
    gap = abs(mean[("stride", "dard")] - mean[("stride", "hedera")])
    assert gap / mean[("stride", "hedera")] < 0.15
    # Staggered: DARD at least matches the centralized scheduler.
    assert mean[("staggered", "dard")] <= mean[("staggered", "hedera")] * 1.05
