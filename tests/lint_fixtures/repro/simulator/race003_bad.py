"""RACE003 bad fixture: shared-structure mutation inside a component round.

``rebuild`` re-partitions the union-find every component shares; calling
it from a component-scoped root mutates global structure mid-round.
"""


class EpochRunner:
    """Minimal shape for the rule: only the names matter."""

    def _refill_dirty(self, flows):
        self._partition.rebuild(flows)
