"""Composite patterns and time-varying load.

The paper evaluates pure patterns; production traffic is a mixture with a
diurnal load curve. Two composable pieces:

* :class:`CompositePattern` — draw each flow's destination from one of
  several sub-patterns with fixed weights (e.g. 70% staggered + 30%
  stride);
* :class:`LoadProfile` + :class:`ModulatedArrivalProcess` — a piecewise-
  constant rate multiplier over time (steps, ramps approximated by steps),
  applied on top of the base arrival rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.simulator.engine import EventEngine
from repro.workloads.generator import ArrivalProcess, WorkloadSpec
from repro.workloads.patterns import TrafficPattern


class CompositePattern(TrafficPattern):
    """A weighted mixture of traffic patterns.

    All sub-patterns must be built over the same topology; weights are
    normalized internally.
    """

    name = "composite"

    def __init__(
        self,
        patterns: Sequence[TrafficPattern],
        weights: Sequence[float],
    ) -> None:
        if not patterns:
            raise ConfigurationError("composite needs at least one sub-pattern")
        if len(patterns) != len(weights):
            raise ConfigurationError(
                f"{len(patterns)} patterns but {len(weights)} weights"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError(f"invalid weights {weights}")
        topologies = {id(p.topology) for p in patterns}
        if len(topologies) != 1:
            raise ConfigurationError("sub-patterns span different topologies")
        super().__init__(patterns[0].topology)
        self.patterns = list(patterns)
        total = float(sum(weights))
        self.weights = [w / total for w in weights]

    def pick_dst(self, src: str, rng: np.random.Generator) -> str:
        index = int(rng.choice(len(self.patterns), p=self.weights))
        return self.patterns[index].pick_dst(src, rng)


@dataclass(frozen=True)
class LoadPhase:
    """One piecewise-constant segment of a load profile."""

    until_s: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.until_s <= 0:
            raise ConfigurationError(f"phase boundary must be positive, got {self.until_s}")
        if self.multiplier < 0:
            raise ConfigurationError(f"negative load multiplier {self.multiplier}")


class LoadProfile:
    """A piecewise-constant rate multiplier over time.

    Phases must have strictly increasing boundaries; the last phase's
    multiplier extends to infinity.

    >>> profile = LoadProfile([LoadPhase(10.0, 0.5), LoadPhase(20.0, 2.0)])
    >>> profile.multiplier_at(5.0), profile.multiplier_at(15.0), profile.multiplier_at(99.0)
    (0.5, 2.0, 2.0)
    """

    def __init__(self, phases: Sequence[LoadPhase]) -> None:
        if not phases:
            raise ConfigurationError("load profile needs at least one phase")
        boundaries = [p.until_s for p in phases]
        if boundaries != sorted(boundaries) or len(set(boundaries)) != len(boundaries):
            raise ConfigurationError("phase boundaries must strictly increase")
        self.phases = list(phases)

    def multiplier_at(self, time_s: float) -> float:
        """The rate multiplier in force at ``time_s``."""
        for phase in self.phases:
            if time_s < phase.until_s:
                return phase.multiplier
        return self.phases[-1].multiplier

    @classmethod
    def step(cls, low: float, high: float, switch_at_s: float, end_s: float) -> "LoadProfile":
        """Convenience: ``low`` until ``switch_at_s``, then ``high``."""
        return cls([LoadPhase(switch_at_s, low), LoadPhase(end_s, high)])


class ModulatedArrivalProcess(ArrivalProcess):
    """A Poisson arrival process whose rate follows a load profile.

    Implemented by thinning: inter-arrival gaps are drawn at the base rate
    scaled by the multiplier *at draw time* — exact for piecewise-constant
    profiles when phases are long relative to mean gaps, which is the
    intended regime (diurnal steps, not microbursts).
    """

    def __init__(
        self,
        engine: EventEngine,
        pattern: TrafficPattern,
        spec: WorkloadSpec,
        sink: Callable[[str, str, float], object],
        rng: np.random.Generator,
        profile: LoadProfile,
        max_flows: Optional[int] = None,
    ) -> None:
        super().__init__(engine, pattern, spec, sink, rng, max_flows)
        self.profile = profile

    def _schedule_next(self, host: str) -> None:
        multiplier = self.profile.multiplier_at(self.engine.now)
        if multiplier <= 0:
            # Idle phase: re-check at the next phase boundary.
            boundary = next(
                (p.until_s for p in self.profile.phases if p.until_s > self.engine.now),
                None,
            )
            if boundary is None or boundary > self.spec.duration_s:
                return
            self.engine.schedule_at(boundary, lambda h=host: self._schedule_next(h))
            return
        rate = self.spec.arrival_rate_per_host * multiplier
        gap = float(self.rng.exponential(1.0 / rate))
        when = self.engine.now + gap
        if when > self.spec.duration_s:
            return
        self.engine.schedule_at(when, lambda h=host: self._arrive(h))
