"""Ownership & race analysis tests: call graph, registry, certificate.

Three layers:

* call-graph unit tests over small synthetic modules — resolution
  through one and two hops of indirection, self-method binding,
  receiver narrowing, escape propagation, boundary cuts;
* ownership-registry completeness — every registered attribute and
  writer name is audited against the real classes (AST scan plus
  ``FlowStore.__slots__``), so the table cannot silently rot;
* certification — the committed ``parallel_safety_baseline.json`` is a
  floor on ``proven_pure``, and the component-scoped roots (refill,
  daemon round, and the parallel backend's worker entry points) must
  hold.
"""

import ast
import json
from pathlib import Path

from repro.lint import LintConfig, load_config, run_lint, run_lint_result
from repro.lint.callgraph import OwnershipAnalysis, parallel_safety_document
from repro.lint.engine import ModuleContext
from repro.lint.ownership import (
    BOUNDARIES,
    COMPONENT_SCOPED,
    MERGE_POINTS,
    OWNERSHIP,
    state_by_attr,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "tests" / "goldens" / "parallel_safety_baseline.json"


def _ctx(module, source):
    path = Path("/synthetic") / (module.replace(".", "/") + ".py")
    return ModuleContext(path, module, source, ast.parse(source))


def _analyze(module, source):
    return OwnershipAnalysis([_ctx(module, source)])


def _all_findings(analysis, code):
    return [
        finding
        for per_path in analysis.findings[code].values()
        for finding in per_path
    ]


class TestCallGraph:
    def test_one_hop_indirection_reaches_module_function(self):
        analysis = _analyze(
            "repro.simulator.synth_one",
            "class SynthRound:\n"
            "    def _refill_dirty(self):\n"
            "        bump_totals(self)\n"
            "\n"
            "def bump_totals(sim):\n"
            "    sim._total_array[0] = 1.0\n",
        )
        key = ("repro.simulator.synth_one", None, "bump_totals")
        assert key in analysis.closure
        root, how = analysis.closure[key]
        assert root == "_refill_dirty"
        assert how == "via repro.simulator.synth_one.SynthRound._refill_dirty"
        findings = _all_findings(analysis, "RACE001")
        assert len(findings) == 1
        assert "_total_array" in findings[0].message

    def test_two_hop_indirection_chains_origin(self):
        analysis = _analyze(
            "repro.simulator.synth_two",
            "class SynthDeep:\n"
            "    def _refill_dirty(self):\n"
            "        stage_one(self)\n"
            "\n"
            "def stage_one(sim):\n"
            "    stage_two(sim)\n"
            "\n"
            "def stage_two(sim):\n"
            "    sim._eleph_array[2] = 3.0\n",
        )
        key = ("repro.simulator.synth_two", None, "stage_two")
        assert key in analysis.closure
        assert analysis.closure[key][1] == "via repro.simulator.synth_two.stage_one"
        findings = _all_findings(analysis, "RACE001")
        assert len(findings) == 1
        assert "stage_two writes _eleph_array" in findings[0].message

    def test_self_call_binds_to_own_class_first(self):
        analysis = _analyze(
            "repro.simulator.synth_self",
            "class SynthAlpha:\n"
            "    def _refill_dirty(self):\n"
            "        self.poke_state()\n"
            "\n"
            "    def poke_state(self):\n"
            "        self._failed_mask[0] = True\n"
            "\n"
            "class SynthBeta:\n"
            "    def poke_state(self):\n"
            "        self._peak_util_array[0] = 0.0\n",
        )
        in_closure = ("repro.simulator.synth_self", "SynthAlpha", "poke_state")
        out_of_closure = ("repro.simulator.synth_self", "SynthBeta", "poke_state")
        assert in_closure in analysis.closure
        assert out_of_closure not in analysis.closure
        findings = _all_findings(analysis, "RACE001")
        assert len(findings) == 1
        assert "_failed_mask" in findings[0].message

    def test_receiver_class_binding_narrows_method_resolution(self):
        analysis = _analyze(
            "repro.simulator.synth_narrow",
            "class HelperGood:\n"
            "    def flush(self):\n"
            "        self.counter = 1\n"
            "\n"
            "class HelperEvil:\n"
            "    def flush(self):\n"
            "        self._util_array[0] = 5.0\n"
            "\n"
            "class SynthOwner:\n"
            "    def __init__(self):\n"
            "        self._sink = HelperGood()\n"
            "\n"
            "    def _refill_dirty(self):\n"
            "        self._sink.flush()\n",
        )
        good = ("repro.simulator.synth_narrow", "HelperGood", "flush")
        evil = ("repro.simulator.synth_narrow", "HelperEvil", "flush")
        assert good in analysis.closure
        assert evil not in analysis.closure
        assert _all_findings(analysis, "RACE001") == []

    def test_escape_propagation_charges_the_caller(self):
        analysis = _analyze(
            "repro.simulator.synth_escape",
            "class SynthEscape:\n"
            "    def _refill_dirty(self):\n"
            "        zero_rows(self._total_array)\n"
            "\n"
            "def zero_rows(buffer):\n"
            "    buffer[0] = 0.0\n",
        )
        findings = _all_findings(analysis, "RACE001")
        assert len(findings) == 1
        assert "escape:zero_rows" in findings[0].message
        assert "_refill_dirty writes _total_array" in findings[0].message

    def test_boundary_cuts_the_traversal(self):
        analysis = _analyze(
            "repro.simulator.synth_stop",
            "class SynthStop:\n"
            "    def _refill_dirty(self):\n"
            "        self._request_realloc()\n"
            "\n"
            "    def _request_realloc(self):\n"
            "        self._load_array[0] = 9.9\n",
        )
        boundary = ("repro.simulator.synth_stop", "SynthStop", "_request_realloc")
        assert boundary not in analysis.closure
        assert _all_findings(analysis, "RACE001") == []

    def test_merge_point_may_read_dirty_state(self):
        analysis = _analyze(
            "repro.workloads.synth_dirty",
            "def peek_retired(net):\n"
            "    return len(net._retired_link_ids)\n"
            "\n"
            "def consume_dirty(net):\n"
            "    return list(net._retired_link_ids)\n",
        )
        findings = _all_findings(analysis, "RACE002")
        assert len(findings) == 1
        assert findings[0].line == 2  # peek_retired, not consume_dirty

    def test_creation_outside_owner_module_is_own001(self):
        analysis = _analyze(
            "repro.workloads.synth_own",
            "def hijack(net):\n"
            "    net._flow_sets = {}\n",
        )
        findings = _all_findings(analysis, "OWN001")
        assert len(findings) == 1
        assert "repro.simulator.components" in findings[0].message

    def test_shared_mutator_call_in_closure_is_race003(self):
        analysis = _analyze(
            "repro.simulator.synth_mut",
            "class SynthMut:\n"
            "    def _refill_dirty(self):\n"
            "        self._partition.rebuild(())\n",
        )
        findings = _all_findings(analysis, "RACE003")
        assert len(findings) == 1
        assert "rebuild()" in findings[0].message


def _declared_attrs(module_name):
    """self-assigned attrs + class annotations + literal __slots__."""
    path = SRC / (module_name.replace(".", "/") + ".py")
    attrs = set()
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
            if isinstance(target, ast.Name) and target.id == "__slots__":
                for constant in ast.walk(node):
                    if isinstance(constant, ast.Constant) and isinstance(
                        constant.value, str
                    ):
                        attrs.add(constant.value)
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    attrs.add(item.target.id)
    return attrs


def _all_function_names():
    names = set()
    for path in (SRC / "repro").rglob("*.py"):
        for node in ast.walk(ast.parse(path.read_text())):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
    return names


class TestOwnershipRegistry:
    def test_every_registered_attr_exists_on_its_owner(self):
        from repro.simulator.flowstore import FlowStore

        slots = set(FlowStore.__slots__)
        for state in OWNERSHIP:
            if state.owner_class == "FlowStore":
                assert state.attr in slots, state.name
                continue
            declared = set()
            for module in state.owner_modules:
                declared |= _declared_attrs(module)
            assert state.attr in declared, state.name

    def test_every_writer_is_a_real_function(self):
        names = _all_function_names()
        for state in OWNERSHIP:
            for writer in state.writers:
                assert writer in names, f"{state.name}: writer {writer}"

    def test_attr_index_is_unique_and_complete(self):
        by_attr = state_by_attr()
        assert len(by_attr) == len(OWNERSHIP)
        for state in OWNERSHIP:
            assert by_attr[state.attr] is state

    def test_roots_merge_points_and_boundaries_are_real(self):
        names = _all_function_names()
        for name in (*COMPONENT_SCOPED, *MERGE_POINTS, *BOUNDARIES):
            assert name in names, name


class TestCertificate:
    def test_src_repro_certifies_against_baseline(self):
        result = run_lint_result(
            [str(SRC / "repro")], load_config(SRC)
        )
        analysis = result.program.cache.get("ownership")
        if analysis is None:
            analysis = OwnershipAnalysis(result.program.contexts)
        document = parallel_safety_document(analysis)
        assert document["ok"] is True, [
            entry for entry in document["functions"] if not entry["pure"]
        ]
        baseline = json.loads(BASELINE.read_text())
        missing = set(baseline["proven_pure"]) - set(document["proven_pure"])
        assert not missing, f"component purity regressed: {sorted(missing)}"
        for root in (
            "repro.simulator.network.Network._refill_dirty",
            "repro.core.daemon.HostDaemon._schedule_one_arrays",
            "repro.simulator.parallel._fill_bucket_worker",
            "repro.simulator.parallel._fill_bucket_worker_shm",
            "repro.simulator.network.Network.batch_path_state_arrays",
        ):
            assert root in document["proven_pure"], root

    def test_document_shape(self):
        analysis = _analyze(
            "repro.simulator.synth_doc",
            "class SynthDoc:\n"
            "    def _refill_dirty(self):\n"
            "        return None\n",
        )
        document = parallel_safety_document(analysis)
        assert document["tool"] == "dardlint"
        assert document["report"] == "parallel-safety"
        assert document["component_scoped"] == list(COMPONENT_SCOPED)
        assert document["ok"] is True
        assert len(document["shared_state"]) == len(OWNERSHIP)
        assert document["proven_pure"] == [
            "repro.simulator.synth_doc.SynthDoc._refill_dirty"
        ]

    def test_single_module_config_fallback(self):
        # A lone-context lint (no program attached) still runs the
        # parallelism rules through the per-context fallback path.
        findings, _ = run_lint(
            [str(SRC / "repro" / "simulator" / "network.py")],
            LintConfig(),
        )
        assert [f for f in findings if f.code.startswith("RACE")] == []
