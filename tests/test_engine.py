"""Tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.simulator import EventEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        log = []
        engine.schedule_at(3.0, lambda: log.append("c"))
        engine.schedule_at(1.0, lambda: log.append("a"))
        engine.schedule_at(2.0, lambda: log.append("b"))
        engine.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        engine = EventEngine()
        log = []
        engine.schedule_at(1.0, lambda: log.append("first"))
        engine.schedule_at(1.0, lambda: log.append("second"))
        engine.run_until(1.0)
        assert log == ["first", "second"]

    def test_clock_advances_to_end_time(self):
        engine = EventEngine()
        engine.run_until(5.0)
        assert engine.now == 5.0

    def test_past_scheduling_rejected(self):
        engine = EventEngine()
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, lambda: None)

    def test_events_beyond_horizon_not_fired(self):
        engine = EventEngine()
        log = []
        engine.schedule_at(10.0, lambda: log.append("late"))
        engine.run_until(5.0)
        assert log == []
        engine.run_until(10.0)
        assert log == ["late"]

    def test_zero_delay_event_fires_at_now(self):
        engine = EventEngine()
        log = []
        engine.schedule_at(1.0, lambda: engine.schedule_in(0.0, lambda: log.append(engine.now)))
        engine.run_until(1.0)
        assert log == [1.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = EventEngine()
        log = []
        handle = engine.schedule_at(1.0, lambda: log.append("x"))
        handle.cancel()
        engine.run_until(2.0)
        assert log == []

    def test_pending_counts_exclude_cancelled(self):
        engine = EventEngine()
        keep = engine.schedule_at(1.0, lambda: None)
        drop = engine.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert engine.pending_events == 1

    def test_double_cancel_decrements_once(self):
        engine = EventEngine()
        engine.schedule_at(1.0, lambda: None)
        drop = engine.schedule_at(2.0, lambda: None)
        drop.cancel()
        drop.cancel()
        assert engine.pending_events == 1
        assert engine.pending_events == engine.audit_pending_events()

    def test_cancel_after_fire_does_not_corrupt_count(self):
        engine = EventEngine()
        fired = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(5.0, lambda: None)
        engine.run_until(2.0)
        fired.cancel()  # stale handle: event already fired and was counted
        assert engine.pending_events == 1
        assert engine.pending_events == engine.audit_pending_events()


class TestPendingEventsCounter:
    """The O(1) live-event counter must always agree with a heap scan."""

    def _check(self, engine):
        assert engine.pending_events == engine.audit_pending_events()

    def test_counter_tracks_schedule_cancel_fire(self):
        engine = EventEngine()
        self._check(engine)
        handles = [engine.schedule_at(float(t), lambda: None) for t in range(1, 6)]
        self._check(engine)
        assert engine.pending_events == 5
        handles[1].cancel()
        handles[3].cancel()
        self._check(engine)
        assert engine.pending_events == 3
        engine.run_until(2.5)  # fires t=1, skips cancelled t=2
        self._check(engine)
        assert engine.pending_events == 2
        engine.run_until_idle()
        self._check(engine)
        assert engine.pending_events == 0

    def test_counter_through_periodic_and_chained_events(self):
        engine = EventEngine()
        engine.schedule_every(1.0, lambda: engine.pending_events)
        engine.schedule_at(2.5, lambda: engine.schedule_in(0.25, lambda: None))
        engine.run_until(4.0)
        self._check(engine)
        # The periodic reschedules itself: exactly one live event remains.
        assert engine.pending_events == 1

    def test_counter_when_callback_cancels_future_event(self):
        engine = EventEngine()
        victim = engine.schedule_at(3.0, lambda: None)
        engine.schedule_at(1.0, victim.cancel)
        engine.run_until_idle()
        self._check(engine)
        assert engine.pending_events == 0


class TestPeriodic:
    def test_fixed_interval(self):
        engine = EventEngine()
        times = []
        engine.schedule_every(2.0, lambda: times.append(engine.now))
        engine.run_until(7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_jitter_added_each_round(self):
        engine = EventEngine()
        times = []
        engine.schedule_every(5.0, lambda: times.append(engine.now), jitter=lambda: 1.0)
        engine.run_until(20.0)
        assert times == [6.0, 12.0, 18.0]

    def test_start_delay(self):
        engine = EventEngine()
        times = []
        engine.schedule_every(5.0, lambda: times.append(engine.now), start_delay=1.0)
        engine.run_until(12.0)
        assert times == [1.0, 6.0, 11.0]

    def test_invalid_interval(self):
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.schedule_every(0.0, lambda: None)


class TestRunUntilIdle:
    def test_drains_chained_events(self):
        engine = EventEngine()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                engine.schedule_in(1.0, lambda: chain(n + 1))

        engine.schedule_in(1.0, lambda: chain(0))
        engine.run_until_idle()
        assert log == [0, 1, 2, 3]

    def test_events_processed_counter(self):
        engine = EventEngine()
        for _ in range(4):
            engine.schedule_in(1.0, lambda: None)
        engine.run_until_idle()
        assert engine.events_processed == 4
