"""Command-line interface: ``dard`` (or ``python -m repro``).

Subcommands:

* ``dard list`` — list reproducible experiments;
* ``dard run <experiment-id> [--seed N] [--duration S]`` — run one of the
  paper's tables/figures and print the rendered result;
* ``dard compare --topology ... --pattern ... --rate ...`` — one-off
  comparison of any scheduler subset on any topology.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.common.units import MB, MBPS
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.metrics import improvement
from repro.experiments.report import render_table
from repro.experiments.runner import SCHEDULERS, ScenarioConfig, run_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dard",
        description="DARD (ICDCS 2012) reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    run_cmd = sub.add_parser("run", help="run one experiment by id")
    run_cmd.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument(
        "--duration", type=float, default=None, help="override duration in seconds"
    )
    run_cmd.add_argument("--csv", default=None, help="also write the rows to this CSV file")
    run_cmd.add_argument("--json", default=None, help="also write the full output to this JSON file")

    analyze = sub.add_parser("analyze", help="structural report of a topology")
    analyze.add_argument(
        "--topology", default="fattree", choices=["fattree", "clos", "threetier"]
    )
    analyze.add_argument("--pods", type=int, default=4, help="fat-tree p")
    analyze.add_argument("--d", type=int, default=4, help="Clos D_I = D_A")
    analyze.add_argument("--bandwidth-mbps", type=float, default=1000.0)

    run_config = sub.add_parser(
        "run-config", help="run a scenario described by a JSON config file"
    )
    run_config.add_argument("config", help="path to a scenario JSON file")
    run_config.add_argument("--records-csv", default=None,
                            help="write per-flow records to this CSV")

    verify = sub.add_parser(
        "verify", help="verify addressing + switch tables forward every path"
    )
    verify.add_argument(
        "--topology", default="fattree", choices=["fattree", "clos", "threetier"]
    )
    verify.add_argument("--pods", type=int, default=4, help="fat-tree p")
    verify.add_argument("--d", type=int, default=4, help="Clos D_I = D_A")
    verify.add_argument("--max-pairs", type=int, default=500)

    compare = sub.add_parser("compare", help="ad-hoc scheduler comparison")
    compare.add_argument(
        "--topology", default="fattree", choices=["fattree", "clos", "threetier"]
    )
    compare.add_argument("--pods", type=int, default=4, help="fat-tree p")
    compare.add_argument(
        "--pattern", default="stride", choices=["random", "staggered", "stride"]
    )
    compare.add_argument(
        "--schedulers", nargs="+", default=["ecmp", "dard"], choices=sorted(SCHEDULERS)
    )
    compare.add_argument("--rate", type=float, default=0.06, help="flows/s per host")
    compare.add_argument("--duration", type=float, default=90.0)
    compare.add_argument("--size-mb", type=float, default=128.0)
    compare.add_argument("--bandwidth-mbps", type=float, default=100.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--paired",
        action="store_true",
        help="also report per-flow paired statistics against the first scheduler",
    )
    return parser


def _cmd_list() -> int:
    rows = [
        {"experiment": name, "what": (fn.__doc__ or "").strip().splitlines()[0]}
        for name, fn in sorted(EXPERIMENTS.items())
    ]
    print(render_table(rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {"seed": args.seed}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    started = time.time()
    output = run_experiment(args.experiment, **kwargs)
    print(output.render())
    print(f"\n(ran in {time.time() - started:.1f}s wall time)")
    if args.csv:
        from repro.analysis import rows_to_csv

        rows_to_csv(output.rows, args.csv)
        print(f"rows written to {args.csv}")
    if args.json:
        from repro.analysis import results_to_json

        results_to_json(output, args.json)
        print(f"output written to {args.json}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_topology
    from repro.topology import build_topology

    params = {"link_bandwidth_bps": args.bandwidth_mbps * MBPS}
    if args.topology == "fattree":
        params["p"] = args.pods
    elif args.topology == "clos":
        params["d_i"] = args.d
        params["d_a"] = args.d
    topo = build_topology(args.topology, **params)
    print(repr(topo))
    print(analyze_topology(topo).render())
    return 0


def _cmd_run_config(args: argparse.Namespace) -> int:
    from repro.experiments import load_config
    from repro.experiments.metrics import summarize_fct, summarize_path_switches

    config = load_config(args.config)
    result = run_scenario(config)
    print(f"scheduler={config.scheduler} topology={config.topology} "
          f"pattern={config.pattern} seed={config.seed}")
    print(f"  flows : {len(result.records)} of {result.flows_generated} generated")
    print(f"  FCT   : {summarize_fct(result.fcts)}")
    print(f"  paths : {summarize_path_switches(result.path_switches)}")
    print(f"  ctrl  : {result.control_bytes / 1e3:.1f} KB "
          f"({result.control_bytes_per_second:.0f} B/s)")
    if args.records_csv:
        from repro.analysis import records_to_csv

        n = records_to_csv(result.records, args.records_csv)
        print(f"  wrote {n} records to {args.records_csv}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.addressing import HierarchicalAddressing, PathCodec
    from repro.switches import SwitchFabric, verify_fabric
    from repro.topology import build_topology

    params = {}
    if args.topology == "fattree":
        params["p"] = args.pods
    elif args.topology == "clos":
        params["d_i"] = args.d
        params["d_a"] = args.d
    topo = build_topology(args.topology, **params)
    addressing = HierarchicalAddressing(topo)
    fabric = SwitchFabric(addressing)
    report = verify_fabric(fabric, PathCodec(addressing), max_pairs=args.max_pairs)
    print(repr(topo))
    print(report.render())
    return 0 if report.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    topology_params = {"link_bandwidth_bps": args.bandwidth_mbps * MBPS}
    if args.topology == "fattree":
        topology_params["p"] = args.pods
    rows = []
    results = []
    baseline = None
    for scheduler in args.schedulers:
        result = run_scenario(
            ScenarioConfig(
                topology=args.topology,
                topology_params=topology_params,
                pattern=args.pattern,
                scheduler=scheduler,
                arrival_rate_per_host=args.rate,
                duration_s=args.duration,
                flow_size_bytes=args.size_mb * MB,
                seed=args.seed,
            )
        )
        results.append((scheduler, result))
        if baseline is None:
            baseline = result.mean_fct
        rows.append(
            {
                "scheduler": scheduler,
                "flows": len(result.records),
                "mean_fct_s": result.mean_fct,
                "vs_first": improvement(baseline, result.mean_fct),
                "control_kb": result.control_bytes / 1e3,
            }
        )
    print(render_table(rows))
    if args.paired and len(results) > 1:
        from repro.experiments import paired_comparison

        first_name, first = results[0]
        print(f"\npaired per-flow statistics (vs {first_name}):")
        for name, result in results[1:]:
            comparison = paired_comparison(first, result)
            print(f"  {name:14s} {comparison.summary()}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "run-config":
        return _cmd_run_config(args)
    if args.command == "verify":
        return _cmd_verify(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
