"""Tests for trace-driven workloads (record / save / load / replay)."""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.baselines import EcmpScheduler
from repro.scheduling import SchedulerContext
from repro.simulator import EventEngine, Network
from repro.topology import FatTree
from repro.workloads import (
    ArrivalProcess,
    StridePattern,
    TraceEntry,
    TraceRecorder,
    TraceReplay,
    WorkloadSpec,
    load_trace,
    save_trace,
)


def entry(t, src="h_0_0_0", dst="h_1_0_0", size=1 * MB):
    return TraceEntry(time_s=t, src=src, dst=dst, size_bytes=size)


class TestTraceEntry:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            entry(-1.0)
        with pytest.raises(ConfigurationError):
            TraceEntry(0.0, "a", "a", 1.0)
        with pytest.raises(ConfigurationError):
            TraceEntry(0.0, "a", "b", 0.0)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        entries = [entry(2.0), entry(1.0, dst="h_2_0_0"), entry(3.0)]
        path = tmp_path / "trace.csv"
        assert save_trace(entries, path) == 3
        loaded = load_trace(path)
        assert [e.time_s for e in loaded] == [1.0, 2.0, 3.0]  # sorted
        assert loaded[0].dst == "h_2_0_0"

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("when,who\n1,2\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)


_TRACE_HOSTS = ["h_0_0_0", "h_0_0_1", "h_1_0_0", "h_2_0_0", "h_3_0_1"]

_entry_tuples = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.sampled_from(_TRACE_HOSTS),
    st.sampled_from(_TRACE_HOSTS),
    st.floats(min_value=1e-3, max_value=1e15, allow_nan=False, allow_infinity=False),
).filter(lambda t: t[1] != t[2])


class TestTraceProperties:
    @given(st.lists(_entry_tuples, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_save_load_round_trip_bit_exact(self, tuples):
        """Arbitrary entries survive save/load with every float bit-exact."""
        entries = [TraceEntry(t, s, d, b) for t, s, d, b in tuples]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.csv"
            assert save_trace(entries, path) == len(entries)
            loaded = load_trace(path)
        # Both save and load sort (stably) by time, so equality holds
        # entry for entry — including exact float identity, since Python
        # prints shortest-round-trip reprs.
        assert loaded == sorted(entries, key=lambda e: e.time_s)


class TestMalformedRows:
    """Every malformed row points at its own line (satellite contract)."""

    def _write(self, tmp_path, rows):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,src,dst,size_bytes\n" + "".join(r + "\n" for r in rows)
        )
        return path

    def test_short_row_names_line(self, tmp_path):
        path = self._write(
            tmp_path, ["1.0,h_0_0_0,h_1_0_0,100", "2.0,h_0_0_0,h_1_0_0"]
        )
        with pytest.raises(ConfigurationError, match="line 3"):
            load_trace(path)

    def test_negative_time_names_line(self, tmp_path):
        path = self._write(tmp_path, ["-1.0,h_0_0_0,h_1_0_0,100"])
        with pytest.raises(ConfigurationError, match="line 2"):
            load_trace(path)

    def test_self_flow_names_line(self, tmp_path):
        path = self._write(
            tmp_path, ["1.0,h_0_0_0,h_1_0_0,100", "2.0,h_2_0_0,h_2_0_0,100"]
        )
        with pytest.raises(ConfigurationError, match="line 3"):
            load_trace(path)

    def test_unparsable_number_names_line(self, tmp_path):
        path = self._write(tmp_path, ["1.0,h_0_0_0,h_1_0_0,banana"])
        with pytest.raises(ConfigurationError, match="line 2"):
            load_trace(path)

    def test_empty_value_names_line(self, tmp_path):
        path = self._write(tmp_path, ["1.0,,h_1_0_0,100"])
        with pytest.raises(ConfigurationError, match="line 2"):
            load_trace(path)


class TestReplay:
    def _scheduler(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        ctx = SchedulerContext(
            network=Network(topo),
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )
        scheduler = EcmpScheduler()
        scheduler.attach(ctx)
        return ctx, scheduler

    def test_replay_fires_at_recorded_times(self):
        ctx, scheduler = self._scheduler()
        entries = [entry(1.0), entry(2.5, src="h_0_0_1", dst="h_2_0_0")]
        replay = TraceReplay(ctx.engine, ctx.topology, entries, scheduler.place)
        replay.start()
        ctx.engine.run_until(5.0)
        assert replay.flows_replayed == 2
        starts = sorted(f.start_time for f in ctx.network.records + ctx.network.active_flows())
        assert starts == [1.0, 2.5]

    def test_unknown_host_rejected(self):
        ctx, scheduler = self._scheduler()
        with pytest.raises(ConfigurationError):
            TraceReplay(ctx.engine, ctx.topology, [entry(1.0, src="ghost")], scheduler.place)

    def test_duration(self):
        ctx, scheduler = self._scheduler()
        replay = TraceReplay(ctx.engine, ctx.topology, [entry(1.0), entry(9.0)], scheduler.place)
        assert replay.duration_s == 9.0
        assert TraceReplay(ctx.engine, ctx.topology, [], scheduler.place).duration_s == 0.0


class TestRecorder:
    def test_record_then_replay_identical(self, tmp_path):
        """Record a Poisson run, replay it: flow sets are identical."""
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        ctx = SchedulerContext(
            network=Network(topo),
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )
        scheduler = EcmpScheduler()
        scheduler.attach(ctx)
        recorder = TraceRecorder(ctx.engine, scheduler.place)
        process = ArrivalProcess(
            engine=ctx.engine,
            pattern=StridePattern(topo),
            spec=WorkloadSpec(arrival_rate_per_host=0.2, duration_s=10.0, flow_size_bytes=4 * MB),
            sink=recorder,
            rng=np.random.default_rng(5),
        )
        process.start()
        ctx.engine.run_until(15.0)
        path = tmp_path / "recorded.csv"
        save_trace(recorder.entries, path)

        # Fresh stack, replay the file.
        topo2 = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        ctx2 = SchedulerContext(
            network=Network(topo2),
            codec=PathCodec(HierarchicalAddressing(topo2)),
            rng=np.random.default_rng(0),
        )
        scheduler2 = EcmpScheduler()
        scheduler2.attach(ctx2)
        replay = TraceReplay(ctx2.engine, topo2, load_trace(path), scheduler2.place)
        replay.start()
        ctx2.engine.run_until(15.0)

        original = sorted((e.time_s, e.src, e.dst) for e in recorder.entries)
        replayed = sorted(
            (f.start_time, f.src, f.dst)
            for f in list(ctx2.network.records) + ctx2.network.active_flows()
        )
        assert [(s, d) for _, s, d in original] == [(s, d) for _, s, d in replayed]
        assert replay.flows_replayed == len(recorder.entries)

    def test_record_then_replay_bit_identical_records(self, tmp_path):
        """A recorded live run replays to byte-identical FlowRecords.

        The replayed stack consumes the same scheduler RNG stream in the
        same order (arrivals land at the same instants), so not just the
        flow set but every completed record — FCT endpoints, paths
        taken, retransmissions — must match bit for bit.
        """

        def run(sink_wrapper, arrivals_for):
            topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
            ctx = SchedulerContext(
                network=Network(topo),
                codec=PathCodec(HierarchicalAddressing(topo)),
                rng=np.random.default_rng(7),
            )
            scheduler = EcmpScheduler()
            scheduler.attach(ctx)
            sink = sink_wrapper(ctx, scheduler)
            arrivals_for(ctx, sink)
            ctx.engine.run_until(120.0)
            return ctx, sink

        def live_arrivals(ctx, sink):
            process = ArrivalProcess(
                engine=ctx.engine,
                pattern=StridePattern(ctx.topology),
                spec=WorkloadSpec(
                    arrival_rate_per_host=0.2, duration_s=8.0, flow_size_bytes=4 * MB
                ),
                sink=sink,
                rng=np.random.default_rng(11),
            )
            process.start()

        ctx1, recorder = run(
            lambda ctx, sched: TraceRecorder(ctx.engine, sched.place), live_arrivals
        )
        path = tmp_path / "run.csv"
        save_trace(recorder.entries, path)

        def replay_arrivals(ctx, sink):
            TraceReplay(ctx.engine, ctx.topology, load_trace(path), sink).start()

        ctx2, _ = run(lambda ctx, sched: sched.place, replay_arrivals)

        records1 = list(ctx1.network.records)
        records2 = list(ctx2.network.records)
        assert records1  # the run must actually complete flows
        assert records1 == records2
