"""Tests for composite patterns through the runner and the custom-scheduler
extension path the examples demonstrate."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.experiments import ScenarioConfig, run_scenario
from repro.scheduling import Scheduler, SchedulerContext
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree
from repro.workloads import CompositePattern, make_pattern


class TestCompositeViaMakePattern:
    def test_two_entry_mix(self, fattree4):
        pattern = make_pattern(
            "composite", fattree4, mix=[["staggered", 0.5], ["stride", 0.5]]
        )
        assert isinstance(pattern, CompositePattern)
        assert pattern.weights == [0.5, 0.5]

    def test_three_entry_mix_with_kwargs(self, fattree4):
        pattern = make_pattern(
            "composite", fattree4,
            mix=[["staggered", 0.7, {"tor_p": 0.9, "pod_p": 0.05}], ["random", 0.3]],
        )
        assert pattern.patterns[0].tor_p == 0.9

    def test_missing_mix_rejected(self, fattree4):
        with pytest.raises(ConfigurationError):
            make_pattern("composite", fattree4)

    def test_extra_kwargs_rejected(self, fattree4):
        with pytest.raises(ConfigurationError):
            make_pattern("composite", fattree4, mix=[["stride", 1.0]], step=2)

    def test_malformed_entry_rejected(self, fattree4):
        with pytest.raises(ConfigurationError):
            make_pattern("composite", fattree4, mix=[["stride"]])

    def test_runner_accepts_composite(self):
        result = run_scenario(
            ScenarioConfig(
                topology="fattree",
                topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
                pattern="composite",
                pattern_params={"mix": [["staggered", 0.7], ["stride", 0.3]]},
                scheduler="ecmp",
                arrival_rate_per_host=0.05,
                duration_s=20.0,
                flow_size_bytes=16 * MB,
                seed=4,
            )
        )
        assert result.records


class LeastLoadedScheduler(Scheduler):
    """The examples' custom scheduler, inlined for testing the plug-in API."""

    name = "least-loaded"

    def choose_components(self, src, dst):
        network = self.ctx.network
        best_path, best_key = None, None
        for path in self.alive_paths(src, dst):
            full = self.ctx.topology.host_path(src, dst, path)
            loads = [
                network.link_state(u, v).total_flows for u, v in zip(full, full[1:])
            ]
            key = (max(loads), sum(loads))
            if best_key is None or key < best_key:
                best_key, best_path = key, path
        return [self.component_for(src, dst, best_path)]


class TestCustomSchedulerPlugin:
    def _ctx(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        return SchedulerContext(
            network=Network(topo),
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )

    def test_avoids_loaded_paths(self):
        ctx = self._ctx()
        scheduler = LeastLoadedScheduler()
        scheduler.attach(ctx)
        # Place four flows between the same pair: each should land on a
        # different path because earlier ones load their bottlenecks.
        flows = [scheduler.place("h_0_0_0", "h_1_0_0", 200 * MB) for _ in range(4)]
        paths = {tuple(f.switch_path()) for f in flows}
        assert len(paths) == 4

    def test_respects_failures_via_alive_paths(self):
        ctx = self._ctx()
        scheduler = LeastLoadedScheduler()
        scheduler.attach(ctx)
        ctx.network.fail_link("agg_0_0", "core_0_0")
        for _ in range(6):
            flow = scheduler.place("h_0_0_0", "h_1_0_0", 10 * MB)
            assert ctx.network.path_alive(flow.switch_path())

    def test_works_with_arrival_process_end_to_end(self):
        from repro.workloads import ArrivalProcess, StridePattern, WorkloadSpec

        ctx = self._ctx()
        scheduler = LeastLoadedScheduler()
        scheduler.attach(ctx)
        ArrivalProcess(
            engine=ctx.engine,
            pattern=StridePattern(ctx.topology),
            spec=WorkloadSpec(arrival_rate_per_host=0.1, duration_s=15.0,
                              flow_size_bytes=8 * MB),
            sink=scheduler.place,
            rng=np.random.default_rng(2),
        ).start()
        ctx.engine.run_until(60.0)
        assert ctx.network.records
        ctx.network.check_invariants()
