"""Regression tests for the network's reallocation telemetry surface."""

import pytest

from repro.common.units import MB, MBPS
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree

#: The complete ``perf_stats()`` surface, asserted in one place so the
#: docstring, the stats dict, and every ``stats.update(...)`` source
#: (flow store, parallel backend, detector, control-plane providers)
#: cannot drift apart silently again.
NETWORK_KEYS = {
    "realloc_calls", "realloc_requests", "realloc_coalesced", "realloc_sync",
    "realloc_demands", "filling_iterations", "realloc_time_s",
    "flows_started", "flows_completed", "reroutes", "num_links",
    "realloc_full", "realloc_incremental", "realloc_subset",
    "components_touched", "components_live", "component_rebuilds",
    "flows_rerated", "flows_preserved",
    "events_rescheduled", "events_preserved",
    "settle_time_s", "eta_time_s", "settle_batches",
}
STORE_KEYS = {
    "store_acquires", "store_capacity", "store_compactions", "store_grows",
    "store_live", "store_revivals", "store_rows",
}
PAR_KEYS = {
    "par_workers", "par_rounds", "par_tasks", "par_fanout_max", "par_nnz",
    "par_imbalance_max", "par_merge_wait_s", "par_cp_rounds", "par_cp_chunks",
}
DET_KEYS = {
    "det_predictive", "det_flows_seen", "det_samples",
    "det_early_promotions", "det_fallback_promotions",
    "det_mean_detection_age_s",
}
CP_KEYS = {
    "cp_vectorized", "cp_daemons", "cp_monitors_live", "cp_query_rounds",
    "cp_query_time_s", "cp_round_time_s", "cp_vector_rounds",
    "cp_scalar_rounds", "cp_shift_tails", "cp_shifts",
    "cp_registry_pairs", "cp_registry_rows", "cp_registry_queries",
    "cp_registry_cache_hits", "cp_registry_refreshes",
    "cp_registry_rows_refreshed", "cp_registry_rebuilds",
    "cp_registry_registrations",
}


@pytest.fixture
def topo():
    return FatTree(p=4, link_bandwidth_bps=100 * MBPS)


def _component(topo, src, dst, path_i=0):
    paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
    return FlowComponent(topo.host_path(src, dst, paths[path_i % len(paths)]))


class TestPerfStats:
    def test_counters_match_event_counts(self, topo):
        net = Network(topo)
        pairs = [
            ("h_0_0_0", "h_1_0_0"),
            ("h_0_0_1", "h_2_0_0"),
            ("h_0_1_0", "h_3_0_0"),
            ("h_1_0_1", "h_2_1_0"),
        ]
        flows = [
            net.start_flow(src, dst, 10 * MB, [_component(topo, src, dst)])
            for src, dst in pairs
        ]
        net.engine.run_until(1.0)
        net.reroute_flow(flows[0], [_component(topo, *pairs[0], path_i=1)])
        cable = next(
            (l.u, l.v)
            for l in topo.links()
            if topo.node(l.u).kind.is_switch and topo.node(l.v).kind.is_switch
        )
        net.fail_link(*cable)
        net.restore_link(*cable)
        net.engine.run_until(500.0)  # long enough for everything to finish

        stats = net.perf_stats()
        assert stats["flows_started"] == len(pairs)
        assert stats["flows_completed"] == len(pairs)
        assert stats["reroutes"] == 1
        assert stats["realloc_sync"] == 2  # one fail + one restore
        # Every executed reallocation is either a drained scheduled request
        # or a synchronous fail/restore call; coalesced requests never run.
        assert (
            stats["realloc_calls"]
            == stats["realloc_requests"] - stats["realloc_coalesced"] + stats["realloc_sync"]
        )
        # Starts, the reroute, and per-flow completions each filed a request.
        assert stats["realloc_requests"] >= len(pairs) + 1
        assert stats["realloc_calls"] >= 1
        assert stats["realloc_demands"] >= len(pairs)
        assert stats["filling_iterations"] >= 1
        assert stats["realloc_time_s"] > 0.0
        assert stats["num_links"] == len(net.link_index)

    def test_coalescing_counts_same_instant_requests(self, topo):
        """Several starts at the same instant fold into one reallocation."""
        net = Network(topo)
        for i in range(5):
            src, dst = f"h_0_0_{i % 2}", f"h_1_0_{i % 2}"
            net.start_flow(src, dst, 10 * MB, [_component(topo, src, dst, i)])
        net.engine.run_until(0.0)
        stats = net.perf_stats()
        assert stats["realloc_requests"] == 5
        assert stats["realloc_coalesced"] == 4
        assert stats["realloc_calls"] == 1

    def test_stats_start_at_zero(self, topo):
        net = Network(topo)
        stats = net.perf_stats()
        assert stats["realloc_calls"] == 0
        assert stats["realloc_time_s"] == 0.0
        assert stats["flows_started"] == 0


class TestKeyInventory:
    """The exact ``perf_stats()`` key surface, per configuration."""

    def test_base_network(self, topo):
        keys = set(Network(topo).perf_stats())
        assert keys == NETWORK_KEYS | STORE_KEYS | PAR_KEYS

    def test_predictive_detector_adds_det_keys(self, topo):
        net = Network(topo, elephant_detector="predictive")
        assert set(net.perf_stats()) == NETWORK_KEYS | STORE_KEYS | PAR_KEYS | DET_KEYS

    def test_parallel_backend_keeps_the_same_surface(self, topo):
        net = Network(topo, parallel_backend="threads", parallel_workers=2)
        stats = net.perf_stats()
        assert set(stats) == NETWORK_KEYS | STORE_KEYS | PAR_KEYS
        assert stats["par_workers"] == 2.0

    def test_serial_par_keys_are_zero_except_workers(self, topo):
        stats = Network(topo).perf_stats()
        assert stats["par_workers"] == 1.0
        for key in PAR_KEYS - {"par_workers"}:
            assert stats[key] == 0.0, key

    def test_dard_scenario_adds_cp_keys(self):
        from repro.experiments.runner import ScenarioConfig, run_scenario

        captured = []
        run_scenario(
            ScenarioConfig(
                topology="fattree",
                topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
                pattern="stride",
                scheduler="dard",
                arrival_rate_per_host=0.1,
                duration_s=4.0,
                flow_size_bytes=8 * MB,
                seed=11,
            ),
            instrument=captured.append,
        )
        assert set(captured[0].perf_stats()) == (
            NETWORK_KEYS | STORE_KEYS | PAR_KEYS | CP_KEYS
        )
