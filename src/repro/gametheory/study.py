"""Quantitative study of the congestion game's dynamics.

The paper proves convergence in *finitely many* steps (Theorem 2) and
argues the equilibrium's "gap to the optimal solution is likely to be
small in practice" (§1) without quantifying either. This module measures
both over random games whose route sets come from real fat-tree equal-cost
paths:

* steps to converge as a function of the number of flows, and
* the price of anarchy — min-BoNF at the reached Nash equilibrium over
  min-BoNF at the brute-forced optimum (small games only; the optimum is
  exponential to enumerate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.common.rng import RngStreams
from repro.common.units import GBPS, MBPS
from repro.topology.fattree import FatTree
from repro.topology.multirooted import MultiRootedTopology
from repro.gametheory.congestion_game import CongestionGame, GameFlow
from repro.gametheory.theorems import run_best_response_dynamics

#: Brute-forcing the optimum is |routes|^|flows|; cap the search space.
_BRUTE_FORCE_LIMIT = 100_000


@dataclass(frozen=True)
class ConvergenceRow:
    """Aggregate dynamics statistics for one game size."""

    num_flows: int
    trials: int
    mean_steps: float
    max_steps: int
    #: mean/worst Nash-vs-optimum min-BoNF ratio; None when too big to
    #: brute force.
    mean_poa: Optional[float]
    worst_poa: Optional[float]


def random_game_on(
    topology: MultiRootedTopology,
    num_flows: int,
    rng: np.random.Generator,
    delta_bps: float = 10 * MBPS,
) -> CongestionGame:
    """A game whose players route between random ToR pairs of ``topology``."""
    capacities = {}
    for u, v in topology.directed_links():
        if topology.node(u).kind.is_switch and topology.node(v).kind.is_switch:
            capacities[(u, v)] = topology.link(u, v).bandwidth_bps
    tors = sorted(topology.tors())
    flows: List[GameFlow] = []
    for fid in range(num_flows):
        src, dst = rng.choice(tors, size=2, replace=False)
        routes = tuple(
            tuple(zip(p, p[1:])) for p in topology.equal_cost_paths(src, dst)
        )
        flows.append(GameFlow(fid, routes))
    return CongestionGame(capacities, flows, delta_bps)


def _search_space(game: CongestionGame) -> int:
    size = 1
    for flow in game.flows:
        size *= len(flow.routes)
        if size > _BRUTE_FORCE_LIMIT:
            return size
    return size


def convergence_study(
    flow_counts=(2, 4, 8, 16),
    trials: int = 20,
    seed: int = 0,
    topology: Optional[MultiRootedTopology] = None,
) -> List[ConvergenceRow]:
    """Measure steps-to-Nash and price of anarchy per game size."""
    topo = topology if topology is not None else FatTree(p=4, link_bandwidth_bps=GBPS)
    rngs = RngStreams(seed)
    rows = []
    for num_flows in flow_counts:
        steps: List[int] = []
        ratios: List[float] = []
        brute_forceable = True
        for trial in range(trials):
            rng = rngs.stream(f"game:{num_flows}:{trial}")
            game = random_game_on(topo, num_flows, rng)
            result = run_best_response_dynamics(game, rng=rng)
            steps.append(result.num_steps)
            if brute_forceable and _search_space(game) <= _BRUTE_FORCE_LIMIT:
                optimum = game.global_optimum()
                reached = game.min_bonf(result.final)
                best = game.min_bonf(optimum)
                ratios.append(reached / best if best > 0 else 1.0)
            else:
                brute_forceable = False
        rows.append(
            ConvergenceRow(
                num_flows=num_flows,
                trials=trials,
                mean_steps=float(np.mean(steps)),
                max_steps=int(max(steps)),
                mean_poa=float(np.mean(ratios)) if ratios else None,
                worst_poa=float(min(ratios)) if ratios else None,
            )
        )
    return rows
