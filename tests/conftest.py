"""Shared fixtures: small topologies with their addressing and fabrics."""

import pytest

from repro.addressing import HierarchicalAddressing, PathCodec
from repro.common.units import MBPS
from repro.switches import SwitchFabric
from repro.topology import ClosNetwork, FatTree, ThreeTier


@pytest.fixture(scope="session")
def fattree4():
    """The paper's testbed topology: p=4 fat-tree at 100 Mbps."""
    return FatTree(p=4, link_bandwidth_bps=100 * MBPS)


@pytest.fixture(scope="session")
def clos44():
    """A small Clos network: D_I = D_A = 4, two hosts per ToR."""
    return ClosNetwork(d_i=4, d_a=4, hosts_per_tor=2, link_bandwidth_bps=100 * MBPS)


@pytest.fixture(scope="session")
def threetier_small():
    """A scaled 3-tier with the paper's oversubscription ratios."""
    return ThreeTier(
        num_cores=4,
        num_pods=2,
        aggs_per_pod=2,
        access_per_pod=6,
        hosts_per_access=5,
        link_bandwidth_bps=100 * MBPS,
    )


@pytest.fixture(scope="session")
def fattree4_addressing(fattree4):
    return HierarchicalAddressing(fattree4)


@pytest.fixture(scope="session")
def fattree4_codec(fattree4_addressing):
    return PathCodec(fattree4_addressing)


@pytest.fixture(scope="session")
def fattree4_fabric(fattree4_addressing):
    return SwitchFabric(fattree4_addressing)


@pytest.fixture(scope="session")
def clos44_addressing(clos44):
    return HierarchicalAddressing(clos44)


@pytest.fixture(scope="session")
def clos44_fabric(clos44_addressing):
    return SwitchFabric(clos44_addressing)
