"""Statement-order scope traversal for dardlint rules.

Several rules need the same traversal: walk every lexical scope of a
module in source order, keep :class:`~repro.lint.setlike.ScopeNames`
facts up to date as assignments execute, and offer each statement (and
every expression it directly contains) to a visitor callback. Compound
statements (``if``/``for``/``while``/``with``/``try``) share their
enclosing function's scope; nested ``def``/``class`` bodies start fresh
scopes, with set-annotated parameters pre-seeded.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Sequence

from repro.lint.setlike import ModuleSetFacts, ScopeNames, annotation_is_set

__all__ = ["walk_scopes"]

#: visitor(node, scope): called once per statement node and once per AST
#: node of each statement's own (header) expressions, in source order.
Visitor = Callable[[ast.AST, ScopeNames], None]


def _header_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The expressions evaluated by a statement itself (not nested bodies)."""
    if isinstance(stmt, ast.Assign):
        yield from stmt.targets
        yield stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        yield stmt.target
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, (ast.Expr, ast.Return)):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.target
        yield stmt.iter
    elif isinstance(stmt, (ast.While, ast.If)):
        yield stmt.test
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
            if item.optional_vars is not None:
                yield item.optional_vars
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield stmt.exc
        if stmt.cause is not None:
            yield stmt.cause
    elif isinstance(stmt, ast.Assert):
        yield stmt.test
        if stmt.msg is not None:
            yield stmt.msg
    elif isinstance(stmt, ast.Delete):
        yield from stmt.targets
    elif isinstance(stmt, ast.Try):
        for handler in stmt.handlers:
            if handler.type is not None:
                yield handler.type


def _nested_bodies(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    """Statement lists executed in the *same* scope as ``stmt``."""
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While, ast.If)):
        yield stmt.body
        yield stmt.orelse
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        yield stmt.body
    elif isinstance(stmt, ast.Try):
        yield stmt.body
        for handler in stmt.handlers:
            yield handler.body
        yield stmt.orelse
        yield stmt.finalbody


def _clear_bound_names(stmt: ast.stmt, scope: ScopeNames) -> None:
    """Loop/with targets bind elements, not the set itself — clear facts."""
    targets: List[ast.expr] = []
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets.append(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets.extend(
            item.optional_vars for item in stmt.items if item.optional_vars is not None
        )
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                scope.names[node.id] = False


def _walk_body(
    body: Sequence[ast.stmt], scope: ScopeNames, visit: Visitor
) -> None:
    for stmt in body:
        scope.observe(stmt)
        _clear_bound_names(stmt, scope)
        visit(stmt, scope)
        for header in _header_exprs(stmt):
            for node in ast.walk(header):
                visit(node, scope)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = ScopeNames(scope.facts)
            args = stmt.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *filter(None, (args.vararg, args.kwarg)),
            ):
                inner.names[arg.arg] = annotation_is_set(arg.annotation)
            _walk_body(stmt.body, inner, visit)
        elif isinstance(stmt, ast.ClassDef):
            _walk_body(stmt.body, ScopeNames(scope.facts), visit)
        else:
            for nested in _nested_bodies(stmt):
                _walk_body(nested, scope, visit)


def walk_scopes(tree: ast.Module, facts: ModuleSetFacts, visit: Visitor) -> None:
    """Drive ``visit`` over every scope of ``tree`` in statement order."""
    _walk_body(tree.body, ScopeNames(facts), visit)
