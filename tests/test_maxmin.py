"""Tests for weighted max-min fair allocation (progressive filling)."""

import pytest

from repro.common.errors import SimulationError
from repro.simulator.maxmin import link_utilizations, maxmin_allocate


def links(*names):
    return tuple((n, n + "'") for n in names)


class TestBasicAllocation:
    def test_single_flow_gets_full_link(self):
        rates = maxmin_allocate([(links("a"), 1.0)], {("a", "a'"): 100.0})
        assert rates == [100.0]

    def test_two_flows_share_equally(self):
        demands = [(links("a"), 1.0), (links("a"), 1.0)]
        rates = maxmin_allocate(demands, {("a", "a'"): 100.0})
        assert rates == [50.0, 50.0]

    def test_classic_three_flow_example(self):
        """Two links: flow0 uses both, flow1 uses link a, flow2 uses link b.
        With cap(a)=100, cap(b)=1000: flow0 and flow1 split a (50/50),
        flow2 gets the rest of b (950)."""
        cap = {("a", "a'"): 100.0, ("b", "b'"): 1000.0}
        demands = [
            (links("a", "b"), 1.0),
            (links("a"), 1.0),
            (links("b"), 1.0),
        ]
        rates = maxmin_allocate(demands, cap)
        assert rates[0] == pytest.approx(50.0)
        assert rates[1] == pytest.approx(50.0)
        assert rates[2] == pytest.approx(950.0)

    def test_empty_demands(self):
        assert maxmin_allocate([], {("a", "a'"): 10.0}) == []

    def test_bottleneck_progression(self):
        """A flow not constrained by the first bottleneck keeps filling."""
        cap = {("a", "a'"): 30.0, ("b", "b'"): 100.0}
        demands = [(links("a"), 1.0), (links("a"), 1.0), (links("a", "b"), 1.0), (links("b"), 1.0)]
        rates = maxmin_allocate(demands, cap)
        assert rates[0] == rates[1] == rates[2] == pytest.approx(10.0)
        assert rates[3] == pytest.approx(90.0)


class TestWeights:
    def test_weighted_split(self):
        demands = [(links("a"), 3.0), (links("a"), 1.0)]
        rates = maxmin_allocate(demands, {("a", "a'"): 100.0})
        assert rates == [pytest.approx(75.0), pytest.approx(25.0)]

    def test_weights_only_matter_relatively(self):
        cap = {("a", "a'"): 100.0}
        small = maxmin_allocate([(links("a"), 0.2), (links("a"), 0.1)], cap)
        big = maxmin_allocate([(links("a"), 2.0), (links("a"), 1.0)], cap)
        assert small == pytest.approx(big)


class TestInvariantsAndErrors:
    def test_capacity_never_exceeded(self):
        cap = {("a", "a'"): 50.0, ("b", "b'"): 70.0, ("c", "c'"): 10.0}
        demands = [
            (links("a", "b"), 1.0),
            (links("b", "c"), 1.0),
            (links("a", "c"), 2.0),
            (links("b"), 1.0),
        ]
        rates = maxmin_allocate(demands, cap)
        utils = link_utilizations(demands, rates, cap)
        assert all(u <= 1.0 + 1e-9 for u in utils.values())

    def test_all_rates_positive(self):
        cap = {("a", "a'"): 50.0, ("b", "b'"): 1.0}
        demands = [(links("a", "b"), 1.0)] * 5 + [(links("a"), 1.0)] * 3
        rates = maxmin_allocate(demands, cap)
        assert all(r > 0 for r in rates)

    def test_empty_route_rejected(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([((), 1.0)], {})

    def test_unknown_link_rejected(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([(links("zz"), 1.0)], {("a", "a'"): 5.0})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([(links("a"), 0.0)], {("a", "a'"): 5.0})

    def test_zero_capacity_in_use_rejected(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([(links("a"), 1.0)], {("a", "a'"): 0.0})

    def test_bottleneck_links_fully_used(self):
        """Max-min property: every flow crosses at least one saturated link."""
        cap = {("a", "a'"): 40.0, ("b", "b'"): 90.0}
        demands = [(links("a"), 1.0), (links("a", "b"), 1.0), (links("b"), 1.0)]
        rates = maxmin_allocate(demands, cap)
        utils = link_utilizations(demands, rates, cap)
        for (route, _), rate in zip(demands, rates):
            assert any(utils[link] >= 1.0 - 1e-9 for link in route)
