"""Tests for the ECMP, pVLB, Hedera, and TeXCP baselines."""

import numpy as np
import pytest

from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.baselines import (
    EcmpScheduler,
    HederaScheduler,
    PeriodicVlbScheduler,
    TexcpScheduler,
    estimate_demands,
)
from repro.baselines.ecmp import five_tuple_hash
from repro.baselines.hedera import PathSelector
from repro.baselines.texcp import TexcpAgent
from repro.scheduling import SchedulerContext
from repro.simulator import Network
from repro.topology import FatTree


def make_ctx(seed=0, p=4):
    topo = FatTree(p=p, link_bandwidth_bps=100 * MBPS)
    return SchedulerContext(
        network=Network(topo),
        codec=PathCodec(HierarchicalAddressing(topo)),
        rng=np.random.default_rng(seed),
    )


class TestFiveTupleHash:
    def test_deterministic(self):
        assert five_tuple_hash("a", "b", 10, 20, 4) == five_tuple_hash("a", "b", 10, 20, 4)

    def test_within_buckets(self):
        for sport in range(50):
            assert 0 <= five_tuple_hash("a", "b", sport, 80, 7) < 7

    def test_spreads_over_buckets(self):
        seen = {five_tuple_hash("a", "b", sport, 80, 4) for sport in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            five_tuple_hash("a", "b", 1, 2, 0)


class TestEcmp:
    def test_single_static_path(self):
        ctx = make_ctx()
        scheduler = EcmpScheduler()
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 200 * MB)
        ctx.engine.run_until(30.0)
        assert flow.path_switches == 0
        assert len(flow.components) == 1

    def test_different_flows_can_collide(self):
        """The paper's core ECMP weakness: elephants hash onto one path."""
        ctx = make_ctx(seed=3)
        scheduler = EcmpScheduler()
        scheduler.attach(ctx)
        paths = set()
        for _ in range(30):
            flow = scheduler.place("h_0_0_0", "h_1_0_0", 1 * MB)
            paths.add(tuple(flow.switch_path()))
        # Hashing explores several paths over many flows...
        assert len(paths) > 1
        # ...but individual placements repeat (collisions exist).
        assert len(paths) < 30


class TestPeriodicVlb:
    def test_flows_repick_paths_periodically(self):
        ctx = make_ctx()
        scheduler = PeriodicVlbScheduler(repick_interval_s=10.0)
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 500 * MB)
        ctx.engine.run_until(41.0)
        # 4 re-pick rounds, each switching w.p. 3/4 -> virtually certain > 0.
        assert flow.path_switches > 0

    def test_same_tor_flows_not_repicked(self):
        ctx = make_ctx()
        scheduler = PeriodicVlbScheduler(repick_interval_s=5.0)
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_0_0_1", 500 * MB)
        ctx.engine.run_until(30.0)
        assert flow.path_switches == 0


class TestDemandEstimation:
    def test_single_flow_full_nic(self):
        assert estimate_demands([("a", "b")]) == [1.0]

    def test_sender_limited_split(self):
        # One sender, two receivers: sender NIC divides equally.
        demands = estimate_demands([("a", "b"), ("a", "c")])
        assert demands == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_receiver_limited_capping(self):
        # Three senders to one receiver: receiver NIC caps each at 1/3.
        demands = estimate_demands([("a", "d"), ("b", "d"), ("c", "d")])
        assert demands == [pytest.approx(1 / 3)] * 3

    def test_hedera_style_mixed_case(self):
        # a sends to b and c; d sends to c. Receiver c is contended.
        demands = estimate_demands([("a", "b"), ("a", "c"), ("d", "c")])
        for demand in demands:
            assert 0.0 < demand <= 1.0
        by_receiver_c = demands[1] + demands[2]
        assert by_receiver_c <= 1.0 + 1e-9

    def test_empty(self):
        assert estimate_demands([]) == []


class TestPathSelector:
    def test_resolves_deterministically(self, fattree4):
        paths = fattree4.equal_cost_paths("tor_0_0", "tor_1_0")
        selector = PathSelector(core=2)
        assert selector.apply(paths) == selector.apply(paths)

    def test_core_index_wraps(self, fattree4):
        paths = fattree4.equal_cost_paths("tor_0_0", "tor_1_0")
        assert PathSelector(core=1).apply(paths) == PathSelector(core=5).apply(paths)

    def test_distinct_cores_distinct_paths(self, fattree4):
        paths = fattree4.equal_cost_paths("tor_0_0", "tor_1_0")
        chosen = {PathSelector(core=i).apply(paths) for i in range(4)}
        assert len(chosen) == 4

    def test_intra_pod_selector(self, fattree4):
        paths = fattree4.equal_cost_paths("tor_0_0", "tor_0_1")
        assert PathSelector(core=0).apply(paths) in paths

    def test_clos_up_down_disambiguation(self, clos44):
        paths = clos44.equal_cost_paths("tor_0", "tor_2")
        combos = {
            PathSelector(core=c, up=u, down=d).apply(paths)
            for c in range(2) for u in range(2) for d in range(2)
        }
        assert len(combos) == 8  # every (core, up, down) combination distinct

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            PathSelector(core=0).apply([])


class TestHederaScheduler:
    def test_round_reassigns_elephants(self):
        ctx = make_ctx(seed=1)
        scheduler = HederaScheduler(annealing_iterations=300)
        scheduler.attach(ctx)
        # Create guaranteed collisions: several elephants between two pods.
        for k in range(2):
            for host_pair in [("h_0_0_0", "h_1_0_0"), ("h_0_0_1", "h_1_0_1"),
                              ("h_0_1_0", "h_1_1_0")]:
                scheduler.place(host_pair[0], host_pair[1], 400 * MB)
        ctx.engine.run_until(60.0)
        assert scheduler.ledger.total_bytes > 0  # reports flowed
        assert "report" in scheduler.ledger.bytes_by_kind

    def test_no_elephants_no_messages(self):
        ctx = make_ctx()
        scheduler = HederaScheduler()
        scheduler.attach(ctx)
        scheduler.place("h_0_0_0", "h_1_0_0", 1 * MB)  # finishes in <1s
        ctx.engine.run_until(20.0)
        assert scheduler.ledger.total_bytes == 0.0

    def test_spreads_colliding_elephants(self):
        """After a scheduling round, elephants should occupy distinct cores."""
        ctx = make_ctx(seed=2)
        scheduler = HederaScheduler(annealing_iterations=500)
        scheduler.attach(ctx)
        # Four flows from pod 0 to pod 1, one per ToR host pair.
        pairs = [("h_0_0_0", "h_1_0_0"), ("h_0_0_1", "h_1_0_1"),
                 ("h_0_1_0", "h_1_1_0"), ("h_0_1_1", "h_1_1_1")]
        flows = [scheduler.place(s, d, 800 * MB) for s, d in pairs]
        ctx.engine.run_until(40.0)
        # switch_path() is the full host path: (src, tor, agg, core, ...).
        cores = {f.switch_path()[3] for f in flows if f.active}
        assert len(cores) >= 3  # near-perfect spreading over the 4 cores


class TestTexcpScheduler:
    def test_flows_striped_across_all_paths(self):
        ctx = make_ctx()
        scheduler = TexcpScheduler()
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 100 * MB)
        assert len(flow.components) == 4
        assert sum(c.weight for c in flow.components) == pytest.approx(1.0)

    def test_same_tor_single_path(self):
        ctx = make_ctx()
        scheduler = TexcpScheduler()
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_0_0_1", 100 * MB)
        assert len(flow.components) == 1

    def test_rebalance_moves_weight_off_hot_paths(self):
        agent = TexcpAgent("t0", "t1", [("t0", "a", "t1"), ("t0", "b", "t1")])
        agent.rebalance([0.9, 0.1], kappa=0.4)
        assert agent.ratios[1] > agent.ratios[0]
        assert sum(agent.ratios) == pytest.approx(1.0)

    def test_rebalance_keeps_floor(self):
        agent = TexcpAgent("t0", "t1", [("t0", "a", "t1"), ("t0", "b", "t1")])
        for _ in range(100):
            agent.rebalance([1.0, 0.0], kappa=0.4)
        # The pre-normalization floor is MIN_RATIO=0.02; after renormalizing
        # against a ratio grown by up to (1 + kappa) the floor dilutes to
        # at worst 0.02 / 1.42.
        assert min(agent.ratios) >= 0.02 / 1.42 - 1e-9
        assert sum(agent.ratios) == pytest.approx(1.0)

    def test_control_loop_adjusts_live_flows(self):
        ctx = make_ctx(seed=5)
        scheduler = TexcpScheduler(probe_interval_s=0.05)
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 200 * MB)
        initial = [c.weight for c in flow.components]
        # Load one path by a competing single-path elephant.
        from repro.simulator import FlowComponent

        topo = ctx.topology
        hot_path = topo.equal_cost_paths("tor_0_1", "tor_1_0")[0]
        ctx.network.start_flow(
            "h_0_1_0", "h_1_0_1", 200 * MB,
            [FlowComponent(topo.host_path("h_0_1_0", "h_1_0_1", hot_path))],
        )
        ctx.engine.run_until(5.0)
        assert flow.active
        assert [c.weight for c in flow.components] != initial

    def test_completed_flows_forgotten(self):
        ctx = make_ctx()
        scheduler = TexcpScheduler()
        scheduler.attach(ctx)
        flow = scheduler.place("h_0_0_0", "h_1_0_0", 5 * MB)
        ctx.engine.run_until(10.0)
        assert not flow.active
        agent = scheduler._agents[("tor_0_0", "tor_1_0")]
        assert flow.flow_id not in agent.flow_ids
