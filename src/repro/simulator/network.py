"""The live network: topology + flows + fair-share dynamics + events.

``Network`` owns all mutable simulation state. Schedulers interact with it
through four surfaces:

* **flow placement** — :meth:`start_flow` with the components they chose;
* **re-routing** — :meth:`reroute_flow` (DARD's address-pair swap, VLB's
  periodic re-pick, Hedera's table update all reduce to this);
* **notifications** — ``on_flow_started`` / ``on_elephant_promoted`` /
  ``on_flow_completed`` listener hooks;
* **state queries** — :meth:`link_state`, the OpenFlow aggregate-statistics
  API DARD's monitors poll (bandwidth and elephant count per egress port).

Rate dynamics: after any membership change the weighted max-min allocation
is recomputed once (changes at the same instant are coalesced through a
zero-delay event) and the next completion event is rescheduled.

Performance architecture (see DESIGN.md): every directed link is interned
to a dense integer id by a :class:`~repro.simulator.linkindex.LinkIndex`
built once per network. Capacities, delays, failure state, flow counters,
and utilizations live in numpy arrays indexed by link id; each flow's
components are indexed to link-id arrays exactly once at start/reroute and
reused by counter updates, reallocation, reordering estimates, and
invariant checks. The reallocator hands the allocator pre-built CSR demand
arrays, so the per-event hot path never hashes a ``(str, str)`` link key.
:meth:`perf_stats` exposes the reallocation telemetry.

Incremental reallocation (the default; see DESIGN.md "Component
decomposition"): max-min allocation decomposes exactly across connected
components of the flow-link incidence graph, so each coalesced realloc
re-water-fills only the components invalidated since the last one —
tracked by a :class:`~repro.simulator.components.FlowLinkComponents`
union-find — and splices the new rates into the persistent per-link load
array. Failure transitions and departure epochs fall back to a full fill
(which also rebuilds the partition). Rates, loads, utilizations, FCTs, and
the event sequence are bit-identical to full reallocation; only the
``filling_iterations`` count differs (per-component fills count symmetric
cross-component ties as separate rounds). Construct with
``incremental_realloc=False`` to force the full fill every round.

Monitoring queries are vectorized the same way: :meth:`batch_path_state`
evaluates every monitored path's bottleneck BoNF in one pass over the
dense capacity/elephant/failure arrays from precomputed per-path link-id
CSR rows (see :meth:`index_switch_path`), replacing per-link
:meth:`link_state` loops in DARD's :class:`~repro.core.monitor.PathMonitor`.

Columnar flow state (see DESIGN.md "Columnar flow state"): hot per-flow
scalars live in a :class:`~repro.simulator.flowstore.FlowStore` — SoA
numpy columns bound to each flow at :meth:`start_flow` and released at
completion — so the three remaining per-event loops are masked array
expressions over the active span: ``_settle`` drains remaining bytes for
every live flow at once, ``_schedule_next_completion`` takes a masked min
over ``remaining * 8 / goodput``, and ``_on_completion_event`` finds
finishers with one boolean mask. The refills scatter aggregate rates
straight into the store's rate column (``np.add.at`` accumulates repeated
owner rows in order, bit-equal to the left-to-right
``sum(component_rates)``). Construct with ``settle_mode="reference"`` to
run the original scalar loops instead — the differential oracle
(:func:`~repro.validation.oracles.check_settle_equivalence`) proves both
modes produce bit-identical records on golden traces and fuzzer dual-runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import InvariantViolation, SimulationError
from repro.common.logging import get_logger
from repro.topology.multirooted import MultiRootedTopology
from repro.simulator.components import FlowLinkComponents
from repro.simulator.engine import EventEngine, EventHandle
from repro.simulator.flows import (
    ELEPHANT_AGE_S,
    PATH_SWITCH_RETX_BYTES,
    Flow,
    FlowComponent,
    FlowRecord,
)
from repro.simulator.flowstore import FlowStore
from repro.simulator.linkindex import LinkArrayMapping, LinkIndex
from repro.simulator.parallel import (
    PARALLEL_BACKENDS,
    ProcessesBackend,
    SerialBackend,
    ThreadsBackend,
)
from repro.simulator.maxmin import (
    LinkId,
    link_loads_indexed,
    maxmin_allocate_indexed,
    scatter_link_loads,
)
from repro.simulator.reordering import reordering_retx_fraction_indexed

_BYTES_EPSILON = 1.0  # flows within one byte of done are done

#: Departure-epoch rule: a dirty refill triggers a partition rebuild once
#: departures since the last rebuild reach ``min(MAX, max(MIN, live // 2))``
#: — rarely enough to amortize the O(flows x path length) rebuild, often
#: enough that departure-stale merges cannot silently grow components back
#: toward a global fill.
_EPOCH_MIN_DEPARTURES = 16
_EPOCH_MAX_DEPARTURES = 256

Listener = Callable[[Flow], None]

logger = get_logger("simulator.network")


@dataclass(frozen=True)
class LinkState:
    """What a switch reports for one egress port (paper §2.4).

    ``bonf`` is the link Bandwidth over the Number of elephant Flows;
    infinite when the link carries no elephants ("if a link has no flow,
    its BoNF is infinity", §2.2) and zero when the link is down — a dead
    link must look maximally congested, never attractive.
    """

    bandwidth_bps: float
    elephant_flows: int
    total_flows: int

    @property
    def bonf(self) -> float:
        if self.bandwidth_bps <= 0:
            return 0.0
        if self.elephant_flows == 0:
            return float("inf")
        return self.bandwidth_bps / self.elephant_flows


class Network:
    """Discrete-event fluid network simulation over a multi-rooted topology."""

    def __init__(
        self,
        topology: MultiRootedTopology,
        engine: Optional[EventEngine] = None,
        elephant_age_s: float = ELEPHANT_AGE_S,
        path_switch_retx_bytes: float = PATH_SWITCH_RETX_BYTES,
        model_reordering: bool = True,
        incremental_realloc: bool = True,
        settle_mode: str = "store",
        elephant_detector: str = "threshold",
        detector_params: Optional[dict] = None,
        parallel_backend: str = "serial",
        parallel_workers: Optional[int] = None,
    ) -> None:
        self.topology = topology
        self.engine = engine if engine is not None else EventEngine()
        self.elephant_age_s = elephant_age_s
        #: pluggable elephant detection. ``"threshold"`` (default) is the
        #: paper's age timer, inline in :meth:`start_flow` — the exact
        #: historical event sequence. ``"predictive"`` installs the
        #: EWMA-over-first-RTTs classifier (see ``detectors`` module).
        if elephant_detector == "threshold":
            if detector_params:
                raise SimulationError(
                    "threshold detector takes no detector_params; got "
                    f"{sorted(detector_params)}"
                )
            self.elephant_detector = None
        elif elephant_detector == "predictive":
            from repro.simulator.detectors import PredictiveElephantDetector

            self.elephant_detector = PredictiveElephantDetector(
                **(detector_params or {})
            )
            self.elephant_detector.attach(self)
        else:
            raise SimulationError(
                "elephant_detector must be 'threshold' or 'predictive', "
                f"got {elephant_detector!r}"
            )
        self.path_switch_retx_bytes = path_switch_retx_bytes
        self.model_reordering = model_reordering
        self.incremental_realloc = bool(incremental_realloc)
        if settle_mode not in ("store", "reference"):
            raise SimulationError(
                f"settle_mode must be 'store' or 'reference', got {settle_mode!r}"
            )
        self.settle_mode = settle_mode
        self._settle_vectorized = settle_mode == "store"
        #: pluggable intra-scenario execution backend (see the
        #: repro.simulator.parallel module docs): ``"serial"`` runs the
        #: historical combined fills; ``"threads"``/``"processes"`` fan
        #: component buckets and control-plane rounds across workers under
        #: the deterministic merge contract — results stay bit-identical
        #: to serial, only ``filling_iterations``/``par_*`` telemetry
        #: differs. Constructed here via the direct constructors so the
        #: dardlint call graph can narrow the receiver class.
        if parallel_backend == "serial":
            if parallel_workers is not None and int(parallel_workers) != 1:
                raise SimulationError(
                    "the serial backend is single-worker; got "
                    f"parallel_workers={parallel_workers}"
                )
            self._parallel: SerialBackend = SerialBackend()
        elif parallel_backend == "threads":
            self._parallel = ThreadsBackend(parallel_workers)
        elif parallel_backend == "processes":
            self._parallel = ProcessesBackend(parallel_workers)
        else:
            raise SimulationError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, "
                f"got {parallel_backend!r}"
            )
        self.parallel_backend = parallel_backend

        #: the per-network intern table; all per-link arrays align to it.
        self.link_index = LinkIndex.from_topology(topology)
        self._cap_array = self.link_index.capacities
        self._delay_array = self.link_index.delays
        num_links = len(self.link_index)
        self._total_array = np.zeros(num_links, dtype=np.int64)
        self._eleph_array = np.zeros(num_links, dtype=np.int64)
        self._util_array = np.zeros(num_links, dtype=float)
        self._peak_util_array = np.zeros(num_links, dtype=float)
        self._failed_mask = np.zeros(num_links, dtype=bool)
        #: persistent per-link allocated load (bits/s). Full fills rewrite
        #: it wholesale; dirty fills zero and re-scatter only the touched
        #: component's links (bit-exact either way, see scatter_link_loads).
        self._load_array = np.zeros(num_links, dtype=float)

        #: live flow-link component partition (None = full fills only).
        self._components: Optional[FlowLinkComponents] = (
            FlowLinkComponents(num_links) if self.incremental_realloc else None
        )
        #: the next _reallocate must run the full fill: set initially, and
        #: by fail/restore (failure transitions change which demands are
        #: excluded everywhere, not just in dirty components).
        self._force_full = True
        #: unique-link-id arrays of flows that departed (completion, or the
        #: old path at reroute) since the last fill — their load entries
        #: are zeroed by the next dirty refill.
        self._retired_link_ids: List[np.ndarray] = []

        #: extra checks run at the end of :meth:`check_invariants`; the
        #: validation layer registers its composable invariants here.
        self.invariant_hooks: List[Callable[["Network"], None]] = []

        # Dict-shaped compatibility surfaces over the same storage.
        self.capacities: Dict[LinkId, float] = {
            link: float(cap)
            for link, cap in zip(self.link_index.links, self._cap_array)
        }
        self.link_delays: Dict[LinkId, float] = {
            link: float(delay)
            for link, delay in zip(self.link_index.links, self._delay_array)
        }
        self._link_elephants = LinkArrayMapping(self.link_index, self._eleph_array)
        self._link_total = LinkArrayMapping(self.link_index, self._total_array)

        self.flows: Dict[int, Flow] = {}
        #: columnar hot flow state; every flow in ``flows`` is bound to a
        #: store row from start to completion (see flowstore module docs).
        self.flow_store = FlowStore()
        self.records: List[FlowRecord] = []
        self._next_flow_id = 0
        self._last_settle = 0.0
        self._realloc_pending = False
        self._completion_handle: Optional[EventHandle] = None

        self.flow_started_listeners: List[Listener] = []
        self.elephant_listeners: List[Listener] = []
        self.flow_completed_listeners: List[Listener] = []

        #: highest number of simultaneously live elephants seen (Fig. 15's
        #: "peak number of elephant flows" axis).
        self.peak_elephants = 0
        self._current_elephants = 0

        #: cables currently down (both directions); see :meth:`fail_link`.
        self.failed_links: set = set()
        self.link_failed_listeners: List[Callable[[str, str], None]] = []
        self.link_restored_listeners: List[Callable[[str, str], None]] = []

        #: control-plane cache invalidation: called with a link-id array
        #: whenever those links' reported state (elephant count via
        #: :meth:`_adjust_link_counts`, or bandwidth via fail/restore)
        #: changes. The DARD :class:`~repro.core.registry.MonitorRegistry`
        #: registers here to mark its cached path-state rows dirty.
        self.link_state_watchers: List[Callable[[np.ndarray], None]] = []
        #: extra ``perf_stats()`` key providers (the DARD control plane
        #: merges its ``cp_*`` telemetry through this seam).
        self.controlplane_stats_providers: List[Callable[[], Dict[str, float]]] = []

        # Reallocation / event telemetry (see perf_stats).
        self._stat_realloc_calls = 0
        self._stat_realloc_requests = 0
        self._stat_realloc_coalesced = 0
        self._stat_realloc_sync = 0
        self._stat_realloc_demands = 0
        self._stat_fill_iterations = 0
        self._stat_realloc_time_s = 0.0
        self._stat_flows_started = 0
        self._stat_flows_completed = 0
        self._stat_reroutes = 0
        # Incremental-reallocation telemetry (see perf_stats).
        self._stat_realloc_full = 0
        self._stat_realloc_incremental = 0
        self._stat_realloc_subset = 0
        self._stat_components_touched = 0
        self._stat_components_live = 0
        self._stat_component_rebuilds = 0
        self._stat_flows_rerated = 0
        self._stat_flows_preserved = 0
        self._stat_events_rescheduled = 0
        self._stat_events_preserved = 0
        # Columnar settle/ETA telemetry (see perf_stats).
        self._stat_settle_time_s = 0.0
        self._stat_eta_time_s = 0.0
        self._stat_settle_batches = 0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    @property
    def parallel(self) -> SerialBackend:
        """The configured execution backend (see ``repro.simulator.parallel``).

        The control plane fans its batched rounds through this seam; the
        type is the serial base class, of which the threads/processes
        backends are drop-in substitutes.
        """
        return self._parallel

    # -- flow lifecycle -------------------------------------------------------

    def start_flow(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        components: Sequence[FlowComponent],
    ) -> Flow:
        """Begin a transfer using the scheduler-chosen path component(s)."""
        if size_bytes <= 0:
            raise SimulationError(f"flow size must be positive, got {size_bytes}")
        self._settle()
        flow = Flow(
            flow_id=self._next_flow_id,
            src=src,
            dst=dst,
            size_bytes=float(size_bytes),
            start_time=self.now,
            components=list(components),
        )
        self._next_flow_id += 1
        flow.bind_store(self.flow_store, self.flow_store.acquire(flow.flow_id))
        self._index_components(flow)
        flow.component_rates = [0.0] * len(flow.components)
        if len(flow.components) == 1:
            flow.path_history.append(flow.components[0].path)
        self.flows[flow.flow_id] = flow
        self._adjust_link_counts(flow, +1)
        if self._components is not None:
            flow.component_id = self._components.attach(
                flow.flow_id, flow.unique_link_ids
            )
        self._stat_flows_started += 1
        if self.elephant_detector is None:
            self.engine.schedule_in(
                self.elephant_age_s,
                lambda fid=flow.flow_id: self._promote_elephant(fid),
            )
        else:
            self.elephant_detector.on_flow_started(flow)
        for listener in self.flow_started_listeners:
            listener(flow)
        self._request_realloc()
        return flow

    def reroute_flow(
        self,
        flow: Flow,
        components: Sequence[FlowComponent],
        count_switch: bool = True,
        retx_penalty: bool = True,
    ) -> None:
        """Replace a flow's path component(s).

        ``count_switch`` increments the paper's path-switch statistic;
        ``retx_penalty`` charges one congestion window of retransmission
        (disabled for control actions that are pure weight adjustments on
        unchanged paths, e.g. TeXCP rebalancing).
        """
        if not flow.active:
            raise SimulationError(f"cannot reroute finished flow {flow.flow_id}")
        self._settle()
        self._adjust_link_counts(flow, -1)
        if self._components is not None:
            # The old links' component is dirty (this flow's load leaves it)
            # and the old link ids must be zeroed out of the load array.
            self._components.detach(flow.flow_id, flow.unique_link_ids)
            self._retired_link_ids.append(flow.unique_link_ids)
        flow.components = list(components)
        self._index_components(flow)
        flow.component_rates = [0.0] * len(flow.components)
        # Keep the store's rate column in lockstep with the zeroed list —
        # the scalar reference and the vectorized path must agree between
        # the reroute and the coalesced refill that re-rates the flow.
        self.flow_store.rate_bps[flow.store_row] = 0.0
        self._adjust_link_counts(flow, +1)
        if self._components is not None:
            flow.component_id = self._components.attach(
                flow.flow_id, flow.unique_link_ids
            )
        self._stat_reroutes += 1
        if count_switch:
            flow.path_switches += 1
            if len(flow.components) == 1:
                flow.path_history.append(flow.components[0].path)
        if retx_penalty and self.path_switch_retx_bytes > 0:
            penalty = min(self.path_switch_retx_bytes, flow.remaining_bytes)
            flow.retransmitted_bytes += penalty
            flow.remaining_bytes += penalty
        self._request_realloc()

    def active_flows(self) -> List[Flow]:
        """All currently live flows."""
        return list(self.flows.values())

    def active_elephants(self) -> List[Flow]:
        """Live flows already promoted to elephant status."""
        return [f for f in self.flows.values() if f.is_elephant]

    # -- failure injection -------------------------------------------------------

    def link_is_up(self, u: str, v: str) -> bool:
        """Whether the directed link ``u -> v`` is currently usable."""
        if (u, v) not in self.capacities:
            raise SimulationError(f"no such directed link {(u, v)}")
        return (u, v) not in self.failed_links

    def path_alive(self, path: Sequence[str]) -> bool:
        """Whether every hop of a node path is up."""
        return all(self.link_is_up(a, b) for a, b in zip(path, path[1:]))

    def fail_link(self, u: str, v: str) -> None:
        """Take the cable between ``u`` and ``v`` down (both directions).

        Flows whose every component crosses the dead cable stall at zero
        rate until some scheduler moves them — exactly what a silent
        physical failure does to traffic pinned by static tables.
        """
        for key in ((u, v), (v, u)):
            if key not in self.capacities:
                raise SimulationError(f"no such directed link {key}")
        if (u, v) in self.failed_links:
            return
        self._settle()
        logger.info("t=%.2f link %s <-> %s failed", self.now, u, v)
        self.failed_links.add((u, v))
        self.failed_links.add((v, u))
        self._failed_mask[self.link_index.id_of((u, v))] = True
        self._failed_mask[self.link_index.id_of((v, u))] = True
        # Reallocate synchronously: a dead cable must carry nothing from
        # this instant, not from the next event-loop turn. Failure
        # transitions change which demands are excluded fabric-wide, so the
        # fill must be global, not dirty-component-scoped.
        self._force_full = True
        self._stat_realloc_sync += 1
        self._reallocate()
        self._notify_link_state(u, v)
        for listener in self.link_failed_listeners:
            listener(u, v)

    def restore_link(self, u: str, v: str) -> None:
        """Bring a failed cable back into service."""
        if (u, v) not in self.failed_links:
            return
        self._settle()
        logger.info("t=%.2f link %s <-> %s restored", self.now, u, v)
        self.failed_links.discard((u, v))
        self.failed_links.discard((v, u))
        self._failed_mask[self.link_index.id_of((u, v))] = False
        self._failed_mask[self.link_index.id_of((v, u))] = False
        self._force_full = True
        self._stat_realloc_sync += 1
        self._reallocate()
        self._notify_link_state(u, v)
        for listener in self.link_restored_listeners:
            listener(u, v)

    def _notify_link_state(self, u: str, v: str) -> None:
        """Tell link-state watchers both directed ids of a cable changed."""
        if not self.link_state_watchers:
            return
        ids = np.array(
            [self.link_index.id_of((u, v)), self.link_index.id_of((v, u))],
            dtype=np.intp,
        )
        for watcher in self.link_state_watchers:
            watcher(ids)

    # -- switch state query API (what DARD monitors poll) ----------------------

    def link_state(self, u: str, v: str) -> LinkState:
        """State of the directed link (egress port) ``u -> v``.

        A failed link reports zero bandwidth, which monitors fold into a
        zero BoNF — failure detection needs no extra machinery beyond the
        state DARD already polls.
        """
        index = self.link_index.ids.get((u, v))
        if index is None:
            raise SimulationError(f"no such directed link {(u, v)}")
        bandwidth = 0.0 if self._failed_mask[index] else float(self._cap_array[index])
        return LinkState(
            bandwidth_bps=bandwidth,
            elephant_flows=int(self._eleph_array[index]),
            total_flows=int(self._total_array[index]),
        )

    def index_switch_path(self, path: Sequence[str]) -> np.ndarray:
        """Link-id array of a node path's switch-switch hops.

        The registration-time half of vectorized monitoring: monitors call
        this once per monitored path and reuse the ids (stacked into CSR
        rows) on every :meth:`batch_path_state` poll, so the per-poll hot
        path never hashes a ``(str, str)`` link key. Unknown links raise
        :class:`~repro.common.errors.SimulationError`.
        """
        ids = self.link_index.index_path(path)
        return ids[self.link_index.switch_link_mask[ids]]

    def _batch_bottleneck(
        self, indices: np.ndarray, indptr: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-CSR-row bottleneck: ``(bandwidth array, chosen link ids)``.

        The shared vectorized core of :meth:`batch_path_state` and
        :meth:`batch_path_state_arrays`: picks each row's *first*
        minimum-BoNF link, matching the sequential ``min()`` tie-breaking
        of :meth:`path_state` exactly.
        """
        lengths = np.diff(indptr)
        if not np.all(lengths > 0):
            raise SimulationError("batch_path_state rows must be non-empty")
        band = np.where(self._failed_mask[indices], 0.0, self._cap_array[indices])
        eleph = self._eleph_array[indices]
        # LinkState.bonf, vectorized: 0 when down, inf when elephant-free.
        bonf = np.where(
            band <= 0.0,
            0.0,
            np.where(eleph > 0, band / np.maximum(eleph, 1), np.inf),
        )
        starts = indptr[:-1]
        best = np.minimum.reduceat(bonf, starts)
        nnz = int(indices.shape[0])
        position = np.where(
            bonf == np.repeat(best, lengths), np.arange(nnz, dtype=np.intp), nnz
        )
        first = np.minimum.reduceat(position, starts)
        return band[first], indices[first]

    def batch_path_state(
        self, indices: np.ndarray, indptr: np.ndarray
    ) -> List[LinkState]:
        """Bottleneck :class:`LinkState` of many paths in one array pass.

        ``indices``/``indptr`` are a CSR over link ids: path ``k`` crosses
        ``indices[indptr[k]:indptr[k + 1]]`` (each row non-empty, e.g. from
        :meth:`index_switch_path`). Returns one state per path — the
        *first* minimum-BoNF link of each row, matching the sequential
        ``min()`` tie-breaking of :meth:`path_state` exactly.
        """
        num_paths = int(indptr.shape[0]) - 1
        if num_paths <= 0:
            return []
        band, chosen = self._batch_bottleneck(indices, indptr)
        return [
            LinkState(
                bandwidth_bps=float(bandwidth),
                elephant_flows=int(elephants),
                total_flows=int(total),
            )
            for bandwidth, elephants, total in zip(
                band.tolist(),
                self._eleph_array[chosen].tolist(),
                self._total_array[chosen].tolist(),
            )
        ]

    def batch_path_state_arrays(
        self, indices: np.ndarray, indptr: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row bottleneck ``(bandwidth, elephant count)`` arrays.

        The allocation-free sibling of :meth:`batch_path_state` for callers
        that keep path state in arrays (the DARD monitor registry): no
        :class:`LinkState` objects are built, and the two returned arrays
        (float64 bandwidth, int64 elephant count) use the exact same
        bottleneck selection, so ``PathState(band[k], eleph[k])`` equals
        the object path bit-for-bit.
        """
        num_paths = int(indptr.shape[0]) - 1
        if num_paths <= 0:
            return np.empty(0, dtype=float), np.empty(0, dtype=np.int64)
        band, chosen = self._batch_bottleneck(indices, indptr)
        return band, self._eleph_array[chosen]

    def path_state(self, path: Sequence[str], skip_host_links: bool = True) -> LinkState:
        """The most-congested-link state along a node path (paper §2.5).

        ``skip_host_links`` drops the first/last host-switch hop — a flow
        cannot route around those, so DARD excludes them from BoNF (§2.2).
        One-path wrapper over :meth:`batch_path_state`; registered monitors
        skip the per-call indexing via :meth:`index_switch_path`.
        """
        ids = self.link_index.index_path(path)
        if skip_host_links:
            ids = ids[self.link_index.switch_link_mask[ids]]
        if ids.size == 0:
            raise SimulationError(f"path {path!r} has no switch-switch links")
        indptr = np.array([0, ids.size], dtype=np.intp)
        return self.batch_path_state(ids, indptr)[0]

    def utilization(self, u: str, v: str) -> float:
        """Most recent allocated utilization of the directed link ``u -> v``."""
        index = self.link_index.ids.get((u, v))
        if index is None:
            return 0.0
        return float(self._util_array[index])

    def peak_utilization(self, u: str, v: str) -> float:
        """Highest allocated utilization ``u -> v`` ever reached this run."""
        index = self.link_index.ids.get((u, v))
        if index is None:
            return 0.0
        return float(self._peak_util_array[index])

    def peak_utilization_summary(self) -> Dict[str, float]:
        """Fabric-wide peak-utilization digest (golden-trace material).

        ``max`` is the hottest instantaneous link utilization of the run;
        ``mean`` averages each link's peak over all links; ``saturated``
        counts links that ever reached >= 99% utilization.
        """
        peaks = self._peak_util_array
        return {
            "max": float(peaks.max(initial=0.0)),
            "mean": float(peaks.mean()) if peaks.size else 0.0,
            "saturated": int(np.count_nonzero(peaks >= 0.99)),
        }

    # -- telemetry ---------------------------------------------------------------

    def perf_stats(self) -> Dict[str, float]:
        """Reallocation and event telemetry for this network's lifetime.

        Keys:

        * ``realloc_calls`` — times the allocator actually ran;
        * ``realloc_requests`` — membership changes that asked for one;
        * ``realloc_coalesced`` — requests absorbed into an already-pending
          zero-delay reallocation (the coalescing win);
        * ``realloc_sync`` — synchronous reallocations from fail/restore;
        * ``realloc_demands`` — total demands handed to the allocator;
        * ``filling_iterations`` — total progressive-filling rounds;
        * ``realloc_time_s`` — wall time spent inside reallocation;
        * ``flows_started`` / ``flows_completed`` / ``reroutes`` — event
          counts, for cross-checking the counters above;
        * ``num_links`` — size of the link index.

        Incremental-reallocation keys (all zero with
        ``incremental_realloc=False`` except the full-fill counter):

        * ``realloc_full`` / ``realloc_incremental`` — fills that ran
          globally vs dirty-component-scoped (they sum to
          ``realloc_calls``);
        * ``realloc_subset`` — incremental fills that touched a *strict*
          subset of the live components (the locality win);
        * ``components_touched`` / ``components_live`` — dirty vs live
          component totals summed over incremental fills;
        * ``component_rebuilds`` — partition rebuilds (one per full fill
          plus departure epochs);
        * ``flows_rerated`` / ``flows_preserved`` — flows re-water-filled
          vs left untouched, summed over incremental fills;
        * ``events_rescheduled`` / ``events_preserved`` — completion-event
          updates whose fire time moved vs stayed identical (preserved
          events are still cancel+re-pushed so event ordering stays
          deterministic; see ``EventEngine.reschedule``).

        Columnar flow-state keys: ``settle_time_s`` / ``eta_time_s`` —
        wall time inside the settle and completion-ETA passes (the
        ``bench_perf_flowstore`` gate segment); ``settle_batches`` —
        settle passes that actually advanced time over live flows; plus
        the ``store_*`` keys from :meth:`FlowStore.stats` (active span,
        capacity, live rows, acquires/revivals/grows/compactions).

        Parallel-backend keys (``par_*``, from the configured execution
        backend; all zero under ``parallel_backend="serial"`` except
        ``par_workers``): ``par_workers`` — resolved worker count;
        ``par_rounds`` / ``par_tasks`` / ``par_fanout_max`` — fills fanned
        out, bucket tasks dispatched, and the widest single-round fan-out;
        ``par_nnz`` — link-slot entries routed through fanned fills;
        ``par_imbalance_max`` — worst max-bucket/mean-bucket nnz ratio;
        ``par_merge_wait_s`` — wall time from dispatch to merged rates;
        ``par_cp_rounds`` / ``par_cp_chunks`` — control-plane refreshes
        chunked across workers and the chunks dispatched (see DESIGN.md
        "Parallel execution").

        Registered ``controlplane_stats_providers`` (the DARD scheduler's
        ``cp_*`` keys — monitor/registry population, batched query rounds,
        vector-decision vs scalar-fallback counts, control-plane wall
        time; see DESIGN.md "Control-plane batching") are merged into the
        returned dict after the base keys.
        """
        stats: Dict[str, float] = {
            "realloc_calls": self._stat_realloc_calls,
            "realloc_requests": self._stat_realloc_requests,
            "realloc_coalesced": self._stat_realloc_coalesced,
            "realloc_sync": self._stat_realloc_sync,
            "realloc_demands": self._stat_realloc_demands,
            "filling_iterations": self._stat_fill_iterations,
            "realloc_time_s": self._stat_realloc_time_s,
            "flows_started": self._stat_flows_started,
            "flows_completed": self._stat_flows_completed,
            "reroutes": self._stat_reroutes,
            "num_links": len(self.link_index),
            "realloc_full": self._stat_realloc_full,
            "realloc_incremental": self._stat_realloc_incremental,
            "realloc_subset": self._stat_realloc_subset,
            "components_touched": self._stat_components_touched,
            "components_live": self._stat_components_live,
            "component_rebuilds": self._stat_component_rebuilds,
            "flows_rerated": self._stat_flows_rerated,
            "flows_preserved": self._stat_flows_preserved,
            "events_rescheduled": self._stat_events_rescheduled,
            "events_preserved": self._stat_events_preserved,
            "settle_time_s": self._stat_settle_time_s,
            "eta_time_s": self._stat_eta_time_s,
            "settle_batches": self._stat_settle_batches,
        }
        stats.update(self.flow_store.stats())
        stats.update(self._parallel.stats())
        if self.elephant_detector is not None:
            stats.update(self.elephant_detector.stats())
        for provider in self.controlplane_stats_providers:
            stats.update(provider())
        return stats

    # -- self-checks --------------------------------------------------------------

    @property
    def realloc_pending(self) -> bool:
        """Whether a coalesced zero-delay reallocation is still queued.

        While pending, component rates are stale relative to flow
        membership — allocation-optimality certificates (the validation
        layer's KKT check) only hold at quiescent points where this is
        False. The base invariants checked by :meth:`check_invariants`
        hold regardless.
        """
        return self._realloc_pending

    def live_demand_view(self) -> Tuple[List, List[Tuple[Flow, int]]]:
        """String-keyed ``(demands, owners)`` of the current live components.

        Mirrors exactly what :meth:`_reallocate` hands the allocator —
        components crossing a failed link are skipped — but in the
        string-keyed ``(links, weight)`` form the reference allocator and
        the differential oracles consume. ``owners[i]`` is the
        ``(flow, component_index)`` that demand ``i`` belongs to.
        """
        demands = []
        owners: List[Tuple[Flow, int]] = []
        for flow in self.flows.values():
            for idx, component in enumerate(flow.components):
                links = component.links()
                if self.failed_links and any(l in self.failed_links for l in links):
                    continue
                demands.append((links, component.weight))
                owners.append((flow, idx))
        return demands, owners

    def check_invariants(self) -> None:
        """Check the simulation's global invariants; raises on violation.

        Intended for debugging user extensions (custom schedulers,
        handwritten event sequences) and for the validation layer's
        continuous checking: call at any quiescent point. Checks

        * link flow-counters match a from-scratch recount,
        * no link is allocated beyond capacity,
        * failed links carry no allocated rate,
        * per-flow byte accounting is sane,

        then runs every registered :attr:`invariant_hooks` entry.
        Violations raise :class:`~repro.common.errors.InvariantViolation`
        carrying the offending link / flow id, so the fuzzer and CI can
        report them structurally.

        The recount re-derives link ids from component paths — it does not
        trust the per-flow caches it is auditing.
        """
        num_links = len(self.link_index)
        expected_total = np.zeros(num_links, dtype=np.int64)
        expected_eleph = np.zeros(num_links, dtype=np.int64)
        load = np.zeros(num_links, dtype=float)
        for flow in self.flows.values():
            flow_ids: List[np.ndarray] = []
            for component, rate in zip(flow.components, flow.component_rates):
                ids = self.link_index.index_links(component.links())
                flow_ids.append(ids)
                load[ids] += rate
            unique = np.unique(np.concatenate(flow_ids)) if flow_ids else np.empty(0, np.intp)
            expected_total[unique] += 1
            if flow.is_elephant:
                expected_eleph[unique] += 1
        for name, actual, expected in (
            ("total-flow", self._total_array, expected_total),
            ("elephant", self._eleph_array, expected_eleph),
        ):
            bad = np.nonzero(actual != expected)[0]
            if bad.size:
                link = self.link_index.links[int(bad[0])]
                raise InvariantViolation(
                    f"{name}-counter",
                    f"counter {int(actual[bad[0]])} != recount {int(expected[bad[0]])}",
                    link=link,
                )
        over = np.nonzero(load > self._cap_array * (1 + 1e-6))[0]
        if over.size:
            link = self.link_index.links[int(over[0])]
            raise InvariantViolation(
                "link-capacity",
                f"allocated {load[over[0]]} over capacity {self.capacities[link]}",
                link=link,
            )
        dead_loaded = np.nonzero(self._failed_mask & (load > 0))[0]
        if dead_loaded.size:
            link = self.link_index.links[int(dead_loaded[0])]
            raise InvariantViolation(
                "dead-link-load",
                f"failed link carries rate {load[dead_loaded[0]]}",
                link=link,
            )
        # The persistent load array must match the recount whenever rates
        # are settled (while a realloc is pending, rates are stale by design).
        if not self._realloc_pending and not np.allclose(
            load, self._load_array, rtol=1e-9, atol=1e-6
        ):
            bad = int(np.nonzero(~np.isclose(load, self._load_array, rtol=1e-9, atol=1e-6))[0][0])
            raise InvariantViolation(
                "persistent-load",
                f"load array {self._load_array[bad]!r} != recount {load[bad]!r}",
                link=self.link_index.links[bad],
            )
        if self._components is not None:
            tracked, memberships = self._components.membership_audit()
            live = set(self.flows)
            if tracked != live or memberships != len(live):
                raise InvariantViolation(
                    "component-membership",
                    f"{memberships} memberships over {len(tracked)} tracked flows "
                    f"vs {len(live)} live (missing {sorted(live - tracked)[:5]}, "
                    f"stale {sorted(tracked - live)[:5]})",
                )
        for flow in self.flows.values():
            if flow.remaining_bytes < 0:
                raise InvariantViolation(
                    "byte-accounting",
                    f"negative remaining bytes {flow.remaining_bytes}",
                    flow_id=flow.flow_id,
                )
            if flow.remaining_bytes > flow.size_bytes + flow.retransmitted_bytes + 1.0:
                raise InvariantViolation(
                    "byte-accounting",
                    f"remaining {flow.remaining_bytes} exceeds size+retx "
                    f"{flow.size_bytes + flow.retransmitted_bytes}",
                    flow_id=flow.flow_id,
                )
        store = self.flow_store
        live_rows = int(np.count_nonzero(store.live[: store.size]))
        if store.live_count != len(self.flows) or live_rows != len(self.flows):
            raise InvariantViolation(
                "flow-store",
                f"store live_count {store.live_count} / live rows {live_rows} "
                f"!= {len(self.flows)} live flows",
            )
        for flow in self.flows.values():
            row = flow.store_row
            if row < 0 or not bool(store.live[row]) or int(store.flow_id[row]) != flow.flow_id:
                raise InvariantViolation(
                    "flow-store",
                    f"flow bound to row {row} whose store entry is "
                    f"live={bool(store.live[row]) if row >= 0 else None} "
                    f"flow_id={int(store.flow_id[row]) if row >= 0 else None}",
                    flow_id=flow.flow_id,
                )
            # The refill scatter contract: the rate column is *bit-equal*
            # to the left-to-right component-rate sum, always — both are
            # rewritten together at every membership change and refill.
            want_rate = sum(flow.component_rates)
            if float(store.rate_bps[row]) != want_rate:
                raise InvariantViolation(
                    "flow-store-rate",
                    f"rate column {float(store.rate_bps[row])!r} != "
                    f"sum(component_rates) {want_rate!r}",
                    flow_id=flow.flow_id,
                )
            frac = float(store.retx_fraction[row])
            if float(store.goodput_factor[row]) != 1.0 - frac:
                raise InvariantViolation(
                    "flow-store-goodput",
                    f"goodput factor {float(store.goodput_factor[row])!r} != "
                    f"1 - retx fraction {1.0 - frac!r}",
                    flow_id=flow.flow_id,
                )
        for hook in tuple(self.invariant_hooks):
            hook(self)

    # -- internals --------------------------------------------------------------

    def _index_components(self, flow: Flow) -> None:
        """Validate a flow's components and cache their link-id arrays.

        Runs exactly once per start/reroute; every later hot path
        (counter scatter, CSR assembly, reordering estimate) reuses the
        arrays cached here.
        """
        component_ids: List[np.ndarray] = []
        for component in flow.components:
            if component.path[0] != flow.src or component.path[-1] != flow.dst:
                raise SimulationError(
                    f"component path {component.path!r} does not connect "
                    f"{flow.src!r} to {flow.dst!r}"
                )
            component_ids.append(self.link_index.index_links(component.links()))
        flow.component_link_ids = component_ids
        if len(component_ids) == 1:
            flow.unique_link_ids = np.unique(component_ids[0])
        else:
            flow.unique_link_ids = np.unique(np.concatenate(component_ids))

    def _adjust_link_counts(self, flow: Flow, delta: int) -> None:
        ids = flow.unique_link_ids
        self._total_array[ids] += delta
        if flow.is_elephant:
            self._eleph_array[ids] += delta
            for watcher in self.link_state_watchers:
                watcher(ids)

    def _promote_elephant(self, flow_id: int) -> None:
        flow = self.flows.get(flow_id)
        if flow is None or flow.is_elephant:
            return
        # Temporarily remove, flip, re-add so elephant counters stay exact.
        self._adjust_link_counts(flow, -1)
        flow.is_elephant = True
        self._adjust_link_counts(flow, +1)
        self._current_elephants += 1
        self.peak_elephants = max(self.peak_elephants, self._current_elephants)
        for listener in self.elephant_listeners:
            listener(flow)

    def _settle(self) -> None:
        """Advance byte counters from the last settle point to now."""
        dt = self.now - self._last_settle
        if dt < 0:
            raise SimulationError("time went backwards")
        if dt > 0 and self.flows:
            # perf_counter feeds perf_stats() telemetry only, never sim state.
            started = perf_counter()  # dardlint: disable=DET002
            if self._settle_vectorized:
                self._settle_store(dt)
            else:
                self._settle_reference(dt)
            self._stat_settle_time_s += perf_counter() - started  # dardlint: disable=DET002
            self._stat_settle_batches += 1
        self._last_settle = self.now

    def _settle_store(self, dt: float) -> None:
        """Vectorized settle over the flow-store columns.

        Bit-identical to :meth:`_settle_reference`: the mask replicates the
        scalar ``delivered_bits <= 0`` skip, the per-row op sequence is the
        same float64 expression tree, and the rate column is kept bit-equal
        to ``sum(component_rates)`` by the refill scatter.
        """
        store = self.flow_store
        n = store.size
        bits = store.rate_bps[:n] * dt
        rows = np.flatnonzero(store.live[:n] & (bits > 0.0))
        if rows.size == 0:
            return
        delivered_bytes = bits[rows] / 8.0
        wasted = delivered_bytes * store.retx_fraction[rows]
        remaining = store.remaining_bytes
        remaining[rows] = np.maximum(0.0, remaining[rows] - (delivered_bytes - wasted))
        store.retransmitted_bytes[rows] += wasted

    def _settle_reference(self, dt: float) -> None:
        """Scalar settle — the differential oracle for :meth:`_settle_store`.

        Sums ``component_rates`` directly (rather than reading the store's
        rate column) so the dual-run also audits the refill rate scatter.
        """
        for flow in self.flows.values():
            delivered_bits = sum(flow.component_rates) * dt
            if delivered_bits <= 0:
                continue
            delivered_bytes = delivered_bits / 8.0
            wasted = delivered_bytes * flow.reorder_retx_fraction
            flow.remaining_bytes = max(0.0, flow.remaining_bytes - (delivered_bytes - wasted))
            flow.retransmitted_bytes += wasted

    def _request_realloc(self) -> None:
        self._stat_realloc_requests += 1
        if self._realloc_pending:
            self._stat_realloc_coalesced += 1
            return
        self._realloc_pending = True
        self.engine.schedule_in(0.0, self._reallocate)

    def _assemble_demands(
        self, flows: Sequence[Flow]
    ) -> Tuple[List[np.ndarray], List[float], List[Tuple[Flow, int]]]:
        """Per-component (link-id arrays, weights, owners) of live demands.

        Components crossing a failed link are skipped — they carry nothing
        until rerouted. Shared by the full fill, the dirty refill, and
        :meth:`demand_csr`, so the three can never drift apart.
        """
        component_ids: List[np.ndarray] = []
        weights: List[float] = []
        owners: List[Tuple[Flow, int]] = []
        any_failed = bool(self.failed_links)
        failed_mask = self._failed_mask
        for flow in flows:
            for idx, ids in enumerate(flow.component_link_ids):
                if any_failed and failed_mask[ids].any():
                    continue  # dead component: carries nothing until rerouted
                component_ids.append(ids)
                weights.append(flow.components[idx].weight)
                owners.append((flow, idx))
        return component_ids, weights, owners

    def _scatter_store_rates(
        self, owners: Sequence[Tuple[Flow, int]], rates: np.ndarray
    ) -> None:
        """Accumulate per-component rates into the store's rate column.

        ``np.add.at`` is unbuffered: repeated owner rows accumulate in
        index order, which is component order, so the column ends up
        bit-equal to the left-to-right ``sum(component_rates)`` (demands
        skipped for failed links contribute literal ``+0.0``, which never
        changes a non-negative partial sum).
        """
        owner_rows = np.fromiter(
            (flow.store_row for flow, _ in owners), dtype=np.intp, count=len(owners)
        )
        np.add.at(self.flow_store.rate_bps, owner_rows, rates)

    @staticmethod
    def _build_csr(component_ids: List[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
        n = len(component_ids)
        lengths = np.fromiter((ids.size for ids in component_ids), dtype=np.intp, count=n)
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(lengths, out=indptr[1:])
        indices = np.concatenate(component_ids)
        return indices, indptr

    def demand_csr(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Tuple[Flow, int]]]:
        """``(indices, indptr, weights, owners)`` over all live demands.

        Exactly the CSR a full fill would run on right now — the
        incremental-vs-full differential oracle feeds this to
        ``maxmin_allocate_indexed`` and demands bit-equality with the live
        ``component_rates``.
        """
        component_ids, weights, owners = self._assemble_demands(list(self.flows.values()))
        if not component_ids:
            return (
                np.empty(0, dtype=np.intp),
                np.zeros(1, dtype=np.intp),
                np.zeros(0, dtype=float),
                owners,
            )
        indices, indptr = self._build_csr(component_ids)
        return indices, indptr, np.asarray(weights, dtype=float), owners

    def _reallocate(self) -> None:
        self._realloc_pending = False
        self._settle()
        # perf_counter feeds perf_stats() telemetry only, never sim state.
        started = perf_counter()  # dardlint: disable=DET002
        if self._components is None or self._force_full:
            self._refill_full()
        else:
            self._refill_dirty()
            # Departure epoch: the union structure only over-approximates
            # across detaches; rebuild before stale merges erode the
            # locality win. Lives here, not in _refill_dirty: the rebuild
            # mutates the shared partition, and the refill itself must stay
            # component-pure (RACE003) for component-parallel rounds.
            comps = self._components
            if comps.departures >= min(
                _EPOCH_MAX_DEPARTURES,
                max(_EPOCH_MIN_DEPARTURES, len(self.flows) // 2),
            ):
                comps.rebuild(self.flows.values())
                self._stat_component_rebuilds += 1
        self._stat_realloc_calls += 1
        self._stat_realloc_time_s += perf_counter() - started  # dardlint: disable=DET002
        self._schedule_next_completion()

    def _refill_full(self) -> None:
        """Global water-fill over every live demand (the reference path)."""
        flows = list(self.flows.values())
        component_ids, weights, owners = self._assemble_demands(flows)
        num_links = len(self.link_index)
        n = len(component_ids)
        store = self.flow_store
        for flow in flows:
            flow.component_rates = [0.0] * len(flow.components)
        store.rate_bps[: store.size] = 0.0  # dead rows are already zero
        if n:
            indices, indptr = self._build_csr(component_ids)
            weight_arr = np.asarray(weights, dtype=float)
            # Parallel backends partition the fill by component (each
            # demand's root, via its first link id); the serial backend
            # ignores roots and runs the historical combined fill.
            roots = None
            if self._components is not None and self._parallel.workers > 1:
                roots = self._components.find_roots(indices[indptr[:-1]].tolist())
            rates, iterations = self._parallel.fill(
                indices, indptr, weight_arr, self._cap_array, roots
            )
            for (flow, idx), rate in zip(owners, rates):
                flow.component_rates[idx] = float(rate)
            self._scatter_store_rates(owners, rates)
            load = link_loads_indexed(indices, indptr, rates, num_links)
            self._load_array = load
            np.divide(load, self._cap_array, out=self._util_array)
            np.maximum(self._peak_util_array, self._util_array, out=self._peak_util_array)
        else:
            iterations = 0
            self._load_array[:] = 0.0
            self._util_array[:] = 0.0
        self._stat_realloc_demands += n
        self._stat_fill_iterations += iterations
        if self.model_reordering:
            if any(len(flow.components) > 1 for flow in flows):
                for flow in flows:
                    if len(flow.components) > 1:
                        flow.reorder_retx_fraction = reordering_retx_fraction_indexed(
                            flow.component_rates,
                            flow.component_link_ids,
                            self._delay_array,
                            self._util_array,
                        )
                    else:
                        flow.reorder_retx_fraction = 0.0
            else:
                # No striped flows (every scheduler but TeXCP): the reset is
                # two column fills. Dead rows already hold the fill values.
                store.retx_fraction[: store.size] = 0.0
                store.goodput_factor[: store.size] = 1.0
        self._stat_realloc_full += 1
        comps = self._components
        if comps is not None:
            # A full fill leaves nothing dirty and resets the epoch.
            comps.rebuild(self.flows.values())
            self._retired_link_ids.clear()
            self._stat_component_rebuilds += 1
            self._force_full = False

    def _refill_dirty(self) -> None:
        """Water-fill only the components invalidated since the last fill.

        Exact by component decomposition (see DESIGN.md): every demand of a
        dirty component is re-filled against the links' full capacities
        (compacted to the touched ids — ``np.unique`` preserves relative
        order, so bottleneck selection and heap tie-breaking are unchanged),
        while untouched components keep their rates, loads, utilizations,
        and reordering fractions bit-for-bit.
        """
        comps = self._components
        touched, dirty_flow_ids = comps.consume_dirty()
        flows = self.flows
        dirty_flows = [flows[flow_id] for flow_id in dirty_flow_ids]
        component_ids, weights, owners = self._assemble_demands(dirty_flows)
        n = len(component_ids)
        store = self.flow_store
        dirty_rows: Optional[np.ndarray] = None
        for flow in dirty_flows:
            flow.component_rates = [0.0] * len(flow.components)
        if dirty_flows:
            dirty_rows = np.fromiter(
                (flow.store_row for flow in dirty_flows),
                dtype=np.intp,
                count=len(dirty_flows),
            )
            store.rate_bps[dirty_rows] = 0.0
        retired = self._retired_link_ids
        touched_links: Optional[np.ndarray] = None
        if n:
            indices, indptr = self._build_csr(component_ids)
            weight_arr = np.asarray(weights, dtype=float)
            touched_links = np.unique(indices)
            sub_indices = np.searchsorted(touched_links, indices)
            # Roots come from the uncompacted link ids; demands of one
            # component always share a bucket, so the merged rates are
            # bit-identical to this round's combined fill (decomposition).
            roots = None
            if self._parallel.workers > 1:
                roots = comps.find_roots(indices[indptr[:-1]].tolist())
            rates, iterations = self._parallel.fill(
                sub_indices, indptr, weight_arr, self._cap_array[touched_links], roots
            )
            for (flow, idx), rate in zip(owners, rates):
                flow.component_rates[idx] = float(rate)
            self._scatter_store_rates(owners, rates)
        else:
            iterations = 0
        # Splice: zero every link the dirty demands (or departed flows)
        # touch, re-scatter the new rates, refresh util/peak on those links.
        if retired:
            parts = retired + ([touched_links] if touched_links is not None else [])
            zero_ids = np.unique(np.concatenate(parts)) if len(parts) > 1 else np.unique(parts[0])
            retired.clear()
        else:
            zero_ids = touched_links
        if zero_ids is not None and zero_ids.size:
            self._load_array[zero_ids] = 0.0
            if n:
                scatter_link_loads(self._load_array, indices, indptr, rates)
            self._util_array[zero_ids] = (
                self._load_array[zero_ids] / self._cap_array[zero_ids]
            )
            np.maximum.at(self._peak_util_array, zero_ids, self._util_array[zero_ids])
        self._stat_realloc_demands += n
        self._stat_fill_iterations += iterations
        if self.model_reordering:
            if any(len(flow.components) > 1 for flow in dirty_flows):
                for flow in dirty_flows:
                    if len(flow.components) > 1:
                        flow.reorder_retx_fraction = reordering_retx_fraction_indexed(
                            flow.component_rates,
                            flow.component_link_ids,
                            self._delay_array,
                            self._util_array,
                        )
                    else:
                        flow.reorder_retx_fraction = 0.0
            elif dirty_rows is not None:
                store.retx_fraction[dirty_rows] = 0.0
                store.goodput_factor[dirty_rows] = 1.0
        live = comps.live_components
        self._stat_realloc_incremental += 1
        self._stat_components_touched += touched
        self._stat_components_live += live
        if touched < live:
            self._stat_realloc_subset += 1
        self._stat_flows_rerated += len(dirty_flows)
        self._stat_flows_preserved += len(flows) - len(dirty_flows)
        # (The departure-epoch rebuild used to live here; it moved to
        # _reallocate so this method stays component-pure — see the
        # ownership table in repro.lint.ownership.)

    def _schedule_next_completion(self) -> None:
        old_handle = self._completion_handle
        self._completion_handle = None
        # perf_counter feeds perf_stats() telemetry only, never sim state.
        started = perf_counter()  # dardlint: disable=DET002
        if self._settle_vectorized:
            soonest = self._next_completion_eta_store()
        else:
            soonest = self._next_completion_eta_reference()
        # Telemetry end-stamp for the line above; same audit rationale.
        self._stat_eta_time_s += perf_counter() - started  # dardlint: disable=DET002
        if soonest < float("inf"):
            self._completion_handle, preserved = self.engine.reschedule(
                old_handle, max(soonest, 0.0), self._on_completion_event
            )
            if preserved:
                self._stat_events_preserved += 1
            else:
                self._stat_events_rescheduled += 1
        elif old_handle is not None:
            old_handle.cancel()

    def _next_completion_eta_store(self) -> float:
        """Masked min over ``remaining * 8 / goodput`` across the store.

        ``goodput_factor`` is maintained as exactly ``1.0 - retx_fraction``
        at every fraction write, so ``rate * factor`` is bit-identical to
        the scalar ``rate_bps * (1.0 - reorder_retx_fraction)`` and the
        array min equals the sequential ``min()`` reduction.
        """
        store = self.flow_store
        n = store.size
        goodput = store.rate_bps[:n] * store.goodput_factor[:n]
        rows = np.flatnonzero(store.live[:n] & (goodput > 0.0))
        if rows.size == 0:
            return float("inf")
        etas = (store.remaining_bytes[rows] * 8.0) / goodput[rows]
        return float(etas.min())

    def _next_completion_eta_reference(self) -> float:
        """Scalar ETA scan — oracle for :meth:`_next_completion_eta_store`."""
        soonest = float("inf")
        for flow in self.flows.values():
            goodput_bps = sum(flow.component_rates) * (1.0 - flow.reorder_retx_fraction)
            if goodput_bps <= 0:
                continue
            eta = (flow.remaining_bytes * 8.0) / goodput_bps
            soonest = min(soonest, eta)
        return soonest

    def _find_finishers_store(self) -> List[Flow]:
        """Boolean-mask finisher scan over the store's remaining column.

        Finishers come back sorted by flow id — identical to the scalar
        dict scan, since flow ids are assigned monotonically and flows are
        never reinserted, so dict order *is* ascending flow-id order.
        """
        store = self.flow_store
        n = store.size
        rows = np.flatnonzero(
            store.live[:n] & (store.remaining_bytes[:n] <= _BYTES_EPSILON)
        )
        if rows.size == 0:
            return []
        flows = self.flows
        return [flows[int(fid)] for fid in np.sort(store.flow_id[rows])]

    def _find_finishers_reference(self) -> List[Flow]:
        """Scalar finisher scan — oracle for :meth:`_find_finishers_store`."""
        return [f for f in self.flows.values() if f.remaining_bytes <= _BYTES_EPSILON]

    def _on_completion_event(self) -> None:
        self._completion_handle = None
        self._settle()
        if self._settle_vectorized:
            finished = self._find_finishers_store()
        else:
            finished = self._find_finishers_reference()
        if not finished:
            # Rates changed under us; just reschedule.
            self._schedule_next_completion()
            return
        for flow in finished:
            flow.end_time = self.now
            self._adjust_link_counts(flow, -1)
            if self._components is not None:
                self._components.detach(flow.flow_id, flow.unique_link_ids)
                self._retired_link_ids.append(flow.unique_link_ids)
            if flow.is_elephant:
                self._current_elephants -= 1
            del self.flows[flow.flow_id]
            self._stat_flows_completed += 1
            self.records.append(
                FlowRecord(
                    flow_id=flow.flow_id,
                    src=flow.src,
                    dst=flow.dst,
                    size_bytes=flow.size_bytes,
                    start_time=flow.start_time,
                    end_time=flow.end_time,
                    path_switches=flow.path_switches,
                    path_revisits=flow.path_revisits(),
                    retransmitted_bytes=flow.retransmitted_bytes,
                    was_elephant=flow.is_elephant,
                )
            )
            for listener in self.flow_completed_listeners:
                listener(flow)
            # Snapshot the columns into the view object before the row is
            # returned to the pool: records, listeners, and any held
            # references keep reading the final state after row revival.
            row = flow.store_row
            flow.unbind_store()
            self.flow_store.release(row)
        self._request_realloc()
