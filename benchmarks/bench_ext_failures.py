"""Extension: failure injection — a core uplink dies mid-run and heals.

Expected: every scheduler degrades when a quarter of one pod's uplink
capacity disappears for half the run, but none collapses: the adaptive
schedulers (and the modelled ECMP re-hash) route around the dead cable,
so degradation stays bounded and no flow stalls forever.
"""

from repro.experiments.figures import ext_failure_recovery
from conftest import run_once


def test_ext_failures(benchmark, save_output):
    output = run_once(benchmark, ext_failure_recovery, duration_s=90.0, fail_at_s=20.0,
                      restore_at_s=70.0)
    save_output(output)
    for row in output.rows:
        # Bounded degradation: losing 1 of 8 pod-0 uplinks for most of the
        # run must not blow mean FCT up by more than ~60%.
        assert row["degradation"] < 0.6, row
        # Recovery: healthy and degraded runs completed the same workload.
        assert row["failure_fct_s"] > 0
    dard = next(row for row in output.rows if row["scheduler"] == "dard")
    # DARD's monitoring-driven rerouting keeps it at worst middling.
    degradations = sorted(row["degradation"] for row in output.rows)
    assert dard["degradation"] <= degradations[-1]
