"""Exception-hygiene rule: EXC001.

The validation layer communicates through exceptions on purpose:
``InvariantViolation`` / ``OracleViolation`` (both ``ReproError``
subclasses) are how a broken invariant aborts a run and reaches the
fuzzer or CI. A broad ``except`` between the check and its consumer can
swallow that signal silently.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.engine import Finding, ModuleContext, Rule, register

_BROAD = {"Exception", "BaseException"}

#: Handlers for these types, placed *before* a broad handler in the same
#: try statement, already route validation signals structurally — the
#: trailing broad handler then only sees genuine third-party crashes.
_SAFE_EARLIER = {
    "ReproError",
    "SimulationError",
    "InvariantViolation",
    "OracleViolation",
}


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    node = handler.type
    if node is None:
        return []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names: List[str] = []
    for element in elements:
        if isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises (bare raise, or the bound name)."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                handler.name is not None
                and isinstance(node.exc, ast.Name)
                and node.exc.id == handler.name
            ):
                return True
    return False


@register
class BroadExceptSwallowsInvariants(Rule):
    """EXC001: a bare/broad ``except`` that can swallow validation signals.

    Allowed shapes: the handler re-raises, or an earlier handler in the
    same ``try`` already catches ``ReproError`` (or the violation types
    directly), so invariant failures never reach the broad arm. Anything
    else needs a narrower type — or a suppression documenting why eating
    every exception is correct there.
    """

    code = "EXC001"
    name = "broad-except"
    description = "bare/broad except may swallow InvariantViolation/OracleViolation"
    scope = ("repro",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            earlier_safe = False
            for handler in node.handlers:
                names = _caught_names(handler)
                if handler.type is None or (set(names) & _BROAD):
                    if not earlier_safe and not _reraises(handler):
                        what = "bare except:" if handler.type is None else (
                            f"except {' | '.join(names) or '...'}"
                        )
                        yield ctx.finding(
                            handler,
                            self.code,
                            f"{what} can swallow InvariantViolation/"
                            "OracleViolation; catch a narrower type or "
                            "handle ReproError first",
                        )
                if set(names) & _SAFE_EARLIER:
                    earlier_safe = True
