"""Tests for flow objects and the reordering/retransmission model."""

import pytest

from repro.common.errors import SimulationError
from repro.simulator.flows import Flow, FlowComponent, FlowRecord
from repro.simulator.reordering import (
    MAX_RETX_FRACTION,
    component_delay,
    reordering_retx_fraction,
)


def make_flow(components=None, size=1000.0):
    if components is None:
        components = [FlowComponent(("a", "b", "c"))]
    return Flow(
        flow_id=1, src=components[0].path[0], dst=components[0].path[-1],
        size_bytes=size, start_time=0.0, components=list(components),
    )


class TestFlowComponent:
    def test_links(self):
        comp = FlowComponent(("a", "b", "c"))
        assert comp.links() == (("a", "b"), ("b", "c"))

    def test_default_weight(self):
        assert FlowComponent(("a", "b")).weight == 1.0


class TestFlow:
    def test_initial_state(self):
        flow = make_flow()
        assert flow.remaining_bytes == 1000.0
        assert flow.active
        assert flow.rate_bps == 0.0
        assert not flow.is_elephant

    def test_needs_components(self):
        with pytest.raises(SimulationError):
            Flow(flow_id=1, src="a", dst="b", size_bytes=1.0, start_time=0.0, components=[])

    def test_endpoint_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            Flow(
                flow_id=1, src="x", dst="c", size_bytes=1.0, start_time=0.0,
                components=[FlowComponent(("a", "b", "c"))],
            )

    def test_rate_aggregates_components(self):
        flow = make_flow([
            FlowComponent(("a", "b", "c"), weight=0.5),
            FlowComponent(("a", "d", "c"), weight=0.5),
        ])
        flow.component_rates = [30.0, 20.0]
        assert flow.rate_bps == 50.0

    def test_switch_path_single_component_only(self):
        flow = make_flow()
        assert flow.switch_path() == ("a", "b", "c")
        striped = make_flow([
            FlowComponent(("a", "b", "c")),
            FlowComponent(("a", "d", "c")),
        ])
        with pytest.raises(ValueError):
            striped.switch_path()

    def test_age_and_retx_rate(self):
        flow = make_flow(size=2000.0)
        assert flow.age(5.0) == 5.0
        flow.retransmitted_bytes = 500.0
        assert flow.retx_rate() == 0.25


class TestFlowRecord:
    def test_fct_and_retx(self):
        record = FlowRecord(
            flow_id=1, src="a", dst="b", size_bytes=1000.0,
            start_time=2.0, end_time=12.0, path_switches=3,
            path_revisits=1, retransmitted_bytes=100.0, was_elephant=True,
        )
        assert record.fct == 10.0
        assert record.retx_rate == 0.1
        assert record.path_revisits == 1


class TestReorderingModel:
    delays = {("a", "b"): 0.0001, ("b", "c"): 0.0001, ("a", "d"): 0.0001, ("d", "c"): 0.0001}

    def test_single_path_never_reorders(self):
        frac = reordering_retx_fraction(
            [FlowComponent(("a", "b", "c"))], [100.0], self.delays, {}
        )
        assert frac == 0.0

    def test_zero_rate_no_reordering(self):
        comps = [FlowComponent(("a", "b", "c")), FlowComponent(("a", "d", "c"))]
        assert reordering_retx_fraction(comps, [0.0, 0.0], self.delays, {}) == 0.0

    def test_equal_idle_paths_small_fraction(self):
        comps = [FlowComponent(("a", "b", "c")), FlowComponent(("a", "d", "c"))]
        frac = reordering_retx_fraction(comps, [50.0, 50.0], self.delays, {})
        # No queueing -> no delay spread -> no reordering.
        assert frac == 0.0

    def test_loaded_paths_reorder(self):
        comps = [FlowComponent(("a", "b", "c")), FlowComponent(("a", "d", "c"))]
        utils = {("a", "b"): 0.9, ("b", "c"): 0.9, ("a", "d"): 0.3, ("d", "c"): 0.3}
        frac = reordering_retx_fraction(comps, [50.0, 50.0], self.delays, utils)
        assert 0.0 < frac <= MAX_RETX_FRACTION

    def test_fraction_capped(self):
        comps = [FlowComponent(("a", "b", "c")), FlowComponent(("a", "d", "c"))]
        utils = {link: 0.99 for link in self.delays}
        frac = reordering_retx_fraction(comps, [50.0, 50.0], self.delays, utils)
        assert frac <= MAX_RETX_FRACTION

    def test_component_delay_grows_with_utilization(self):
        comp = FlowComponent(("a", "b", "c"))
        idle_prop, idle_queue = component_delay(comp, self.delays, {})
        hot_prop, hot_queue = component_delay(
            comp, self.delays, {("a", "b"): 0.9, ("b", "c"): 0.9}
        )
        assert idle_queue == 0.0
        assert hot_prop == idle_prop
        assert hot_queue > 0.0

    def test_skewed_split_reorders_less_than_even(self):
        comps = [FlowComponent(("a", "b", "c")), FlowComponent(("a", "d", "c"))]
        utils = {("a", "b"): 0.8, ("b", "c"): 0.8, ("a", "d"): 0.2, ("d", "c"): 0.2}
        even = reordering_retx_fraction(comps, [50.0, 50.0], self.delays, utils)
        skewed = reordering_retx_fraction(comps, [95.0, 5.0], self.delays, utils)
        assert skewed < even
