"""DET001 bad fixture: a loop leaks set iteration (hash) order."""


def link_rows(pairs):
    """Rows in set order — varies with PYTHONHASHSEED."""
    crossing = {(u, v) for (u, v) in pairs}
    rows = []
    for link in crossing:
        rows.append(link)
    return rows
