"""dardlint: the repo's AST-based determinism & hot-path static analyzer.

``dard lint src`` runs repo-specific rules that dynamic testing can only
catch probabilistically — unordered set iteration feeding results
(DET001), global RNG / wall-clock reads (DET002), hash-ordered float
accumulation (DET003), unordered serialization (DET004), string-keyed
lookups in the reallocation hot path (PERF001), persistent-load mutation
outside its owners (API001), event-heap bypasses (API002), and broad
``except`` clauses that can swallow invariant violations (EXC001).

Since v2 the engine is interprocedural: an ownership registry
(:mod:`repro.lint.ownership`) plus a call-graph/taint analysis
(:mod:`repro.lint.callgraph`) back the parallel-safety rule family —
RACE001 (cross-owner write from component-scoped code), RACE002 (dirty
cross-component read outside the merge points), RACE003 (shared-structure
mutation inside a component round), OWN001 (shared state created outside
its owner module) — and ``dard lint --parallel-safety-report`` emits a
JSON certificate of every function proven component-pure. The driver
also polices its own escape hatch: a suppression comment that matches no
finding is DRD001.

See DESIGN.md "Static guarantees" for the determinism contract each rule
enforces and the suppression policy; TESTING.md for how the CI gate runs.
"""

from repro.lint.engine import (
    Finding,
    LintConfig,
    LintResult,
    ModuleContext,
    ProgramContext,
    Rule,
    all_rules,
    load_config,
    module_name_for,
    register,
    run_lint,
    run_lint_result,
)
from repro.lint.ownership import (
    BOUNDARIES,
    COMPONENT_SCOPED,
    MERGE_POINTS,
    OWNERSHIP,
    SharedState,
    state_by_attr,
)
from repro.lint.reporting import SCHEMA_VERSION, render_json, render_text, to_document

__all__ = [
    "BOUNDARIES",
    "COMPONENT_SCOPED",
    "Finding",
    "LintConfig",
    "LintResult",
    "MERGE_POINTS",
    "ModuleContext",
    "OWNERSHIP",
    "ProgramContext",
    "Rule",
    "SCHEMA_VERSION",
    "SharedState",
    "all_rules",
    "load_config",
    "module_name_for",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "run_lint_result",
    "state_by_attr",
    "to_document",
]
