"""Oversubscribed 8-core 3-tier topology (Cisco reference design).

The paper's third evaluation topology (§4.3.2) is a traditional tree with
oversubscription greater than 1: the access layer is 2.5:1 and the
aggregation layer 1.5:1. With uniform 1 Gbps links those ratios are realized
by:

* ``num_cores`` core switches (8 in the paper);
* pods of 2 aggregation switches, each uplinked to every core;
* ``access_per_pod`` access (ToR-layer) switches per pod, each dual-homed
  to both pod aggregation switches — 12 per pod gives the aggregation layer
  12 Gbps down vs 8 Gbps up = 1.5:1;
* ``hosts_per_access`` hosts per access switch — 5 gives the access layer
  5 Gbps down vs 2 Gbps up = 2.5:1.

Node naming: ``core_{i}``, ``agg_{pod}_{i}``, ``tor_{pod}_{i}`` (access
switches take the ToR role), ``h_{pod}_{tor}_{k}``.
"""

from __future__ import annotations

from repro.common.errors import TopologyError
from repro.common.units import GBPS
from repro.topology.graph import Node, NodeKind
from repro.topology.multirooted import MultiRootedTopology


class ThreeTier(MultiRootedTopology):
    """A traditional oversubscribed 3-tier datacenter tree."""

    def __init__(
        self,
        num_cores: int = 8,
        num_pods: int = 4,
        aggs_per_pod: int = 2,
        access_per_pod: int = 12,
        hosts_per_access: int = 5,
        link_bandwidth_bps: float = GBPS,
        host_bandwidth_bps: float = None,
        link_delay_s: float = 0.0001,
    ) -> None:
        if min(num_cores, num_pods, aggs_per_pod, access_per_pod, hosts_per_access) < 1:
            raise TopologyError("all 3-tier size parameters must be >= 1")
        super().__init__()
        self.num_cores = num_cores
        self.num_pods = num_pods
        self.aggs_per_pod = aggs_per_pod
        self.access_per_pod = access_per_pod
        self.hosts_per_access = hosts_per_access
        self.link_bandwidth_bps = link_bandwidth_bps
        self.host_bandwidth_bps = (
            host_bandwidth_bps if host_bandwidth_bps is not None else link_bandwidth_bps
        )
        self._build(link_delay_s)
        self.validate()

    @property
    def access_oversubscription(self) -> float:
        """Host-facing over uplink bandwidth at an access switch."""
        down = self.hosts_per_access * self.host_bandwidth_bps
        up = self.aggs_per_pod * self.link_bandwidth_bps
        return down / up

    @property
    def aggregation_oversubscription(self) -> float:
        """ToR-facing over core-facing bandwidth at an aggregation switch."""
        down = self.access_per_pod * self.link_bandwidth_bps
        up = self.num_cores * self.link_bandwidth_bps
        return down / up

    def _build(self, delay: float) -> None:
        for c in range(self.num_cores):
            self.add_node(Node(f"core_{c}", NodeKind.CORE, pod=None, index=c))
        for pod in range(self.num_pods):
            for a in range(self.aggs_per_pod):
                agg = f"agg_{pod}_{a}"
                self.add_node(Node(agg, NodeKind.AGG, pod=pod, index=a))
                for c in range(self.num_cores):
                    self.add_link(agg, f"core_{c}", self.link_bandwidth_bps, delay)
            for t in range(self.access_per_pod):
                tor = f"tor_{pod}_{t}"
                self.add_node(Node(tor, NodeKind.TOR, pod=pod, index=t))
                for a in range(self.aggs_per_pod):
                    self.add_link(tor, f"agg_{pod}_{a}", self.link_bandwidth_bps, delay)
                for k in range(self.hosts_per_access):
                    host = f"h_{pod}_{t}_{k}"
                    self.add_node(Node(host, NodeKind.HOST, pod=pod, index=k))
                    self.add_link(host, tor, self.host_bandwidth_bps, delay)

    def __repr__(self) -> str:
        return (
            f"ThreeTier(cores={self.num_cores}, pods={self.num_pods}, "
            f"hosts={len(self.hosts())})"
        )
