"""EXC001 good fixture: validation signals escape before the broad arm."""

from repro.common.errors import ReproError


def run_check(check):
    """ReproError (and its violation subclasses) propagate; only genuine
    third-party crashes reach the broad handler."""
    try:
        check()
    except ReproError:
        raise
    except Exception:
        return False
    return True
