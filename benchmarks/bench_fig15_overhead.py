"""Figure 15: control-plane bandwidth vs peak number of elephant flows.

Paper shape: at light load DARD's probe traffic can undercut the
centralized scheduler's reports (smaller messages); as load grows DARD's
probing rises with the number of communicating pairs but is *bounded by
topology size* (all-pairs probing), while centralized report traffic is
proportional to flow count.
"""

from repro.experiments.figures import fig15_overhead
from conftest import run_once


def test_fig15_overhead(benchmark, save_output):
    output = run_once(
        benchmark, fig15_overhead, rates=(0.01, 0.03, 0.06), duration_s=60.0
    )
    save_output(output)
    dard = sorted(
        (r for r in output.rows if r["scheduler"] == "dard"),
        key=lambda r: r["rate_per_host"],
    )
    hedera = sorted(
        (r for r in output.rows if r["scheduler"] == "hedera"),
        key=lambda r: r["rate_per_host"],
    )
    # Both overheads grow with load...
    assert dard[-1]["control_kb_per_s"] > dard[0]["control_kb_per_s"]
    assert hedera[-1]["control_kb_per_s"] > hedera[0]["control_kb_per_s"]
    # ...but DARD's stays below the all-pairs probing ceiling:
    # 128 hosts x 31 other ToRs x 21 switches x 80 B at 1 query/s.
    ceiling_kb = 128 * 31 * 21 * 80 / 1e3
    assert dard[-1]["control_kb_per_s"] < ceiling_kb
    # Peak elephant counts grew with the arrival rate (the x-axis).
    assert dard[-1]["peak_elephants"] > dard[0]["peak_elephants"]
