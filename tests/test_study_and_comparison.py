"""Tests for the convergence study and paired per-flow comparison."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.experiments import (
    ScenarioConfig,
    paired_comparison,
    run_scenario,
)
from repro.gametheory import convergence_study, random_game_on, run_best_response_dynamics
from repro.topology import FatTree

import numpy as np


class TestConvergenceStudy:
    def test_rows_per_size(self):
        rows = convergence_study(flow_counts=(2, 4), trials=5, seed=0)
        assert [r.num_flows for r in rows] == [2, 4]
        for row in rows:
            assert row.trials == 5
            assert row.max_steps >= row.mean_steps >= 0

    def test_poa_reported_for_small_games(self):
        rows = convergence_study(flow_counts=(3,), trials=5, seed=1)
        row = rows[0]
        assert row.mean_poa is not None
        # Nash can never beat the optimum.
        assert row.mean_poa <= 1.0 + 1e-9
        # ... and the paper's claim: the gap is small in practice.
        assert row.worst_poa >= 0.5

    def test_poa_skipped_when_too_big(self):
        # 64 flows x 4 routes each = 4^64 strategies: way over the limit.
        rows = convergence_study(flow_counts=(64,), trials=2, seed=2)
        assert rows[0].mean_poa is None

    def test_random_game_on_structure(self):
        topo = FatTree(p=4)
        game = random_game_on(topo, 5, np.random.default_rng(0))
        assert len(game.flows) == 5
        for flow in game.flows:
            assert len(flow.routes) in (2, 4)  # intra- or inter-pod

    def test_steps_grow_with_flows(self):
        rows = convergence_study(flow_counts=(2, 16), trials=10, seed=3)
        assert rows[1].mean_steps >= rows[0].mean_steps


class TestPairedComparison:
    # 128 MB at 100 Mbps: flows last >= 10.24 s, so they actually become
    # elephants and DARD has something to schedule.
    BASE = dict(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        arrival_rate_per_host=0.06,
        duration_s=90.0,
        flow_size_bytes=128 * MB,
        seed=6,
    )

    def _run(self, scheduler, **overrides):
        return run_scenario(ScenarioConfig(scheduler=scheduler, **{**self.BASE, **overrides}))

    def test_pairing_and_direction(self):
        ecmp = self._run("ecmp")
        dard = self._run("dard")
        cmp = paired_comparison(ecmp, dard)
        assert cmp.flows == len(ecmp.records)
        # DARD (B) should win on more flows than it loses and improve the
        # paired mean.
        assert cmp.b_win_fraction >= 0.4
        assert cmp.paired_improvement > 0
        assert "paired improvement" in cmp.summary()

    def test_self_comparison_is_zero(self):
        a = self._run("ecmp")
        b = self._run("ecmp")
        cmp = paired_comparison(a, b)
        assert cmp.mean_delta_s == pytest.approx(0.0, abs=1e-9)
        assert cmp.b_win_fraction == 0.0

    def test_mismatched_workloads_rejected(self):
        a = self._run("ecmp")
        b = self._run("ecmp", seed=7)
        with pytest.raises(ConfigurationError):
            paired_comparison(a, b)
