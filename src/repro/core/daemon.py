"""The per-host DARD daemon (paper §3.1).

Owns the host's monitors and runs Algorithm 1 (*selfish flow scheduling*)
over each of them: pick the monitored path with the largest BoNF and the
host's own active path with the smallest; if moving one elephant to the
former raises the bottleneck estimate by more than δ, re-encapsulate one
elephant flow onto the better path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.addressing.codec import PathCodec
from repro.common.logging import get_logger
from repro.scheduling.base import encode_and_verify
from repro.scheduling.messages import MessageLedger, MessageSizes
from repro.simulator.flows import Flow, FlowComponent
from repro.simulator.network import Network
from repro.core.monitor import PathMonitor

PairKey = Tuple[str, str]

logger = get_logger("core.daemon")


class HostDaemon:
    """Detector + monitors + selfish scheduler for one end host."""

    def __init__(
        self,
        host: str,
        network: Network,
        codec: PathCodec,
        ledger: MessageLedger,
        delta_bps: float,
        message_sizes: MessageSizes = MessageSizes(),
    ) -> None:
        self.host = host
        self.network = network
        self.codec = codec
        self.ledger = ledger
        self.delta_bps = delta_bps
        self.message_sizes = message_sizes
        self.monitors: Dict[PairKey, PathMonitor] = {}
        #: live elephant flows of this host, grouped by (src ToR, dst ToR).
        self.elephants: Dict[PairKey, List[Flow]] = {}
        self.shifts_performed = 0

    # -- detector callbacks ------------------------------------------------------

    def on_elephant(self, flow: Flow) -> None:
        """A local TCP connection crossed the 10 s elephant threshold."""
        pair = self._pair_of(flow)
        src_tor, dst_tor = pair
        if src_tor == dst_tor:
            return  # single trivial path; nothing to monitor or schedule
        self.elephants.setdefault(pair, []).append(flow)
        if pair not in self.monitors:
            self.monitors[pair] = PathMonitor(
                self.network, src_tor, dst_tor, self.ledger, self.message_sizes
            )

    def on_flow_completed(self, flow: Flow) -> None:
        """Release monitors whose last elephant finished (paper §2.4.1)."""
        pair = self._pair_of(flow)
        flows = self.elephants.get(pair)
        if not flows:
            return
        self.elephants[pair] = [f for f in flows if f.flow_id != flow.flow_id]
        if not self.elephants[pair]:
            del self.elephants[pair]
            self.monitors.pop(pair, None)

    def _pair_of(self, flow: Flow) -> PairKey:
        topo = self.network.topology
        return (topo.tor_of(flow.src), topo.tor_of(flow.dst))

    # -- monitoring ---------------------------------------------------------------

    def query_monitors(self) -> None:
        """Periodic switch-state polling for every live monitor."""
        for monitor in self.monitors.values():
            monitor.query()

    # -- Algorithm 1: selfish flow scheduling ----------------------------------------

    def flow_vector(self, monitor: PathMonitor) -> List[int]:
        """FV: how many of this host's elephants ride each monitored path."""
        counts = [0] * len(monitor.paths)
        for flow in self.elephants.get((monitor.src_tor, monitor.dst_tor), []):
            if not flow.active:
                continue
            switch_path = tuple(flow.switch_path()[1:-1])
            counts[monitor.path_index(switch_path)] += 1
        return counts

    def run_scheduling_round(self) -> int:
        """One selfish round over all monitors; returns number of shifts."""
        shifts = 0
        for monitor in list(self.monitors.values()):
            if self._schedule_one(monitor):
                shifts += 1
        self.shifts_performed += shifts
        return shifts

    def _schedule_one(self, monitor: PathMonitor) -> bool:
        states = monitor.path_states
        flow_vector = self.flow_vector(monitor)
        max_index = self._best_target(states)
        min_index = self._worst_active(states, flow_vector)
        if max_index is None or min_index is None or max_index == min_index:
            return False
        estimation = states[max_index].bonf_with_one_more_flow()
        min_bonf = states[min_index].bonf
        if estimation - min_bonf <= self.delta_bps:
            return False
        flow = self._pick_flow(monitor, min_index)
        if flow is None:
            return False
        self._shift(flow, monitor, max_index)
        return True

    @staticmethod
    def _best_target(states) -> Optional[int]:
        """The path with the largest BoNF; ties break toward the higher
        post-shift estimate, then the lower index (deterministic)."""
        best = None
        for i, state in enumerate(states):
            if best is None:
                best = i
                continue
            current = states[best]
            if (state.bonf, state.bonf_with_one_more_flow()) > (
                current.bonf,
                current.bonf_with_one_more_flow(),
            ):
                best = i
        return best

    @staticmethod
    def _worst_active(states, flow_vector) -> Optional[int]:
        """The smallest-BoNF path this host actually sends elephants on.

        A host cannot shift a flow off a path it does not contribute to
        (§2.5's "inactive path" rule).
        """
        worst = None
        for i, state in enumerate(states):
            if flow_vector[i] <= 0:
                continue
            if worst is None or state.bonf < states[worst].bonf:
                worst = i
        return worst

    def _pick_flow(self, monitor: PathMonitor, path_index: int) -> Optional[Flow]:
        target = monitor.paths[path_index]
        for flow in self.elephants.get((monitor.src_tor, monitor.dst_tor), []):
            if flow.active and tuple(flow.switch_path()[1:-1]) == target:
                return flow
        return None

    def _shift(self, flow: Flow, monitor: PathMonitor, to_index: int) -> None:
        """Re-encapsulate ``flow`` onto a new path via its address pair."""
        new_path = monitor.paths[to_index]
        # The route change is expressed purely as an address-pair swap; the
        # codec round-trip asserts the static tables will honor it.
        encode_and_verify(self.codec, flow.src, flow.dst, new_path)
        component = FlowComponent(
            self.network.topology.host_path(flow.src, flow.dst, new_path)
        )
        logger.debug(
            "t=%.2f host %s shifts flow %d to path %s",
            self.network.now, self.host, flow.flow_id, new_path,
        )
        self.network.reroute_flow(flow, [component])
        # Optimistically update local state so later monitors in this round
        # see the shift (the next query refreshes ground truth).
        monitor.path_states[to_index] = type(monitor.path_states[to_index])(
            bandwidth_bps=monitor.path_states[to_index].bandwidth_bps,
            flow_numbers=monitor.path_states[to_index].flow_numbers + 1,
        )
