"""Runtime ownership sanitizer: write barriers proving the static verdicts.

The static layer (:mod:`repro.lint.ownership` + the RACE/OWN rules)
*claims* that the runtime-guarded shared arrays — the Network per-link
arrays and every FlowStore column — are only ever mutated by the
functions named in the ownership table. This module asserts the same
claim dynamically: while a sanitizer is attached to a network, the
guarded arrays are locked (``ndarray.flags.writeable = False``) except
inside a sanctioned writer, whose class-level wrapper lifts the barriers
for the duration of the call and re-locks afterwards (re-fetching each
attribute, because writers like ``_refill_full`` and ``FlowStore._grow``
legitimately rebind their arrays). A write from anywhere else raises
numpy's ``ValueError: assignment destination is read-only`` — turning a
latent race into a deterministic, attributable crash under
``repro validate --fuzz --sanitize``.

The wrapper set is *derived from the ownership table*, not hand-listed:
every writer name of a ``runtime_guarded`` entry is resolved against the
Flow property setters, then FlowStore, then Network. Names that resolve
to none of those (e.g. ``rebuild``, whose column writes flow through the
wrapped ``component_id`` setter) need no wrapper of their own.

Wrappers are installed on the *classes* (FlowStore uses ``__slots__``,
so per-instance patching is impossible) and are refcounted: instances
without an attached sanitizer take a dictionary miss and fall through to
the original method, which is why an instrumented fuzz process can still
run unsanitized reference twins — and why the settle/control-plane
differential oracles inside ``run_case`` double as the bit-identical
proof that instrumentation changes nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.lint.ownership import OWNERSHIP

__all__ = ["OwnershipSanitizer", "guarded_network_attrs", "guarded_column_attrs"]


def guarded_network_attrs() -> Tuple[str, ...]:
    """Runtime-guarded Network array attributes, table order."""
    return tuple(
        state.attr
        for state in OWNERSHIP
        if state.owner_class == "Network" and state.runtime_guarded
    )


def guarded_column_attrs() -> Tuple[str, ...]:
    """Runtime-guarded FlowStore column attributes, table order."""
    return tuple(
        state.attr
        for state in OWNERSHIP
        if state.owner_class == "FlowStore" and state.runtime_guarded
    )


def _guarded_writer_names() -> Tuple[str, ...]:
    """Every sanctioned writer of any runtime-guarded entry (sorted)."""
    names = set()
    for state in OWNERSHIP:
        if state.runtime_guarded:
            names.update(state.writers)
    names.discard("__init__")  # guards attach post-construction
    return tuple(sorted(names))


#: Sanitizers by id(network) and id(flow_store) — how a class-level
#: wrapper finds the barrier state of the instance it was called on.
_ACTIVE_NETWORKS: Dict[int, "OwnershipSanitizer"] = {}
_ACTIVE_STORES: Dict[int, "OwnershipSanitizer"] = {}

#: (class, attribute name, original object) for every installed wrapper,
#: plus the refcount of attached sanitizers sharing them.
_INSTALLED: List[Tuple[type, str, Any]] = []
_INSTALL_COUNT = 0


def _network_lookup(
    instance: Any, args: Tuple[Any, ...]
) -> Optional["OwnershipSanitizer"]:
    return _ACTIVE_NETWORKS.get(id(instance))


def _store_lookup(
    instance: Any, args: Tuple[Any, ...]
) -> Optional["OwnershipSanitizer"]:
    return _ACTIVE_STORES.get(id(instance))


def _flow_lookup(
    instance: Any, args: Tuple[Any, ...]
) -> Optional["OwnershipSanitizer"]:
    store = getattr(instance, "_store", None)
    if store is None:
        # bind_store(store, row) runs before self._store is set; the
        # store being bound is the first positional argument.
        for arg in args[:1]:
            return _ACTIVE_STORES.get(id(arg))
        return None
    return _ACTIVE_STORES.get(id(store))


def _wrap(
    original: Callable[..., Any],
    lookup: Callable[[Any, Tuple[Any, ...]], Optional["OwnershipSanitizer"]],
) -> Callable[..., Any]:
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        sanitizer = lookup(self, args)
        if sanitizer is None:
            return original(self, *args, **kwargs)
        sanitizer._unlock()
        try:
            return original(self, *args, **kwargs)
        finally:
            sanitizer._relock()

    wrapper.__name__ = getattr(original, "__name__", "wrapped")
    wrapper.__doc__ = original.__doc__
    wrapper.__sanitizer_wrapped__ = original  # type: ignore[attr-defined]
    return wrapper


def _install_wrappers() -> None:
    """Wrap every sanctioned writer on Flow / FlowStore / Network once."""
    from repro.simulator.flows import Flow
    from repro.simulator.flowstore import FlowStore
    from repro.simulator.network import Network

    for name in _guarded_writer_names():
        flow_member = Flow.__dict__.get(name)
        if isinstance(flow_member, property) and flow_member.fset is not None:
            _INSTALLED.append((Flow, name, flow_member))
            setattr(
                Flow,
                name,
                property(
                    flow_member.fget,
                    _wrap(flow_member.fset, _flow_lookup),
                    flow_member.fdel,
                    flow_member.__doc__,
                ),
            )
            continue
        if callable(flow_member):
            _INSTALLED.append((Flow, name, flow_member))
            setattr(Flow, name, _wrap(flow_member, _flow_lookup))
            continue
        store_member = FlowStore.__dict__.get(name)
        if callable(store_member):
            _INSTALLED.append((FlowStore, name, store_member))
            setattr(FlowStore, name, _wrap(store_member, _store_lookup))
            continue
        network_member = Network.__dict__.get(name)
        if callable(network_member):
            _INSTALLED.append((Network, name, network_member))
            setattr(Network, name, _wrap(network_member, _network_lookup))
        # Writers resolving to none of the three (e.g. rebuild) mutate
        # columns only through the wrapped Flow setters — nothing to do.


def _remove_wrappers() -> None:
    while _INSTALLED:
        cls, name, original = _INSTALLED.pop()
        setattr(cls, name, original)


class OwnershipSanitizer:
    """Write-barrier guard over one network's registered shared arrays.

    Use as a context manager (tests) or install/uninstall explicitly
    (the fuzz harness's ``instrument`` hook installs; the harness never
    uninstalls mid-run, the network dies with the case)::

        with OwnershipSanitizer(network):
            engine.run_until(...)

    While attached, any mutation of a guarded array outside a sanctioned
    writer raises ``ValueError`` (numpy's read-only assignment error).
    """

    def __init__(self, network: Any) -> None:
        self.network = network
        self.store = network.flow_store
        self._depth = 0
        self._attached = False

    # -- barrier mechanics -------------------------------------------------

    def _iter_arrays(self) -> Iterator[np.ndarray]:
        """Current guarded arrays, re-fetched to chase writer rebinds."""
        for attr in guarded_network_attrs():
            array = getattr(self.network, attr, None)
            if isinstance(array, np.ndarray):
                yield array
        for attr in guarded_column_attrs():
            array = getattr(self.store, attr, None)
            if isinstance(array, np.ndarray):
                yield array

    def _set_writeable(self, writeable: bool) -> None:
        for array in self._iter_arrays():
            array.flags.writeable = writeable

    def _unlock(self) -> None:
        self._depth += 1
        if self._depth == 1:
            self._set_writeable(True)

    def _relock(self) -> None:
        self._depth -= 1
        if self._depth == 0:
            self._set_writeable(False)

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> "OwnershipSanitizer":
        """Attach: wrap the writers (first install) and lock the arrays."""
        global _INSTALL_COUNT
        if self._attached:
            return self
        if _INSTALL_COUNT == 0:
            _install_wrappers()
        _INSTALL_COUNT += 1
        _ACTIVE_NETWORKS[id(self.network)] = self
        _ACTIVE_STORES[id(self.store)] = self
        self._attached = True
        self._set_writeable(False)
        return self

    def uninstall(self) -> None:
        """Detach: unlock the arrays, drop the wrappers when last out."""
        global _INSTALL_COUNT
        if not self._attached:
            return
        self._set_writeable(True)
        _ACTIVE_NETWORKS.pop(id(self.network), None)
        _ACTIVE_STORES.pop(id(self.store), None)
        self._attached = False
        _INSTALL_COUNT -= 1
        if _INSTALL_COUNT == 0:
            _remove_wrappers()

    def __enter__(self) -> "OwnershipSanitizer":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()
