"""Determinism rules: DET001–DET004.

These encode the repo's reproducibility contract (DESIGN.md "Static
guarantees"): every simulation outcome — rates, FCTs, event order, golden
digests — must be a pure function of the experiment seed, byte-identical
across processes and ``PYTHONHASHSEED`` values. The common enemy is hash
order: set iteration, global RNG state, and float accumulation over
unordered collections all leak it into results.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.engine import Finding, ModuleContext, Rule, register
from repro.lint.scopes import walk_scopes
from repro.lint.setlike import ModuleSetFacts, ScopeNames, carries_set_order, is_set_like

#: Call targets that materialize or forward their argument's iteration
#: order. ``sorted``/``min``/``max``/``any``/``all``/``len``/``set`` are
#: deliberately absent: their results do not depend on input order.
_ORDER_CONSUMING_CALLS = {"list", "tuple", "iter", "enumerate", "reversed"}
_ORDER_CONSUMING_METHODS = {"join", "extend", "fromkeys", "fromiter", "array", "asarray"}


def _set_order_events(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.AST, str, ScopeNames]]:
    """Yield ``(node, kind, scope)`` wherever set iteration order escapes.

    Kinds: ``for`` (loop over a set), ``comp`` (list/dict comprehension),
    ``call`` (list()/tuple()/.join()/...), ``star`` (*-unpack), ``sum``
    (builtin float sum — reported by DET003, not DET001).
    """
    facts = ModuleSetFacts(ctx.tree)
    events: List[Tuple[ast.AST, str, ScopeNames]] = []

    def visit(node: ast.AST, scope: ScopeNames) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if carries_set_order(node.iter, scope):
                events.append((node, "for", scope))
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for generator in node.generators:
                if carries_set_order(generator.iter, scope):
                    events.append((node, "comp", scope))
                    break
        elif isinstance(node, ast.Starred):
            if is_set_like(node.value, scope):
                events.append((node, "star", scope))
        elif isinstance(node, ast.Call):
            func = node.func
            if not node.args:
                return
            first = node.args[0]
            if isinstance(func, ast.Name):
                if func.id == "sum" and carries_set_order(first, scope):
                    events.append((node, "sum", scope))
                elif func.id in _ORDER_CONSUMING_CALLS and carries_set_order(
                    first, scope
                ):
                    events.append((node, "call", scope))
            elif isinstance(func, ast.Attribute):
                if func.attr in _ORDER_CONSUMING_METHODS and carries_set_order(
                    first, scope
                ):
                    events.append((node, "call", scope))

    walk_scopes(ctx.tree, facts, visit)
    return iter(events)


@register
class UnorderedSetIteration(Rule):
    """DET001: iteration order of a ``set`` escapes into program results.

    Set iteration is hash order — for strings and tuples that varies with
    ``PYTHONHASHSEED``, so loops, comprehensions, and ``list()`` calls
    over sets can reorder float accumulation, event scheduling, or output
    rows between processes. Iterate ``sorted(the_set)`` or keep hot-path
    state in dense arrays indexed by interned ids.
    """

    code = "DET001"
    name = "unordered-set-iteration"
    description = "set iteration order escapes; use sorted() or dense-array order"
    scope = ("repro",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, kind, _scope in _set_order_events(ctx):
            if kind == "sum":
                continue  # DET003's concern: float accumulation
            if kind == "for":
                what = "loop iterates a set in hash order"
            elif kind == "comp":
                what = "comprehension iterates a set in hash order"
            elif kind == "star":
                what = "*-unpacking a set forwards hash order"
            else:
                what = "call materializes a set's hash order"
            yield ctx.finding(node, self.code, f"{what}; use sorted(...) first")


@register
class GlobalRngOrWallClock(Rule):
    """DET002: global RNG state or wall-clock reads outside ``common.rng``.

    ``random.*`` module functions, ``np.random.*`` module state, and
    ``time.time``-family calls make results depend on process history or
    the host clock. All randomness must come from
    :class:`repro.common.rng.RngStreams` named streams; wall-clock
    telemetry that provably never feeds simulation state may stay, with a
    per-line suppression recording that audit.
    """

    code = "DET002"
    name = "global-rng-or-wall-clock"
    description = "wall-clock / global-RNG call outside repro.common.rng"
    scope = ("repro",)
    exempt = ("repro.common.rng",)

    _TIME_FNS = {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
    }
    _DATETIME_FNS = {"now", "utcnow", "today"}
    _RANDOM_ALLOWED = {"Random", "SystemRandom"}
    _NP_RANDOM_ALLOWED = {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        time_aliases: Set[str] = set()
        random_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()
        np_random_aliases: Set[str] = set()
        datetime_mod_aliases: Set[str] = set()
        datetime_cls_aliases: Set[str] = set()
        #: bare names bound by ``from`` imports, mapped to their hazard.
        direct: Dict[str, str] = {}

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        time_aliases.add(bound)
                    elif alias.name == "random":
                        random_aliases.add(bound)
                    elif alias.name == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        np_random_aliases.add(alias.asname or "numpy")
                    elif alias.name == "datetime":
                        datetime_mod_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "time" and alias.name in self._TIME_FNS:
                        direct[bound] = f"time.{alias.name}"
                    elif node.module == "random":
                        if alias.name not in self._RANDOM_ALLOWED:
                            direct[bound] = f"random.{alias.name}"
                    elif node.module == "numpy" and alias.name == "random":
                        np_random_aliases.add(bound)
                    elif node.module == "numpy.random":
                        if alias.name not in self._NP_RANDOM_ALLOWED:
                            direct[bound] = f"numpy.random.{alias.name}"
                    elif node.module == "datetime" and alias.name == "datetime":
                        datetime_cls_aliases.add(bound)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                hazard = direct.get(func.id)
                if hazard is not None:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"{hazard} call; route through repro.common.rng streams "
                        "(or suppress with a rationale if it never feeds "
                        "simulation state)",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in time_aliases and func.attr in self._TIME_FNS:
                    yield ctx.finding(
                        node, self.code, f"wall-clock read time.{func.attr}()"
                    )
                elif (
                    base.id in random_aliases
                    and func.attr not in self._RANDOM_ALLOWED
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"global-state random.{func.attr}(); use an "
                        "RngStreams named stream",
                    )
                elif (
                    base.id in np_random_aliases
                    and func.attr not in self._NP_RANDOM_ALLOWED
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"numpy global-state random.{func.attr}(); use "
                        "default_rng via RngStreams",
                    )
                elif (
                    base.id in datetime_cls_aliases
                    and func.attr in self._DATETIME_FNS
                ):
                    yield ctx.finding(
                        node, self.code, f"wall-clock read datetime.{func.attr}()"
                    )
            elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                if (
                    base.value.id in numpy_aliases
                    and base.attr == "random"
                    and func.attr not in self._NP_RANDOM_ALLOWED
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"numpy global-state random.{func.attr}(); use "
                        "default_rng via RngStreams",
                    )
                elif (
                    base.value.id in datetime_mod_aliases
                    and base.attr in ("datetime", "date")
                    and func.attr in self._DATETIME_FNS
                ):
                    yield ctx.finding(
                        node, self.code, f"wall-clock read datetime.{func.attr}()"
                    )


@register
class FloatSumOverUnordered(Rule):
    """DET003: builtin ``sum`` over an unordered collection of floats.

    Float addition is not associative: summing a set (or a generator over
    one) rounds differently under different hash orders, breaking the
    allocator's bit-exactness guarantees. Use ``math.fsum`` (exact,
    order-independent) or sum a deterministically ordered array.
    """

    code = "DET003"
    name = "float-sum-over-unordered"
    description = "sum() over an unordered iterable; use math.fsum or arrays"
    scope = (
        "repro.simulator",
        "repro.baselines",
        "repro.gametheory",
        "repro.validation",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, kind, _scope in _set_order_events(ctx):
            if kind != "sum":
                continue
            yield ctx.finding(
                node,
                self.code,
                "sum() over a set rounds in hash order; use math.fsum or a "
                "sorted/dense array",
            )


@register
class UnorderedSerialization(Rule):
    """DET004: unordered collections feeding golden-trace serialization.

    Golden traces and exported reports are compared byte-for-byte, so the
    serializers must impose a total order themselves: ``json.dump`` needs
    ``sort_keys=True``, and sets must never appear in a serialized
    payload or a digest input (their iteration order is the hash order
    DET001 bans).
    """

    code = "DET004"
    name = "unordered-serialization"
    description = "json.dump without sort_keys=True, or a set feeding a digest"
    scope = ("repro.validation", "repro.analysis", "repro.experiments")

    _DIGEST_FUNCS = {"_digest", "digest"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        facts = ModuleSetFacts(ctx.tree)
        json_aliases = {"json"}
        direct_dump: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "json":
                        json_aliases.add(alias.asname or "json")
            elif isinstance(node, ast.ImportFrom) and node.module == "json":
                for alias in node.names:
                    if alias.name in ("dump", "dumps"):
                        direct_dump.add(alias.asname or alias.name)

        events: List[Finding] = []

        def visit(node: ast.AST, scope: ScopeNames) -> None:
            if not isinstance(node, ast.Call):
                return
            func = node.func
            is_dump = (
                isinstance(func, ast.Attribute)
                and func.attr in ("dump", "dumps")
                and isinstance(func.value, ast.Name)
                and func.value.id in json_aliases
            ) or (isinstance(func, ast.Name) and func.id in direct_dump)
            is_digest = (
                isinstance(func, ast.Name) and func.id in self._DIGEST_FUNCS
            ) or (
                isinstance(func, ast.Attribute) and func.attr in self._DIGEST_FUNCS
            )
            if is_dump:
                sort_keys = next(
                    (kw.value for kw in node.keywords if kw.arg == "sort_keys"), None
                )
                if not (
                    isinstance(sort_keys, ast.Constant) and sort_keys.value is True
                ):
                    events.append(
                        ctx.finding(
                            node,
                            self.code,
                            "json serialization without sort_keys=True; key "
                            "order must not depend on construction history",
                        )
                    )
            if is_dump or is_digest:
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.expr) and is_set_like(sub, scope):
                            events.append(
                                ctx.finding(
                                    sub,
                                    self.code,
                                    "set feeds a serialized payload/digest; "
                                    "serialize sorted(...) instead",
                                )
                            )
                            break

        walk_scopes(ctx.tree, facts, visit)
        yield from events
