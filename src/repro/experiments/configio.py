"""Scenario configuration files (JSON).

Experiments beyond the built-in registry live naturally in small config
files that can be versioned and shared; this module round-trips
:class:`ScenarioConfig` to strict JSON, validating unknown keys loudly
(a typo in a field name should never silently fall back to a default).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from repro.common.errors import ConfigurationError
from repro.experiments.runner import ScenarioConfig

PathLike = Union[str, Path]


def config_to_dict(config: ScenarioConfig) -> dict:
    """A JSON-ready dict of one scenario config."""
    payload = dataclasses.asdict(config)
    payload["link_events"] = [list(event) for event in config.link_events]
    return payload


def config_from_dict(payload: dict) -> ScenarioConfig:
    """Build a config from a dict, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(ScenarioConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(
            f"unknown scenario config keys: {sorted(unknown)}; known: {sorted(known)}"
        )
    data = dict(payload)
    if "link_events" in data:
        events = []
        for event in data["link_events"]:
            if len(event) != 4:
                raise ConfigurationError(
                    f"link event must be [action, time, u, v], got {event!r}"
                )
            events.append((event[0], float(event[1]), event[2], event[3]))
        data["link_events"] = tuple(events)
    return ScenarioConfig(**data)


def save_config(config: ScenarioConfig, path: PathLike) -> None:
    """Write a scenario config to a JSON file."""
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_config(path: PathLike) -> ScenarioConfig:
    """Read a scenario config from a JSON file."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed config {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(f"config {path} must hold a JSON object")
    return config_from_dict(payload)
