"""Extension: TeXCP at flowlet granularity (the paper's future work).

Paper §4.3.3 hypothesizes that 'scheduling traffic in granularity of a
flowlet (TCP packet burst) would reduce TeXCP's retransmission rate'.
Expected: flowlet mode drops the retransmission rate to ~zero and recovers
the goodput that packet mode loses to reordering.
"""

from repro.experiments.figures import ext_flowlet_texcp
from conftest import run_once


def test_ext_flowlet(benchmark, save_output):
    output = run_once(benchmark, ext_flowlet_texcp, duration_s=90.0)
    save_output(output)
    rows = {row["scheduler"]: row for row in output.rows}
    # The hypothesis holds: flowlets eliminate reordering retransmission...
    assert rows["texcp-flowlet"]["mean_retx_rate"] < 0.01
    assert rows["texcp"]["mean_retx_rate"] > 0.05
    # ...and recover the goodput packet-granularity loses.
    assert rows["texcp-flowlet"]["mean_fct_s"] < rows["texcp"]["mean_fct_s"]
