"""NIRA-style hierarchical addressing (paper §2.3).

Each core switch owns an address prefix; prefixes are recursively subdivided
down every (core, agg, tor) chain, so every host ends up with one address
per chain reaching its ToR. An end-to-end path is then *encoded in the
source and destination addresses alone*: the source address names the uphill
segment, the destination address names the downhill segment, and both must
be drawn from the tree of the same core. Shifting a flow to another path is
just re-encapsulating with a different address pair — switch tables never
change.
"""

from repro.addressing.codec import PathCodec
from repro.addressing.encapsulation import (
    EncapsulatedPacket,
    EncapsulationModule,
    Packet,
)
from repro.addressing.hierarchy import HierarchicalAddressing
from repro.addressing.idmap import IdMapper
from repro.addressing.prefix import Prefix, format_address

__all__ = [
    "EncapsulatedPacket",
    "EncapsulationModule",
    "HierarchicalAddressing",
    "IdMapper",
    "Packet",
    "PathCodec",
    "Prefix",
    "format_address",
]
