"""API quality gates: docstring coverage and export hygiene.

Every public module, class, and function in the library must carry a
docstring (deliverable: "doc comments on every public item"), and every
``__all__`` name must resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # running it parses argv and exits
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_members_documented(self, module):
        """Every public class/function (and public method, counting
        docstrings inherited from base classes) carries documentation."""
        undocumented = []
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (inspect.getdoc(member) or "").strip():
                undocumented.append(name)
                continue
            if inspect.isclass(member):
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    bound = getattr(member, method_name, method)
                    if not (inspect.getdoc(bound) or "").strip():
                        undocumented.append(f"{name}.{method_name}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestExports:
    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_names_resolve(self, module):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_top_level_surface_is_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
