"""Analytic control-plane overhead models (paper §4.3.4, Fig. 15).

The paper's scalability argument is asymptotic, not experimental: DARD's
probe traffic is *bounded by topology size* — in the worst case every host
monitors every other ToR ("the system only needs to handle all pair
probes") — while a centralized scheduler's report/update traffic grows
with the number of elephant flows. These closed forms make that argument
executable; tests and benches check the simulator never exceeds them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scheduling.messages import MessageSizes
from repro.topology.multirooted import MultiRootedTopology
from repro.core.monitor import switches_to_query


@dataclass(frozen=True)
class OverheadModel:
    """Closed-form control-bandwidth bounds for one topology."""

    #: worst-case DARD probe bandwidth: all-pairs monitoring (bytes/s).
    dard_ceiling_bytes_per_s: float
    #: probe bytes per monitor per query round.
    bytes_per_monitor_round: float
    #: report bytes per elephant per centralized scheduling round.
    report_bytes_per_elephant: float


def bytes_per_monitor_round(
    topology: MultiRootedTopology,
    src_tor: str,
    dst_tor: str,
    sizes: MessageSizes = MessageSizes(),
) -> float:
    """Probe bytes one monitor generates per query round (query + reply
    per switch in its Path State Assembling set)."""
    n = len(switches_to_query(topology, src_tor, dst_tor))
    return n * (sizes.dard_query + sizes.dard_reply)


def dard_probe_ceiling_bytes_per_s(
    topology: MultiRootedTopology,
    query_interval_s: float = 1.0,
    sizes: MessageSizes = MessageSizes(),
) -> float:
    """Worst-case DARD probe bandwidth: every host monitors every other ToR.

    This is the topology-size bound of Fig. 15's third stage. Exact — it
    sums the true per-pair query-set sizes rather than assuming the
    inter-pod maximum everywhere.
    """
    if query_interval_s <= 0:
        raise ValueError(f"query interval must be positive, got {query_interval_s}")
    tors = sorted(topology.tors())
    # Per source ToR, the cost of monitoring every other ToR; each host on
    # that ToR may run its own monitors (monitors are per host, §2.4.1).
    total = 0.0
    for src_tor in tors:
        hosts = len(topology.hosts_of_tor(src_tor))
        per_host = sum(
            bytes_per_monitor_round(topology, src_tor, dst_tor, sizes)
            for dst_tor in tors
            if dst_tor != src_tor
        )
        total += hosts * per_host
    return total / query_interval_s


def dard_probe_rate_bytes_per_s(
    topology: MultiRootedTopology,
    active_pairs: int,
    query_interval_s: float = 1.0,
    sizes: MessageSizes = MessageSizes(),
) -> float:
    """Estimated DARD probe bandwidth with ``active_pairs`` live monitors,
    assuming inter-pod monitors (the common, most expensive case)."""
    tors = sorted(topology.tors())
    inter = next(
        (s, d)
        for s in tors
        for d in tors
        if topology.pod_of(s) != topology.pod_of(d)
    )
    per_round = bytes_per_monitor_round(topology, *inter, sizes)
    return active_pairs * per_round / query_interval_s


def centralized_rate_bytes_per_s(
    num_elephants: int,
    updates_per_round: int,
    scheduling_interval_s: float = 5.0,
    sizes: MessageSizes = MessageSizes(),
) -> float:
    """Centralized control bandwidth: per-elephant reports plus table
    updates, per scheduling round — linear in flow count (Fig. 15's
    scaling argument)."""
    if scheduling_interval_s <= 0:
        raise ValueError(f"interval must be positive, got {scheduling_interval_s}")
    per_round = (
        num_elephants * sizes.report_to_controller
        + updates_per_round * sizes.update_from_controller
    )
    return per_round / scheduling_interval_s


def overhead_model(
    topology: MultiRootedTopology,
    query_interval_s: float = 1.0,
    sizes: MessageSizes = MessageSizes(),
) -> OverheadModel:
    """Bundle the bounds for one topology."""
    tors = sorted(topology.tors())
    inter = next(
        (s, d)
        for s in tors
        for d in tors
        if topology.pod_of(s) != topology.pod_of(d)
    )
    return OverheadModel(
        dard_ceiling_bytes_per_s=dard_probe_ceiling_bytes_per_s(
            topology, query_interval_s, sizes
        ),
        bytes_per_monitor_round=bytes_per_monitor_round(topology, *inter, sizes),
        report_bytes_per_elephant=float(sizes.report_to_controller),
    )
