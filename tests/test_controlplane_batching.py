"""Tests for the batched DARD control plane.

Covers the :class:`MonitorRegistry` lifecycle (register / release /
revival / compaction epochs), dirty-tracked cache correctness against
direct network queries, Algorithm 1 tie-break edge cases in all three
execution paths (scalar reference, small-fleet floats, padded matrix),
the two-sided optimistic ``note_shift`` update, the ``cp_*`` telemetry
surface, and the scalar-vs-batched differential oracle (including its
self-test: a perturbed result must be caught).
"""

import dataclasses

import numpy as np
import pytest

import repro.core.daemon as daemon_module
from repro.common.errors import OracleViolation
from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.core import DardScheduler, MonitorRegistry, PathMonitor, PathState
from repro.core.daemon import HostDaemon
from repro.core.monitor import index_pair_paths
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.scheduling import MessageLedger, SchedulerContext
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree
from repro.validation.oracles import (
    check_controlplane_equivalence,
    compare_controlplane_results,
)


def make_network(p=4):
    return Network(FatTree(p=p, link_bandwidth_bps=100 * MBPS))


def start_flow_on(net, src, dst, path_index, size=500 * MB):
    topo = net.topology
    paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
    return net.start_flow(
        src, dst, size,
        [FlowComponent(topo.host_path(src, dst, paths[path_index]))],
    )


def make_daemon(net, vectorized=True, registry=None, delta_bps=10 * MBPS):
    codec = PathCodec(HierarchicalAddressing(net.topology))
    return HostDaemon(
        host="h_0_0_0",
        network=net,
        codec=codec,
        ledger=MessageLedger(),
        delta_bps=delta_bps,
        registry=registry,
        vectorized=vectorized,
    )


class TestMonitorRegistry:
    def test_register_interns_and_refcounts(self):
        net = make_network()
        registry = MonitorRegistry(net)
        pp1 = registry.register("tor_0_0", "tor_1_0")
        rows = registry.rows
        pp2 = registry.register("tor_0_0", "tor_1_0")
        assert pp1 is pp2  # interned, computed once
        assert registry.rows == rows  # second registration appends nothing
        assert registry.live_pairs == 1
        registry.release("tor_0_0", "tor_1_0")
        assert registry.live_pairs == 1  # one monitor still up
        registry.release("tor_0_0", "tor_1_0")
        assert registry.live_pairs == 0

    def test_released_pair_revives_for_free(self):
        net = make_network()
        registry = MonitorRegistry(net)
        registry.register("tor_0_0", "tor_1_0")
        span = registry._span[("tor_0_0", "tor_1_0")]
        registry.release("tor_0_0", "tor_1_0")
        assert registry._dead_rows == span[1]
        registry.register("tor_0_0", "tor_1_0")
        assert registry._dead_rows == 0
        assert registry._span[("tor_0_0", "tor_1_0")] == span  # same rows
        assert registry.live_pairs == 1

    def test_compaction_epoch_drops_dead_rows(self, monkeypatch):
        monkeypatch.setattr(MonitorRegistry, "_COMPACT_MIN_ROWS", 1)
        net = make_network()
        registry = MonitorRegistry(net)
        registry.register("tor_0_0", "tor_1_0")
        registry.register("tor_0_1", "tor_2_0")
        rows_before = registry.rows
        registry.release("tor_0_0", "tor_1_0")  # 50% dead -> epoch fires
        assert registry.stat_rebuilds == 1
        assert registry.rows < rows_before
        assert ("tor_0_0", "tor_1_0") not in registry._span
        # The surviving pair still answers queries correctly.
        band, eleph = registry.pair_rows("tor_0_1", "tor_2_0")
        pp = index_pair_paths(net, "tor_0_1", "tor_2_0")
        direct_band, direct_eleph = net.batch_path_state_arrays(
            pp.csr_indices, pp.csr_indptr
        )
        np.testing.assert_array_equal(band, direct_band)
        np.testing.assert_array_equal(eleph, direct_eleph)

    def test_cached_rows_track_network_state(self):
        net = make_network()
        registry = MonitorRegistry(net)
        pp = registry.register("tor_0_0", "tor_1_0")

        def assert_cache_fresh():
            band, eleph = registry.pair_rows("tor_0_0", "tor_1_0")
            direct_band, direct_eleph = net.batch_path_state_arrays(
                pp.csr_indices, pp.csr_indptr
            )
            np.testing.assert_array_equal(band, direct_band)
            np.testing.assert_array_equal(eleph, direct_eleph)

        assert_cache_fresh()
        start_flow_on(net, "h_0_0_0", "h_1_0_0", 0)
        net.engine.run_until(10.5)  # promotion marks the path's links dirty
        assert_cache_fresh()
        net.fail_link("agg_0_0", "core_0_0")
        assert_cache_fresh()
        net.restore_link("agg_0_0", "core_0_0")
        assert_cache_fresh()

    def test_clean_queries_hit_the_cache(self):
        net = make_network()
        registry = MonitorRegistry(net)
        registry.register("tor_0_0", "tor_1_0")
        registry.pair_rows("tor_0_0", "tor_1_0")  # refreshes the append
        hits = registry.stat_cache_hits
        registry.pair_rows("tor_0_0", "tor_1_0")
        registry.pair_rows("tor_0_0", "tor_1_0")
        assert registry.stat_cache_hits == hits + 2
        assert registry.stat_refreshes == 1

    def test_monitor_release_reregisters_cleanly(self):
        """The monitor-churn cycle: last elephant completes, pair comes
        back later — the registry must serve the revived pair correctly."""
        net = make_network()
        registry = MonitorRegistry(net)
        ledger = MessageLedger()
        monitor = PathMonitor(net, "tor_0_0", "tor_1_0", ledger, registry=registry)
        monitor.refresh()
        monitor.release()
        monitor.release()  # idempotent
        assert registry.live_pairs == 0
        flow = start_flow_on(net, "h_0_0_0", "h_1_0_0", 0)
        net.engine.run_until(10.5)
        revived = PathMonitor(net, "tor_0_0", "tor_1_0", ledger, registry=registry)
        revived.refresh()
        assert revived.state_eleph[0] == 1
        assert flow.active


class TestAlgorithm1TieBreaks:
    """Edge cases of ``_best_target`` / ``_worst_active``, checked on the
    scalar reference helpers and on the small-fleet float path."""

    def _monitor_stub(self, band, eleph):
        class Stub:
            src_tor = "tor_0_0"
            dst_tor = "tor_1_0"
            state_band = np.array(band, dtype=float)
            state_eleph = np.array(eleph, dtype=np.int64)

            def __init__(self):
                self.shifted = []

        return Stub()

    def test_equal_bonf_ties_break_to_higher_estimate(self):
        # Paths 1 and 2 tie on BoNF 100; path 2's post-shift estimate is
        # higher (200/2 > 100/2), so it must win despite the higher index.
        states = [
            PathState(100 * MBPS, 2),
            PathState(100 * MBPS, 1),
            PathState(200 * MBPS, 2),
        ]
        assert HostDaemon._best_target(states) == 2

    def test_equal_bonf_equal_estimate_keeps_first(self):
        states = [PathState(100 * MBPS, 1), PathState(100 * MBPS, 1)]
        assert HostDaemon._best_target(states) == 0

    def test_worst_active_ignores_inactive_paths(self):
        states = [PathState(10 * MBPS, 5), PathState(100 * MBPS, 1)]
        # The congested path 0 is not ours -> only path 1 is eligible.
        assert HostDaemon._worst_active(states, [0, 1]) == 1

    def test_worst_active_all_inactive_is_none(self):
        states = [PathState(10 * MBPS, 5), PathState(100 * MBPS, 1)]
        assert HostDaemon._worst_active(states, [0, 0]) is None

    def test_single_path_monitor_never_shifts(self):
        states = [PathState(10 * MBPS, 5)]
        assert HostDaemon._best_target(states) == 0
        assert HostDaemon._worst_active(states, [1]) == 0
        # best == worst -> _schedule_one declines; mirror on the float path.
        net = make_network()
        daemon = make_daemon(net)
        stub = self._monitor_stub([10 * MBPS], [5])
        daemon.elephants = {("tor_0_0", "tor_1_0"): []}
        assert daemon._schedule_one_arrays(stub) is False

    def test_all_inactive_paths_no_shift_on_float_path(self):
        net = make_network()
        daemon = make_daemon(net)
        stub = self._monitor_stub([10 * MBPS, 100 * MBPS], [5, 1])
        daemon.elephants = {("tor_0_0", "tor_1_0"): []}  # FV all zero
        assert daemon._schedule_one_arrays(stub) is False


class TestExecutionPathEquivalence:
    """The three round implementations decide identically on real state."""

    def _congested_daemon(self, vectorized):
        net = make_network()
        registry = MonitorRegistry(net) if vectorized else None
        daemon = make_daemon(net, vectorized=vectorized, registry=registry)
        f1 = start_flow_on(net, "h_0_0_0", "h_1_0_0", 0)
        f2 = start_flow_on(net, "h_0_0_0", "h_1_0_1", 0)
        net.engine.run_until(10.5)
        daemon.on_elephant(f1)
        daemon.on_elephant(f2)
        daemon.query_monitors()
        return net, daemon, (f1, f2)

    def _decision(self, net, daemon, flows):
        shifts = daemon.run_scheduling_round()
        return (shifts, [tuple(f.switch_path()[1:-1]) for f in flows])

    def test_scalar_smallfleet_and_matrix_agree(self, monkeypatch):
        decisions = []
        for mode in ("scalar", "small", "matrix"):
            monkeypatch.setattr(
                daemon_module, "_SMALL_ROUND_CELLS", 0 if mode == "matrix" else 128
            )
            net, daemon, flows = self._congested_daemon(mode != "scalar")
            decisions.append(self._decision(net, daemon, flows))
        assert decisions[0] == decisions[1] == decisions[2]
        assert decisions[0][0] == 1  # exactly one congestion-relieving shift


class TestTwoSidedOptimisticUpdate:
    def test_note_shift_updates_both_paths(self):
        net = make_network()
        monitor = PathMonitor(net, "tor_0_0", "tor_1_0", MessageLedger())
        monitor.path_states = [PathState(100 * MBPS, 2), PathState(100 * MBPS, 0),
                               PathState(100 * MBPS, 0), PathState(100 * MBPS, 0)]
        monitor.note_shift(0, 2)
        assert monitor.state_eleph.tolist() == [1, 0, 1, 0]

    def test_note_shift_never_goes_negative(self):
        net = make_network()
        monitor = PathMonitor(net, "tor_0_0", "tor_1_0", MessageLedger())
        monitor.note_shift(0, 1)  # vacated path already at 0
        assert monitor.state_eleph.tolist() == [0, 1, 0, 0]

    def test_shift_applies_two_sided_update_and_journals(self):
        net = make_network()
        daemon = make_daemon(net)
        daemon.shift_log = []
        flow = start_flow_on(net, "h_0_0_0", "h_1_0_0", 0)
        net.engine.run_until(10.5)
        daemon.on_elephant(flow)
        daemon.query_monitors()
        monitor = next(iter(daemon.monitors.values()))
        before = monitor.state_eleph.copy()
        daemon._shift(flow, monitor, to_index=2, from_index=0)
        assert monitor.state_eleph[0] == before[0] - 1  # vacated side
        assert monitor.state_eleph[2] == before[2] + 1  # landing side
        assert flow.monitored_path_index == 2
        assert daemon.shift_log == [(net.now, "h_0_0_0", flow.flow_id, 0, 2)]

    def test_within_round_ordering_sees_prior_shift(self):
        """Back-to-back rounds *without* a refresh in between must build on
        the optimistic state — the landing path heavier, the vacated path
        lighter — so the second round does not re-shift the same flow."""
        net = make_network()
        daemon = make_daemon(net)
        f1 = start_flow_on(net, "h_0_0_0", "h_1_0_0", 0)
        f2 = start_flow_on(net, "h_0_0_0", "h_1_0_1", 0)
        net.engine.run_until(10.5)
        daemon.on_elephant(f1)
        daemon.on_elephant(f2)
        daemon.query_monitors()
        assert daemon.run_scheduling_round() == 1
        # Stale-free: immediately re-running the round finds the balanced
        # post-shift state (one elephant per path side) and stays put.
        assert daemon.run_scheduling_round() == 0


class TestPerfStatsSurface:
    def test_controlplane_keys_merged_into_perf_stats(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        net = Network(topo)
        ctx = SchedulerContext(
            network=net,
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )
        scheduler = DardScheduler()
        scheduler.attach(ctx)
        scheduler.place("h_0_0_0", "h_1_0_0", 500 * MB)
        net.engine.run_until(12.0)
        stats = net.perf_stats()
        for key in (
            "cp_vectorized", "cp_daemons", "cp_monitors_live",
            "cp_query_rounds", "cp_query_time_s", "cp_round_time_s",
            "cp_vector_rounds", "cp_scalar_rounds", "cp_shift_tails",
            "cp_shifts", "cp_registry_pairs", "cp_registry_rows",
            "cp_registry_queries", "cp_registry_cache_hits",
            "cp_registry_refreshes", "cp_registry_rows_refreshed",
            "cp_registry_rebuilds", "cp_registry_registrations",
        ):
            assert key in stats, key
        assert stats["cp_vectorized"] == 1.0
        assert stats["cp_daemons"] >= 1.0


SMALL_DARD = ScenarioConfig(
    topology="fattree",
    topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
    pattern="stride",
    scheduler="dard",
    arrival_rate_per_host=0.08,
    duration_s=18.0,
    flow_size_bytes=64 * MB,
    seed=3,
)


class TestControlplaneOracle:
    def test_small_scenario_equivalent(self):
        summary = check_controlplane_equivalence(SMALL_DARD)
        assert summary["flows"] > 0

    def test_perturbed_shift_log_is_caught(self):
        result = run_scenario(SMALL_DARD)
        reference = run_scenario(SMALL_DARD)
        tampered = dataclasses.replace(
            result,
            dard_shift_log=result.dard_shift_log
            + ((99.0, "h_0_0_0", 1, 0, 1),),
        )
        with pytest.raises(OracleViolation, match="controlplane-equivalence"):
            compare_controlplane_results(tampered, reference)

    def test_perturbed_record_is_caught(self):
        result = run_scenario(SMALL_DARD)
        reference = run_scenario(SMALL_DARD)
        result.records[0] = dataclasses.replace(
            result.records[0], end_time=result.records[0].end_time + 1e-9
        )
        with pytest.raises(OracleViolation, match="controlplane-equivalence"):
            compare_controlplane_results(result, reference)
