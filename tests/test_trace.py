"""Tests for trace-driven workloads (record / save / load / replay)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MB, MBPS
from repro.addressing import HierarchicalAddressing, PathCodec
from repro.baselines import EcmpScheduler
from repro.scheduling import SchedulerContext
from repro.simulator import EventEngine, Network
from repro.topology import FatTree
from repro.workloads import (
    ArrivalProcess,
    StridePattern,
    TraceEntry,
    TraceRecorder,
    TraceReplay,
    WorkloadSpec,
    load_trace,
    save_trace,
)


def entry(t, src="h_0_0_0", dst="h_1_0_0", size=1 * MB):
    return TraceEntry(time_s=t, src=src, dst=dst, size_bytes=size)


class TestTraceEntry:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            entry(-1.0)
        with pytest.raises(ConfigurationError):
            TraceEntry(0.0, "a", "a", 1.0)
        with pytest.raises(ConfigurationError):
            TraceEntry(0.0, "a", "b", 0.0)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        entries = [entry(2.0), entry(1.0, dst="h_2_0_0"), entry(3.0)]
        path = tmp_path / "trace.csv"
        assert save_trace(entries, path) == 3
        loaded = load_trace(path)
        assert [e.time_s for e in loaded] == [1.0, 2.0, 3.0]  # sorted
        assert loaded[0].dst == "h_2_0_0"

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("when,who\n1,2\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)


class TestReplay:
    def _scheduler(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        ctx = SchedulerContext(
            network=Network(topo),
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )
        scheduler = EcmpScheduler()
        scheduler.attach(ctx)
        return ctx, scheduler

    def test_replay_fires_at_recorded_times(self):
        ctx, scheduler = self._scheduler()
        entries = [entry(1.0), entry(2.5, src="h_0_0_1", dst="h_2_0_0")]
        replay = TraceReplay(ctx.engine, ctx.topology, entries, scheduler.place)
        replay.start()
        ctx.engine.run_until(5.0)
        assert replay.flows_replayed == 2
        starts = sorted(f.start_time for f in ctx.network.records + ctx.network.active_flows())
        assert starts == [1.0, 2.5]

    def test_unknown_host_rejected(self):
        ctx, scheduler = self._scheduler()
        with pytest.raises(ConfigurationError):
            TraceReplay(ctx.engine, ctx.topology, [entry(1.0, src="ghost")], scheduler.place)

    def test_duration(self):
        ctx, scheduler = self._scheduler()
        replay = TraceReplay(ctx.engine, ctx.topology, [entry(1.0), entry(9.0)], scheduler.place)
        assert replay.duration_s == 9.0
        assert TraceReplay(ctx.engine, ctx.topology, [], scheduler.place).duration_s == 0.0


class TestRecorder:
    def test_record_then_replay_identical(self, tmp_path):
        """Record a Poisson run, replay it: flow sets are identical."""
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        ctx = SchedulerContext(
            network=Network(topo),
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )
        scheduler = EcmpScheduler()
        scheduler.attach(ctx)
        recorder = TraceRecorder(ctx.engine, scheduler.place)
        process = ArrivalProcess(
            engine=ctx.engine,
            pattern=StridePattern(topo),
            spec=WorkloadSpec(arrival_rate_per_host=0.2, duration_s=10.0, flow_size_bytes=4 * MB),
            sink=recorder,
            rng=np.random.default_rng(5),
        )
        process.start()
        ctx.engine.run_until(15.0)
        path = tmp_path / "recorded.csv"
        save_trace(recorder.entries, path)

        # Fresh stack, replay the file.
        topo2 = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        ctx2 = SchedulerContext(
            network=Network(topo2),
            codec=PathCodec(HierarchicalAddressing(topo2)),
            rng=np.random.default_rng(0),
        )
        scheduler2 = EcmpScheduler()
        scheduler2.attach(ctx2)
        replay = TraceReplay(ctx2.engine, topo2, load_trace(path), scheduler2.place)
        replay.start()
        ctx2.engine.run_until(15.0)

        original = sorted((e.time_s, e.src, e.dst) for e in recorder.entries)
        replayed = sorted(
            (f.start_time, f.src, f.dst)
            for f in list(ctx2.network.records) + ctx2.network.active_flows()
        )
        assert [(s, d) for _, s, d in original] == [(s, d) for _, s, d in replayed]
        assert replay.flows_replayed == len(recorder.entries)
