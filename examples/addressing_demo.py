#!/usr/bin/env python
"""Hierarchical addressing walk-through (paper §2.3, Figure 2, Tables 2-3).

Shows how prefixes are allocated down every core->agg->ToR chain of a p=4
fat-tree, how each host ends up with one address per core tree, how a
(source, destination) address pair encodes an entire path, and what an
aggregation switch's downhill/uphill tables (Table 2) and equivalent
merged table (Table 3) look like.

Run:  python examples/addressing_demo.py
"""

from repro.addressing import HierarchicalAddressing, PathCodec, format_address
from repro.switches import SwitchFabric
from repro.topology import FatTree


def show_table(title, table):
    print(f"    {title}")
    print("      prefix                port  neighbor")
    return table


def main() -> None:
    topo = FatTree(p=4)
    addressing = HierarchicalAddressing(topo)
    codec = PathCodec(addressing)
    fabric = SwitchFabric(addressing)

    print("== prefix allocation along the tree rooted at core_0_0 ==")
    core = "core_0_0"
    print(f"  {core:10s} owns  {addressing.core_prefix(core)}")
    for agg in sorted(topo.down_neighbors(core))[:2]:
        print(f"    {agg:10s} gets {addressing.agg_prefix(core, agg)}")
        for tor in sorted(topo.down_neighbors(agg)):
            chain = (core, agg, tor)
            print(f"      {tor:9s} gets {addressing.chain_prefix(chain)}")

    host = "h_0_0_0"
    print(f"\n== {host} holds one address per core tree "
          f"({addressing.num_addresses_per_host(host)} addresses) ==")
    for chain, addr in sorted(addressing.addresses_of(host).items()):
        print(f"  via {chain[0]:9s} -> {format_address(addr):15s} "
              f"(uphill path {chain[2]} -> {chain[1]} -> {chain[0]})")

    print("\n== a (src, dst) address pair encodes a full path ==")
    src, dst = "h_0_0_0", "h_1_0_1"
    paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
    for path in paths:
        src_addr, dst_addr = codec.encode(src, dst, path)
        trace = fabric.forward_trace(src, src_addr, dst_addr)
        assert trace == (src,) + path + (dst,)
        print(f"  ({format_address(src_addr)}, {format_address(dst_addr)})"
              f"  ->  {' -> '.join(path)}")

    sw = fabric.switch("agg_0_0")
    print("\n== agg_0_0's static tables (paper Table 2) ==")
    print("  downhill table (checked first):")
    for entry in sw.downhill.entries():
        print(f"    {str(entry.prefix):18s} -> port {entry.port} "
              f"({sw.ports[entry.port]})")
    print("  uphill table:")
    for entry in sw.uphill.entries():
        print(f"    {str(entry.prefix):18s} -> port {entry.port} "
              f"({sw.ports[entry.port]})")

    merged = sw.merged_routing_table()
    print(f"\n== merged destination-only table (paper Table 3): "
          f"{len(merged)} entries, valid because this is a fat-tree ==")
    print(f"\nfabric-wide static rules: {fabric.num_table_entries()} "
          "(bounded by topology size; never updated at runtime)")


if __name__ == "__main__":
    main()
