"""Tests for the differential-oracle validation subsystem
(:mod:`repro.validation`): invariant checks, oracles, golden snapshots,
and the fuzzer — including the injected-bug self-test the whole layer
exists to pass."""

import dataclasses
import json
import random

import pytest

from repro.common.errors import InvariantViolation, OracleViolation, SimulationError
from repro.common.units import MBPS
from repro.simulator import FlowComponent
from repro.simulator.network import Network
from repro.topology import FatTree
from repro.validation import (
    FCT_AGREEMENT_BAND,
    FuzzFailure,
    InvariantChecker,
    SwitchTableSnapshot,
    allocator_equivalence_suite,
    check_allocator_equivalence,
    check_dynamics_monotone,
    check_maxmin_certificate,
    check_network_against_reference,
    check_network_allocation,
    check_static_forwarding,
    check_theorem1_bound_live,
    compare_goldens,
    inject_capacity_bug,
    random_scenario,
    run_case,
    run_fluid_vs_packet,
    run_fuzz,
    shrink_config,
    store_goldens,
)
from repro.validation.oracles import random_allocation_case


def two_flow_network():
    net = Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
    topo = net.topology
    for src, dst, index in [("h_0_0_0", "h_1_0_0", 0), ("h_0_0_0", "h_2_0_0", 2)]:
        path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[index]
        net.start_flow(src, dst, 64e6, [FlowComponent(topo.host_path(src, dst, path))])
    net.engine.run_until(0.001)  # let the coalesced realloc settle
    return net


# ---------------------------------------------------------------------------
# KKT certificate
# ---------------------------------------------------------------------------

class TestMaxminCertificate:
    def test_accepts_true_maxmin_allocations(self):
        from repro.simulator.maxmin import maxmin_allocate

        for i in range(25):
            demands, capacities = random_allocation_case(random.Random(i))
            rates = maxmin_allocate(demands, capacities)
            check_maxmin_certificate(demands, rates, capacities)

    def test_rejects_infeasible(self):
        demands = [((("a", "b"),), 1.0)]
        with pytest.raises(InvariantViolation) as info:
            check_maxmin_certificate(demands, [20.0], {("a", "b"): 10.0})
        assert info.value.invariant == "maxmin-kkt"
        assert info.value.link == ("a", "b")

    def test_rejects_underallocation(self):
        # Feasible but not max-min: the single demand leaves capacity idle.
        demands = [((("a", "b"),), 1.0)]
        with pytest.raises(InvariantViolation) as info:
            check_maxmin_certificate(demands, [5.0], {("a", "b"): 10.0})
        assert info.value.flow_id == 0

    def test_rejects_unfair_split(self):
        # Both demands share one link; equal weights demand equal rates.
        demands = [((("a", "b"),), 1.0), ((("a", "b"),), 1.0)]
        with pytest.raises(InvariantViolation):
            check_maxmin_certificate(demands, [7.0, 3.0], {("a", "b"): 10.0})

    def test_rate_count_mismatch(self):
        with pytest.raises(InvariantViolation):
            check_maxmin_certificate([((("a", "b"),), 1.0)], [], {("a", "b"): 1.0})


# ---------------------------------------------------------------------------
# Live-network checks
# ---------------------------------------------------------------------------

class TestLiveNetworkChecks:
    def test_clean_network_passes_everything(self):
        net = two_flow_network()
        check_network_allocation(net)
        check_theorem1_bound_live(net)
        check_network_against_reference(net)

    def test_corrupted_capacity_is_caught(self):
        net = two_flow_network()
        inject_capacity_bug(net)
        net._request_realloc()
        net.engine.run_until(net.engine.now + 0.001)
        with pytest.raises((InvariantViolation, OracleViolation)):
            check_network_allocation(net)
            check_network_against_reference(net)

    def test_checks_skip_while_realloc_pending(self):
        net = two_flow_network()
        inject_capacity_bug(net)
        net._request_realloc()  # rates now stale AND the bug is armed...
        assert net.realloc_pending
        check_network_allocation(net)  # ...but pending => both checks no-op
        check_network_against_reference(net)

    def test_survives_failed_link(self):
        net = two_flow_network()
        net.fail_link("agg_0_0", "core_0_0")
        net.engine.run_until(net.engine.now + 0.001)
        check_network_allocation(net)
        check_network_against_reference(net)

    def test_invariant_hooks_run_from_check_invariants(self):
        net = two_flow_network()
        seen = []
        net.invariant_hooks.append(seen.append)
        net.check_invariants()
        assert seen == [net]


# ---------------------------------------------------------------------------
# Static switch tables
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fabric_stack():
    from repro.addressing import HierarchicalAddressing, PathCodec
    from repro.switches import SwitchFabric

    addressing = HierarchicalAddressing(FatTree(p=4, link_bandwidth_bps=100 * MBPS))
    return SwitchFabric(addressing), PathCodec(addressing)


class TestStaticTables:
    def test_snapshot_stable_across_traffic(self, fabric_stack):
        fabric, codec = fabric_stack
        snapshot = SwitchTableSnapshot.capture(fabric)
        assert snapshot.num_entries > 0
        net = two_flow_network()
        snapshot.verify(fabric)
        check_static_forwarding(fabric, codec, net)

    def test_snapshot_detects_table_mutation(self, fabric_stack):
        fabric, _ = fabric_stack
        snapshot = SwitchTableSnapshot.capture(fabric)
        switch = fabric.switches[sorted(fabric.switches)[0]]
        entry = switch.uphill._entries.pop()  # surgical table corruption
        try:
            with pytest.raises(InvariantViolation) as info:
                snapshot.verify(fabric)
            assert info.value.invariant == "static-tables"
        finally:
            switch.uphill._entries.append(entry)
        snapshot.verify(fabric)  # restored => clean again


# ---------------------------------------------------------------------------
# Theorem-2 dynamics certificate
# ---------------------------------------------------------------------------

class TestDynamicsCertificate:
    def test_real_trajectory_certifies(self):
        from repro.common.rng import RngStreams
        from repro.gametheory import run_best_response_dynamics
        from repro.gametheory.study import random_game_on

        rng = RngStreams(9).stream("test-dynamics")
        game = random_game_on(FatTree(p=4, link_bandwidth_bps=100 * MBPS), 10, rng)
        result = run_best_response_dynamics(game)
        assert result.converged
        check_dynamics_monotone(game, result)

    def test_nash_certificate_flags_deviation(self):
        from repro.gametheory import CongestionGame, GameFlow, nash_certificate

        game = CongestionGame(
            {("a", "b"): 10.0, ("c", "d"): 10.0},
            [GameFlow(0, ((("a", "b"),), (("c", "d"),))),
             GameFlow(1, ((("a", "b"),),))],
            delta_bps=0.5,
        )
        # Both flows crammed onto the shared link: flow 0 should deviate.
        bad = (0, 0)
        certificate = nash_certificate(game, bad)
        assert not certificate.is_nash
        assert certificate.first_deviator() == 0


# ---------------------------------------------------------------------------
# Differential oracles
# ---------------------------------------------------------------------------

class TestOracles:
    def test_equivalence_suite_clean(self):
        assert allocator_equivalence_suite(cases=15, seed=3) == 15

    def test_equivalence_rejects_divergent_capacities(self):
        demands = [((("a", "b"),), 1.0)]
        with pytest.raises((OracleViolation, SimulationError)):
            # Reference sees a different world than the indexed path would
            # if its cache were stale; simulate by disagreeing rates.
            check_allocator_equivalence(demands, {})

    def test_fluid_vs_packet_band_enforced(self):
        rows = run_fluid_vs_packet(
            scenarios={"single": [("h_0_0_0", "h_1_0_0", 0)]}
        )
        low, high = FCT_AGREEMENT_BAND
        assert low <= rows[0]["ratio"] <= high + 0.01

    def test_fluid_vs_packet_band_violation_raises(self):
        with pytest.raises(OracleViolation) as info:
            run_fluid_vs_packet(
                scenarios={"single": [("h_0_0_0", "h_1_0_0", 0)]},
                band=(0.99, 1.0),  # absurdly tight: must trip
            )
        assert info.value.oracle == "fluid-vs-packet"


# ---------------------------------------------------------------------------
# Fuzzer
# ---------------------------------------------------------------------------

class TestFuzzer:
    def test_scenarios_are_pure_functions_of_seed(self):
        for seed in range(5):
            assert random_scenario(seed) == random_scenario(seed)

    def test_clean_sweep(self):
        report = run_fuzz(seeds=4)
        assert report.ok
        assert report.cases == 4

    def test_injected_bug_is_caught_and_shrunk(self):
        # Detection is probabilistic per seed (the corrupted access cable
        # must carry demand inside a checker window); seeds 8 and 9 both
        # draw configs that expose it. The CLI self-test sweeps 100 seeds
        # and only needs one catch — here we pin two known-hot seeds so
        # the shrink machinery is exercised on every failure.
        report = run_fuzz(seeds=2, start_seed=8, inject_bug=True, shrink_failures=2)
        assert not report.ok, "the oracles missed the injected capacity bug"
        assert len(report.failures) == 2
        for failure in report.failures:
            assert "maxmin-kkt" in failure.error or "network-vs-reference" in failure.error
            assert failure.shrunk is not None
            rendered = failure.render()
            assert "minimal reproducing config" in rendered
            assert f"seed {failure.seed}" in rendered

    def test_shrink_reaches_simpler_config(self):
        config = random_scenario(0)

        def fails(candidate):
            # A "bug" that only depends on the scheduler staying non-ecmp
            # being irrelevant: everything fails, so shrink bottoms out.
            return True

        shrunk, runs = shrink_config(config, fails, max_runs=40)
        assert runs > 0
        assert shrunk.scheduler == "ecmp"
        assert shrunk.pattern == "random"
        assert shrunk.topology == "fattree"
        assert shrunk.link_events == ()
        assert shrunk.duration_s <= config.duration_s

    def test_shrink_keeps_failure_failing(self):
        # Only configs with at least one link event "fail": the shrinker
        # must not simplify past the failure condition.
        config = dataclasses.replace(
            random_scenario(1),
            link_events=(("fail", 2.0, "agg_0_0", "core_0_0"),
                         ("fail", 3.0, "agg_0_1", "core_2")),
            topology="fattree",
            topology_params={"p": 4},
        )
        shrunk, _ = shrink_config(
            config, lambda c: len(c.link_events) >= 1, max_runs=40
        )
        assert len(shrunk.link_events) == 1

    def test_budget_stops_sweep(self):
        report = run_fuzz(budget_s=0.0)
        assert report.cases == 1  # at least one case always runs

    def test_run_case_attaches_battery(self):
        result = run_case(random_scenario(2), every_n_events=3)
        assert result.flows_generated >= 0

    def test_draw_space_covers_every_scenario_class(self):
        # Satellite contract: within a bounded draw budget (no sims run)
        # the generator must exercise incast patterns, synchronized
        # barriers, empirical sizes, failure storms (>= 3 fail events —
        # what distinguishes a storm from the sporadic schedule), and the
        # predictive detector. Draws are pure functions of the seed, so
        # these counts are exact, not flaky.
        configs = [random_scenario(seed) for seed in range(300)]
        incast = sum(c.pattern == "incast" for c in configs)
        barriers = sum(c.arrival == "incast-barrier" for c in configs)
        empirical = sum(c.arrival == "empirical" for c in configs)
        storms = sum(
            sum(e[0] == "fail" for e in c.link_events) >= 3 for c in configs
        )
        predictive = sum(
            c.network_params.get("elephant_detector") == "predictive"
            for c in configs
        )
        assert incast >= 20, incast
        assert barriers >= 20, barriers
        assert empirical >= 20, empirical
        assert storms >= 20, storms
        assert predictive >= 20, predictive
        # Incast draws always carry a valid targets parameter.
        assert all(
            c.pattern_params.get("targets", 0) >= 1
            for c in configs
            if c.pattern == "incast"
        )


# ---------------------------------------------------------------------------
# Golden snapshots
# ---------------------------------------------------------------------------

class TestGoldens:
    def test_store_then_compare_clean(self, tmp_path):
        path = tmp_path / "golden.json"
        document = store_goldens(path)
        assert path.exists()
        assert compare_goldens(path) == []
        # The stored document round-trips through JSON.
        assert json.loads(path.read_text())["scenarios"].keys() == (
            document["scenarios"].keys()
        )

    def test_compare_detects_drift(self, tmp_path):
        path = tmp_path / "golden.json"
        document = store_goldens(path)
        tampered = json.loads(path.read_text())
        name = sorted(tampered["scenarios"])[0]
        tampered["scenarios"][name]["fct_digest"] = "0" * 16
        tampered["scenarios"][name]["flows_completed"] += 1
        path.write_text(json.dumps(tampered))
        mismatches = compare_goldens(path, document=document)
        assert len(mismatches) == 2
        assert any("fct_digest" in m for m in mismatches)

    def test_missing_file_reported(self, tmp_path):
        mismatches = compare_goldens(tmp_path / "absent.json", document={})
        assert len(mismatches) == 1
        assert "does not exist" in mismatches[0]

    def test_repo_golden_file_is_current(self):
        # The committed golden file must match a fresh capture — this is
        # the actual regression gate; update with
        # `repro validate --golden update` after intentional changes.
        mismatches = compare_goldens()
        assert mismatches == [], "\n".join(mismatches)


# ---------------------------------------------------------------------------
# InvariantChecker driver
# ---------------------------------------------------------------------------

class TestInvariantChecker:
    def test_battery_runs_during_simulation(self):
        net = two_flow_network()
        checker = InvariantChecker(net, every_n_events=1).attach()
        net.engine.run_until(net.engine.now + 30.0)  # past both completions
        checker.detach()
        assert checker.checks_run > 0

    def test_detach_stops_checking(self):
        net = two_flow_network()
        checker = InvariantChecker(net, every_n_events=1).attach()
        checker.detach()
        before = checker.checks_run
        net.fail_link("agg_0_0", "core_0_0")
        net.engine.run_until(net.engine.now + 0.5)
        assert checker.checks_run == before

    def test_violation_propagates_out_of_run_until(self):
        net = two_flow_network()
        checker = InvariantChecker(net, every_n_events=1).attach()
        inject_capacity_bug(net)
        net._request_realloc()
        with pytest.raises((InvariantViolation, OracleViolation)):
            # Ensure at least one event (the realloc) is processed.
            checker.checks.append(check_network_against_reference)
            net.engine.run_until(net.engine.now + 1.0)
        checker.detach()
