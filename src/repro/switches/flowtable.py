"""Longest-prefix-match flow tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import RoutingError
from repro.addressing.prefix import Prefix


@dataclass(frozen=True)
class TableEntry:
    """One forwarding rule: packets matching ``prefix`` exit via ``port``."""

    prefix: Prefix
    port: int


class FlowTable:
    """A longest-prefix-match table.

    Entries are grouped by prefix length so a lookup probes at most one
    candidate per distinct length, longest first — adequate for the handful
    of lengths a DARD fabric ever installs.
    """

    def __init__(self) -> None:
        self._by_length: Dict[int, Dict[int, int]] = {}
        self._entries: List[TableEntry] = []
        #: (mask, bucket) probe order, longest prefix first — rebuilt only
        #: when a new length appears, so lookup (the packet-level hot path)
        #: never re-sorts or recomputes masks.
        self._probe_order: List[tuple] = []

    def add(self, prefix: Prefix, port: int) -> None:
        """Install a rule; duplicate prefixes with conflicting ports are errors."""
        bucket = self._by_length.get(prefix.length)
        if bucket is None:
            bucket = self._by_length[prefix.length] = {}
            self._probe_order = [
                (((1 << length) - 1) << (32 - length) if length else 0, table)
                for length, table in sorted(self._by_length.items(), reverse=True)
            ]
        existing = bucket.get(prefix.value)
        if existing is not None:
            if existing != port:
                raise RoutingError(
                    f"conflicting entries for {prefix}: ports {existing} and {port}"
                )
            return
        bucket[prefix.value] = port
        self._entries.append(TableEntry(prefix, port))

    def lookup(self, addr: int) -> Optional[int]:
        """The egress port for ``addr``, or ``None`` if nothing matches."""
        for mask, bucket in self._probe_order:
            port = bucket.get(addr & mask)
            if port is not None:
                return port
        return None

    def entries(self) -> List[TableEntry]:
        """All rules, sorted by (length desc, value) for stable rendering."""
        return sorted(self._entries, key=lambda e: (-e.prefix.length, e.prefix.value))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return self._by_length.get(prefix.length, {}).get(prefix.value) is not None
