"""Snapshot a live network into a congestion game instance.

The players are the current elephant flows; each player's route set is the
equal-cost path set between its ToRs (switch-switch links only, matching
what DARD can actually influence). The resulting game is what DARD's
distributed dynamics are implicitly playing, so tests can compare the
simulator's behaviour against the abstract game's guarantees.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.simulator.network import Network
from repro.gametheory.congestion_game import CongestionGame, GameFlow, Strategy


def game_from_network(
    network: Network, delta_bps: float
) -> Tuple[CongestionGame, Strategy]:
    """(game, current strategy) for the network's live elephant flows."""
    topo = network.topology
    capacities: Dict[Tuple[str, str], float] = {}
    for u, v in topo.directed_links():
        if topo.node(u).kind.is_switch and topo.node(v).kind.is_switch:
            capacities[(u, v)] = network.capacities[(u, v)]
    flows: List[GameFlow] = []
    strategy: List[int] = []
    for flow in sorted(network.active_elephants(), key=lambda f: f.flow_id):
        src_tor = topo.tor_of(flow.src)
        dst_tor = topo.tor_of(flow.dst)
        paths = topo.equal_cost_paths(src_tor, dst_tor)
        if len(paths[0]) < 2:
            continue  # same-ToR flows play no routing game
        routes = tuple(tuple(zip(p, p[1:])) for p in paths)
        current = tuple(flow.switch_path()[1:-1])
        flows.append(GameFlow(flow_id=flow.flow_id, routes=routes))
        strategy.append(paths.index(current))
    return CongestionGame(capacities, flows, delta_bps), tuple(strategy)
