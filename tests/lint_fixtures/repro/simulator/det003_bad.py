"""DET003 bad fixture: builtin sum() over a set of floats."""


def total_load(rates):
    """Rounds in hash order — last bits differ between processes."""
    distinct = {float(rate) for rate in rates}
    return sum(distinct)
