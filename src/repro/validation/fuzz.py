"""Seeded scenario fuzzing with shrink-on-failure.

Draws random scenarios from the full configuration cross-product
(topology family x size x workload pattern x failure schedule x
scheduler x parallel execution backend), runs each with the invariant
battery attached to the event
engine and the differential oracles sampling the live network, and — on
any violation or crash — greedily *shrinks* the scenario to a minimal
still-failing configuration before reporting it.

Every case is a pure function of its integer seed, so a failure report
("seed 1234, config {...}") reproduces exactly with
``repro validate --fuzz --seeds 1 --start-seed 1234``.
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import ReproError
from repro.common.rng import RngStreams
from repro.experiments.configio import config_to_dict
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario
from repro.workloads.scenarios import SIZE_PRESETS, FailureStormScenario

#: Schedulers drawn by the generator (all registered ones).
FUZZ_SCHEDULERS = ("ecmp", "vlb", "hedera", "gff", "texcp", "texcp-flowlet", "dard")

FUZZ_PATTERNS = ("random", "staggered", "stride", "incast")

#: Arrival-process kinds the generator draws, weighted toward the paper's
#: Poisson baseline; "empirical" adds heavy-tailed sizes, "incast-barrier"
#: synchronized bursts (see ``repro.workloads.scenarios``).
FUZZ_ARRIVALS = ("poisson", "empirical", "incast-barrier")

#: (topology kind, params) families; sizes kept small so one case runs in
#: well under a second and a 200-seed sweep stays interactive.
FUZZ_TOPOLOGIES = (
    ("fattree", {"p": 4}),
    ("clos", {"d_i": 4, "d_a": 4, "hosts_per_tor": 2}),
    (
        "threetier",
        {
            "num_cores": 4,
            "num_pods": 2,
            "aggs_per_pod": 2,
            "access_per_pod": 2,
            "hosts_per_access": 2,
        },
    ),
)

#: How often (in engine events) the continuous battery re-checks the
#: network. 1 = after every event; the default trades a ~5x fuzz speedup
#: for catching a transient violation a few events late.
DEFAULT_EVERY_N_EVENTS = 5


def random_scenario(seed: int) -> ScenarioConfig:
    """The deterministic scenario for one fuzz seed."""
    rng = RngStreams(seed).stream("fuzz")
    kind, topo_params = FUZZ_TOPOLOGIES[int(rng.integers(len(FUZZ_TOPOLOGIES)))]
    topo_params = dict(topo_params)
    if kind == "fattree" and rng.random() < 0.25:
        topo_params["p"] = 6
    pattern = FUZZ_PATTERNS[int(rng.integers(len(FUZZ_PATTERNS)))]
    pattern_params: dict = {}
    if pattern == "incast":
        pattern_params = {"targets": int(rng.integers(1, 3))}
    scheduler = FUZZ_SCHEDULERS[int(rng.integers(len(FUZZ_SCHEDULERS)))]
    duration = float(rng.uniform(8.0, 25.0))
    # Arrival process, weighted toward the Poisson baseline.
    arrival = "poisson"
    arrival_params: dict = {}
    arrival_roll = rng.random()
    if arrival_roll < 0.20:
        arrival = "empirical"
        arrival_params = {
            "size_preset": sorted(SIZE_PRESETS)[int(rng.integers(len(SIZE_PRESETS)))]
        }
    elif arrival_roll < 0.35:
        # Explicit barrier period: the default (1/rate, up to 20 s) can
        # exceed the drawn duration and produce a zero-flow case.
        arrival = "incast-barrier"
        arrival_params = {"period_s": float(rng.uniform(0.5, duration / 4))}
    link_events: List[tuple] = []
    failure_roll = rng.random()
    if failure_roll < 0.25:
        # Rolling failure storm: waves of fail/restore over random cables
        # (see FailureStormScenario); always >= 3 fail events, which is
        # what distinguishes a storm from the sporadic schedule below.
        from repro.topology import build_topology

        topology = build_topology(kind, **topo_params)
        storm = FailureStormScenario(
            start_s=float(rng.uniform(1.0, max(2.0, duration / 3))),
            wave_interval_s=float(rng.uniform(1.0, 3.0)),
            waves=int(rng.integers(3, 6)),
            cables_per_wave=int(rng.integers(1, 3)),
            outage_s=float(rng.uniform(0.5, 2.5)),
        )
        link_events = list(storm.link_events(topology, rng))
    elif failure_roll < 0.6:
        # Sporadic failure schedule over switch-switch cables, drawn later
        # than t=1 so some flows exist; half the failures are followed by
        # a restore.
        from repro.topology import build_topology

        topology = build_topology(kind, **topo_params)
        cables = sorted(
            (link.u, link.v)
            for link in topology.links()
            if topology.node(link.u).kind.is_switch
            and topology.node(link.v).kind.is_switch
        )
        for _ in range(int(rng.integers(1, 3))):
            u, v = cables[int(rng.integers(len(cables)))]
            when = float(rng.uniform(1.0, duration))
            link_events.append(("fail", when, u, v))
            if rng.random() < 0.5:
                link_events.append(
                    ("restore", float(rng.uniform(when, duration + 5.0)), u, v)
                )
    network_params: dict = {}
    if rng.random() < 0.2:
        network_params = {"elephant_detector": "predictive"}
    # Parallel execution backend: half the cases stay on the historical
    # serial path, the rest exercise the component-parallel backends so
    # the deterministic-merge contract is fuzzed continuously — any
    # parallel case is dual-run against a serial twin by run_case.
    backend_roll = rng.random()
    if backend_roll < 0.4:
        network_params["parallel_backend"] = "threads"
    elif backend_roll < 0.5:
        network_params["parallel_backend"] = "processes"
    if "parallel_backend" in network_params:
        network_params["parallel_workers"] = (2, 3, 4, 7)[int(rng.integers(4))]
    return ScenarioConfig(
        topology=kind,
        topology_params=topo_params,
        pattern=pattern,
        pattern_params=pattern_params,
        scheduler=scheduler,
        arrival_rate_per_host=float(rng.uniform(0.05, 0.2)),
        duration_s=duration,
        flow_size_bytes=float(rng.uniform(2e6, 32e6)),
        seed=int(rng.integers(2**31)),
        network_params=network_params,
        arrival=arrival,
        arrival_params=arrival_params,
        drain_limit_s=90.0,
        link_events=tuple(sorted(link_events, key=lambda e: e[1])),
    )


def inject_capacity_bug(network) -> None:
    """The canonical seeded bug: corrupt one capacity array entry.

    Scales down the dense capacity entries of the first host's access
    cable *after* the dict-shaped compatibility surface was built, so the
    indexed allocator and the string-keyed reference disagree about the
    world — exactly the class of silent divergence the differential
    oracles exist to catch.
    """
    host = min(network.topology.hosts())
    tor = network.topology.tor_of(host)
    for link in ((host, tor), (tor, host)):
        network._cap_array[network.link_index.id_of(link)] *= 0.6
    # Arm a full refill: an incremental network with nothing dirty would
    # otherwise keep its pre-corruption (still consistent) rates and the
    # bug would not manifest until some demand touched the cable.
    network._force_full = True


def inject_storm_bug(network) -> None:
    """Seeded storm bug: the *first* link failure corrupts a capacity entry.

    Models the class of bug storms are uniquely good at finding — state
    that only goes bad on the failure-handling path. A scenario with no
    ``fail`` event runs clean, so shrinking a storm schedule against this
    bug must converge to a single failure event, which is exactly what
    the shrinker's coverage test asserts.
    """
    armed = [True]

    def corrupt_once(u: str, v: str) -> None:
        if armed[0]:
            armed[0] = False
            inject_capacity_bug(network)

    network.link_failed_listeners.append(corrupt_once)


def run_case(
    config: ScenarioConfig,
    corrupt: Optional[Callable] = None,
    every_n_events: int = DEFAULT_EVERY_N_EVENTS,
    sanitize: bool = False,
) -> ScenarioResult:
    """Run one scenario under the full validation battery.

    Attaches an :class:`~repro.validation.invariants.InvariantChecker`
    (base invariants + KKT certificate + Theorem-1 bound + static-table
    preservation) plus the network-vs-reference and incremental-vs-full
    differential oracles to the engine,
    checking every ``every_n_events`` processed events and once
    more after the run drains. ``corrupt`` (used by ``--inject-bug``)
    runs against the freshly built network before any traffic starts.

    DARD cases additionally run the control-plane differential oracle:
    the scenario is re-run with the scalar reference control plane
    (``vectorized=False``) and the two results must agree on the shift
    journal, every flow record, and control-byte accounting — a
    divergence is a finding just like an invariant violation.

    Every case (all schedulers) also runs the settle differential
    oracle: the scenario is re-run with the scalar per-flow settle loops
    (``settle_mode="reference"``) and compared record for record against
    the columnar FlowStore run under the same bit-exact contract.

    Cases drawn with a parallel execution backend (threads/processes)
    additionally run the parallel differential oracle: the scenario is
    re-run on the serial backend and the two results must be identical —
    the deterministic merge contract makes worker scheduling invisible,
    so any divergence is a finding.

    Finally a :class:`~repro.validation.oracles.StormOracle` shadows the
    primary run: every placement and reroute is screened against the
    failed-link set, and flow-store row accounting is re-audited at each
    fail/restore edge and once after the drain.
    """
    from repro.addressing import HierarchicalAddressing, PathCodec
    from repro.switches import SwitchFabric
    from repro.validation.invariants import InvariantChecker, check_flowstore_balance
    from repro.validation.oracles import (
        StormOracle,
        _with_backend,
        check_incremental_against_full,
        check_network_against_reference,
        compare_controlplane_results,
        compare_parallel_results,
        compare_settle_results,
    )

    checker_box: List[InvariantChecker] = []
    sanitizer_box: List = []
    storm_oracle = StormOracle()

    def instrument(network) -> None:
        if corrupt is not None:
            corrupt(network)
        addressing = HierarchicalAddressing(network.topology)
        checker = InvariantChecker(
            network,
            every_n_events=every_n_events,
            fabric=SwitchFabric(addressing),
            codec=PathCodec(addressing),
        )
        checker.checks.append(check_network_against_reference)
        checker.checks.append(check_incremental_against_full)
        checker.checks.append(check_flowstore_balance)
        checker.attach()
        checker_box.append(checker)
        if sanitize:
            # Primary run only: the reference twins below stay
            # uninstrumented, so their bit-exact comparisons double as
            # the proof that the sanitizer changes nothing. Installed
            # before the storm oracle attaches: the oracle captures
            # bound methods (start_flow, reroute_flow), and those must
            # bind the sanitizer's class-level wrappers, not bypass
            # them.
            from repro.validation.sanitizer import OwnershipSanitizer

            sanitizer_box.append(OwnershipSanitizer(network).install())
        storm_oracle.attach(network)

    try:
        result = run_scenario(config, instrument=instrument)
    finally:
        for sanitizer in sanitizer_box:
            sanitizer.uninstall()
    if checker_box:
        checker_box[0].run_checks()
        checker_box[0].detach()
        storm_oracle.final_check()
        storm_oracle.detach()
    if config.scheduler == "dard" and config.scheduler_params.get("vectorized", True):
        # Same world for the reference run — including any injected bug —
        # so this oracle only ever fires on control-plane divergence.
        scalar = run_scenario(
            dataclasses.replace(
                config,
                scheduler_params={**config.scheduler_params, "vectorized": False},
            ),
            instrument=corrupt,
        )
        compare_controlplane_results(result, scalar)
    if config.network_params.get("settle_mode", "store") == "store":
        # Same world for the reference run — including any injected bug —
        # so this oracle only ever fires on settle-path divergence.
        reference = run_scenario(
            dataclasses.replace(
                config,
                network_params={**config.network_params, "settle_mode": "reference"},
            ),
            instrument=corrupt,
        )
        compare_settle_results(result, reference)
    if config.network_params.get("parallel_backend", "serial") != "serial":
        # Same world for the serial twin — including any injected bug —
        # so this oracle only ever fires on merge-contract divergence.
        serial_twin = run_scenario(_with_backend(config, "serial"), instrument=corrupt)
        compare_parallel_results(result, serial_twin)
    return result


@dataclass
class FuzzFailure:
    """One failing seed, with its shrunk reproduction."""

    seed: int
    error: str
    config: ScenarioConfig
    shrunk: Optional[ScenarioConfig] = None
    shrink_runs: int = 0

    @property
    def minimal_config(self) -> ScenarioConfig:
        return self.shrunk if self.shrunk is not None else self.config

    def render(self) -> str:
        """Human-readable failure report with the minimal config inline."""
        lines = [f"seed {self.seed}: {self.error}"]
        lines.append(
            f"  minimal reproducing config (after {self.shrink_runs} shrink runs):"
        )
        for key, value in sorted(config_to_dict(self.minimal_config).items()):
            lines.append(f"    {key}: {value!r}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzz sweep."""

    cases: int = 0
    elapsed_s: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """One-line summary, plus every failure's report when not ok."""
        header = (
            f"fuzz: {self.cases} cases in {self.elapsed_s:.1f}s, "
            f"{len(self.failures)} failure(s)"
        )
        if self.ok:
            return header
        return "\n".join([header] + [f.render() for f in self.failures])


def _case_fails(
    config: ScenarioConfig,
    corrupt: Optional[Callable],
    every_n_events: int,
    sanitize: bool = False,
) -> Optional[str]:
    """Run a case; the one-line failure description, or None if it passes."""
    try:
        run_case(
            config, corrupt=corrupt, every_n_events=every_n_events, sanitize=sanitize
        )
        return None
    except ReproError as error:
        return f"{type(error).__name__}: {error}"
    except Exception as error:  # crashes are findings too
        summary = traceback.format_exception_only(type(error), error)[-1].strip()
        return f"crash: {summary}"


def shrink_config(
    config: ScenarioConfig,
    fails: Callable[[ScenarioConfig], bool],
    max_runs: int = 32,
) -> tuple:
    """Greedily minimize a failing config; returns (shrunk, runs_used).

    Tries, in order: dropping failure-schedule events, simplifying the
    scheduler to ECMP, the pattern to random, the arrival process to
    Poisson, the network to its defaults (threshold detection), the
    topology to the p=4 fat-tree, then halving duration and arrival
    rate. Each simplification is kept only if the case still fails; the
    loop repeats to a fixpoint or until ``max_runs`` re-executions are
    spent.
    """
    runs = 0

    def candidates(current: ScenarioConfig):
        for i in range(len(current.link_events)):
            trimmed = current.link_events[:i] + current.link_events[i + 1 :]
            yield dataclasses.replace(current, link_events=trimmed)
        if current.scheduler != "ecmp":
            yield dataclasses.replace(current, scheduler="ecmp", scheduler_params={})
        if current.pattern != "random":
            yield dataclasses.replace(current, pattern="random", pattern_params={})
        if current.arrival != "poisson" or current.arrival_params:
            yield dataclasses.replace(current, arrival="poisson", arrival_params={})
        if current.network_params:
            yield dataclasses.replace(current, network_params={})
        if current.topology != "fattree" or current.topology_params != {"p": 4}:
            # Node names are topology-specific, so the failure schedule
            # cannot survive a topology swap; the per-event drops above
            # already minimize it independently.
            yield dataclasses.replace(
                current,
                topology="fattree",
                topology_params={"p": 4},
                link_events=(),
            )
        if current.duration_s > 4.0:
            yield dataclasses.replace(current, duration_s=round(current.duration_s / 2, 3))
        if current.arrival_rate_per_host > 0.02:
            yield dataclasses.replace(
                current, arrival_rate_per_host=round(current.arrival_rate_per_host / 2, 4)
            )

    current = config
    improved = True
    while improved and runs < max_runs:
        improved = False
        for candidate in candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            if fails(candidate):
                current = candidate
                improved = True
                break
    return current, runs


def run_fuzz(
    seeds: Optional[int] = None,
    budget_s: Optional[float] = None,
    start_seed: int = 0,
    inject_bug: bool = False,
    every_n_events: int = DEFAULT_EVERY_N_EVENTS,
    shrink_failures: int = 3,
    progress: Optional[Callable[[str], None]] = None,
    sanitize: bool = False,
    force_backend: Optional[str] = None,
) -> FuzzReport:
    """Sweep seeds (and/or a wall-clock budget) through the validation battery.

    Stops after ``seeds`` cases or once ``budget_s`` wall seconds have
    elapsed, whichever comes first (at least one case always runs). The
    first ``shrink_failures`` failures are shrunk to minimal reproducing
    configs; later ones are reported as-is.

    ``force_backend`` pins every case to one parallel execution backend
    instead of the generator's weighted draw (the nightly CI sweep pins
    ``threads`` so every seed dual-runs the merge-contract oracle); the
    worker count still varies deterministically with the seed.
    """
    if seeds is None and budget_s is None:
        seeds = 100
    corrupt = inject_capacity_bug if inject_bug else None
    report = FuzzReport()
    # Wall clock bounds the fuzzing *budget* only; each case is fully
    # determined by its seed, so timing never changes what a seed does.
    started = time.perf_counter()  # dardlint: disable=DET002
    seed = start_seed
    while True:
        if seeds is not None and report.cases >= seeds:
            break
        if (
            budget_s is not None
            and report.cases > 0
            and time.perf_counter() - started >= budget_s  # dardlint: disable=DET002
        ):
            break
        config = random_scenario(seed)
        if force_backend is not None:
            params = {**config.network_params, "parallel_backend": force_backend}
            if force_backend == "serial":
                params.pop("parallel_workers", None)
            elif "parallel_workers" not in params:
                params["parallel_workers"] = (2, 3, 4, 7)[seed % 4]
            config = dataclasses.replace(config, network_params=params)
        error = _case_fails(config, corrupt, every_n_events, sanitize)
        report.cases += 1
        if error is not None:
            failure = FuzzFailure(seed=seed, error=error, config=config)
            if len(report.failures) < shrink_failures:
                failure.shrunk, failure.shrink_runs = shrink_config(
                    config,
                    lambda c: _case_fails(c, corrupt, every_n_events, sanitize)
                    is not None,
                )
            report.failures.append(failure)
            if progress is not None:
                progress(f"FAIL seed {seed}: {error}")
        elif progress is not None and report.cases % 25 == 0:
            progress(f"... {report.cases} cases, 0 failures" if report.ok
                     else f"... {report.cases} cases, {len(report.failures)} failures")
        seed += 1
    report.elapsed_s = time.perf_counter() - started  # dardlint: disable=DET002
    return report
