"""Evaluation metrics (paper §4).

Two headline metrics: **file transfer time** (efficiency of the flow
scheduler) and **path switch count per flow** (stability). Plus the
improvement formula (eq. 1) Fig. 4 is plotted with, and TCP retransmission
rate for the TeXCP comparison (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; NaN for an empty sequence (renders as missing)."""
    if not values:
        return float("nan")
    return float(np.mean(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100); NaN when empty."""
    if not values:
        return float("nan")
    return float(np.percentile(values, q))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points."""
    if not values:
        return []
    ordered = np.sort(np.asarray(values, dtype=float))
    n = len(ordered)
    return [(float(v), (i + 1) / n) for i, v in enumerate(ordered)]


def improvement(baseline_avg: float, other_avg: float) -> float:
    """Paper eq. (1): (avg_T_baseline - avg_T_other) / avg_T_baseline.

    Positive means ``other`` transfers files faster than the baseline.
    """
    if baseline_avg == 0:
        raise ValueError("baseline average must be non-zero")
    return (baseline_avg - other_avg) / baseline_avg


@dataclass(frozen=True)
class FctSummary:
    """File-transfer-time statistics for one scenario."""

    count: int
    mean_s: float
    median_s: float
    p90_s: float
    max_s: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_s:.2f}s median={self.median_s:.2f}s "
            f"p90={self.p90_s:.2f}s max={self.max_s:.2f}s"
        )


def summarize_fct(fcts: Sequence[float]) -> FctSummary:
    """Summary statistics of a set of flow completion times."""
    return FctSummary(
        count=len(fcts),
        mean_s=mean(fcts),
        median_s=percentile(fcts, 50),
        p90_s=percentile(fcts, 90),
        max_s=max(fcts) if fcts else float("nan"),
    )


@dataclass(frozen=True)
class PathSwitchSummary:
    """Path-switch statistics (the paper's stability metric, Tables 5/7)."""

    count: int
    mean: float
    p90: int
    max: int
    fraction_zero: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} 90th={self.p90} max={self.max} "
            f"never-switched={self.fraction_zero:.0%}"
        )


def summarize_path_switches(switches: Sequence[int]) -> PathSwitchSummary:
    """Summary statistics of per-flow path switch counts."""
    if not switches:
        return PathSwitchSummary(0, float("nan"), 0, 0, float("nan"))
    arr = np.asarray(switches)
    return PathSwitchSummary(
        count=len(arr),
        mean=float(arr.mean()),
        p90=int(np.percentile(arr, 90)),
        max=int(arr.max()),
        fraction_zero=float((arr == 0).mean()),
    )
