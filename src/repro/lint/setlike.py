"""Shared inference: which expressions are (or carry the order of) sets.

Python sets iterate in hash order, which for strings and tuples depends on
``PYTHONHASHSEED`` — any code path whose *result order* flows from set
iteration is a cross-process determinism hazard (the repo's subprocess
byte-identity guarantee, TESTING.md). The DET001/DET003 rules need to know,
for an arbitrary expression, "does iterating this consume set order?".

The analysis is deliberately conservative (prefers false negatives over
false positives, since findings gate CI) and purely intraprocedural:

* **syntactic sets** — set/frozenset displays and comprehensions,
  ``set(...)``/``frozenset(...)`` calls, set-operator combinations
  (``|&-^``), and set-returning methods (``.union(...)`` etc. on a
  known set);
* **local names** — a name assigned a set-like value inside the current
  scope (tracked in statement order, rebinding to a non-set clears it);
* **attributes** — attribute names annotated ``Set[...]`` anywhere in the
  module (class bodies, dataclass fields, ``self.x: Set[int] = ...``) or
  assigned a syntactic set on ``self``;
* **functions** — calls to module-local functions whose return annotation
  is a set type;
* **order taint** — generator expressions and ``map``/``filter`` calls
  over any of the above carry the set's iteration order through to their
  consumer.

Dict iteration is *not* flagged: CPython dicts iterate in insertion order,
which is deterministic whenever the program's control flow is — the hazard
dardlint cares about is hash order, not mapping order.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

__all__ = [
    "ModuleSetFacts",
    "ScopeNames",
    "annotation_is_set",
    "carries_set_order",
    "is_set_like",
]

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_SET_ANNOTATION_NAMES = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
}
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def annotation_is_set(node: Optional[ast.expr]) -> bool:
    """Whether a type annotation denotes a set (``Set[int]``, ``set``, ...)."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return annotation_is_set(node.value)
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return annotation_is_set(ast.parse(node.value, mode="eval").body)
        except (SyntaxError, ValueError):
            return False
    return False


class ModuleSetFacts:
    """Module-wide facts gathered in one prepass over the AST."""

    def __init__(self, tree: ast.Module) -> None:
        #: attribute names known to hold sets anywhere in this module.
        self.set_attrs: Set[str] = set()
        #: module-local function names whose return annotation is a set.
        self.set_returning: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if annotation_is_set(node.returns):
                    self.set_returning.add(node.name)
            elif isinstance(node, ast.AnnAssign):
                if annotation_is_set(node.annotation):
                    target = node.target
                    if isinstance(target, ast.Name):
                        # Dataclass fields / class-level declarations make
                        # the *attribute* name set-typed module-wide.
                        self.set_attrs.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        self.set_attrs.add(target.attr)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and _syntactic_set(node.value):
                        self.set_attrs.add(target.attr)


class ScopeNames:
    """Statement-order tracking of set-typed local names in one scope."""

    def __init__(self, facts: ModuleSetFacts) -> None:
        self.facts = facts
        self.names: Dict[str, bool] = {}

    def observe(self, stmt: ast.stmt) -> None:
        """Update name facts from one statement (call in source order)."""
        if isinstance(stmt, ast.Assign):
            value_is_set = is_set_like(stmt.value, self)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.names[target.id] = value_is_set
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if annotation_is_set(stmt.annotation):
                self.names[stmt.target.id] = True
            elif stmt.value is not None:
                self.names[stmt.target.id] = is_set_like(stmt.value, self)


def _syntactic_set(node: ast.expr) -> bool:
    """Set-ness decidable without any name environment."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CONSTRUCTORS
    return False


def is_set_like(node: ast.expr, scope: Optional[ScopeNames] = None) -> bool:
    """Whether ``node`` evaluates to a set, as far as the inference can tell."""
    if _syntactic_set(node):
        return True
    facts = scope.facts if scope is not None else None
    if isinstance(node, ast.Name):
        return bool(scope and scope.names.get(node.id, False))
    if isinstance(node, ast.Attribute):
        return bool(facts and node.attr in facts.set_attrs)
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return is_set_like(node.left, scope) or is_set_like(node.right, scope)
    if isinstance(node, ast.IfExp):
        return is_set_like(node.body, scope) or is_set_like(node.orelse, scope)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return is_set_like(func.value, scope)
        if isinstance(func, ast.Name) and facts and func.id in facts.set_returning:
            return True
    return False


def carries_set_order(node: ast.expr, scope: Optional[ScopeNames] = None) -> bool:
    """Set-like, or a lazy transform (genexp / map / filter) over one.

    ``sum(x for x in some_set)`` is just as order-dependent as
    ``sum(some_set)`` — the generator merely forwards the set's iteration
    order to whatever consumes it.
    """
    if is_set_like(node, scope):
        return True
    if isinstance(node, ast.GeneratorExp):
        return bool(node.generators) and carries_set_order(
            node.generators[0].iter, scope
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("map", "filter") and node.args:
            return carries_set_order(node.args[-1], scope)
    return False
