"""The intra-scenario parallel backend and its deterministic merge.

Three layers:

* unit tests over the pure pieces — ``resolve_workers``,
  ``partition_demands`` (component cohesion, coverage, balance,
  determinism), ``make_backend`` / ``Network`` constructor validation;
* allocator-level partition invariance — a bucketed fill must reproduce
  the combined serial fill bit for bit, including the tie-rich regime
  where the progressive-filling tail freezes exact tie batches (the
  regression that originally broke cross-bucket symmetry);
* scenario-level bit-identity under adversarial component shapes — a
  giant incast component, all-singleton stride steady state, and
  storm-driven churn, across backends and worker counts 1/2/7, with the
  fan-out threshold lowered so small scenarios actually exercise the
  merge path (asserted via ``par_rounds``).
"""

import dataclasses

import numpy as np
import pytest

import repro.core.registry as registry_module
import repro.simulator.parallel as parallel_module
from repro.common.errors import SimulationError
from repro.common.units import MB, MBPS
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.simulator import Network
from repro.simulator.maxmin import maxmin_allocate_indexed
from repro.simulator.parallel import (
    PARALLEL_BACKENDS,
    SerialBackend,
    ThreadsBackend,
    _fill_bucket_worker,
    make_backend,
    partition_demands,
    resolve_workers,
)
from repro.topology import FatTree


class TestResolveWorkers:
    def test_explicit_request_wins(self):
        assert resolve_workers(3) == 3

    def test_zero_or_negative_raises(self):
        with pytest.raises(SimulationError):
            resolve_workers(0)
        with pytest.raises(SimulationError):
            resolve_workers(-2)

    def test_default_is_at_least_one(self):
        assert resolve_workers(None) >= 1


class TestPartitionDemands:
    def _plan(self, roots, lens, max_buckets):
        indptr = np.zeros(len(lens) + 1, dtype=np.intp)
        np.cumsum(lens, out=indptr[1:])
        return partition_demands(roots, indptr, max_buckets)

    def test_component_cohesion_and_coverage(self):
        roots = [5, 9, 5, 2, 9, 2, 2]
        buckets = self._plan(roots, [3, 1, 2, 4, 1, 1, 2], 3)
        seen = np.concatenate(buckets)
        assert sorted(seen.tolist()) == list(range(len(roots)))
        for bucket in buckets:
            assert bucket.tolist() == sorted(bucket.tolist())
        placed = {}
        for b, bucket in enumerate(buckets):
            for j in bucket.tolist():
                assert roots[j] not in placed or placed[roots[j]] == b
                placed[roots[j]] = b

    def test_all_singletons_spread_across_buckets(self):
        roots = list(range(8))
        buckets = self._plan(roots, [2] * 8, 4)
        assert len(buckets) == 4
        assert all(bucket.size == 2 for bucket in buckets)

    def test_single_giant_component_is_one_bucket(self):
        buckets = self._plan([7] * 6, [3] * 6, 4)
        assert len(buckets) == 1
        assert buckets[0].tolist() == list(range(6))

    def test_largest_first_balance(self):
        # One heavy component (nnz 10) and four light ones (nnz 2): the
        # heavy group fills one bucket and the light ones share the other.
        roots = [1, 1, 2, 3, 4, 5]
        buckets = self._plan(roots, [5, 5, 2, 2, 2, 2], 2)
        assert [b.tolist() for b in buckets] == [[0, 1], [2, 3, 4, 5]]

    def test_pure_function_of_inputs(self):
        roots = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        lens = [2, 3, 1, 2, 4, 1, 2, 3, 1, 2]
        first = self._plan(roots, lens, 3)
        second = self._plan(roots, lens, 3)
        assert [a.tolist() for a in first] == [b.tolist() for b in second]


class TestBackendConstruction:
    def test_make_backend_kinds(self):
        assert make_backend("serial").kind == "serial"
        assert make_backend("threads", 3).workers == 3
        assert make_backend("processes", 2).kind == "processes"

    def test_unknown_kind_raises(self):
        with pytest.raises(SimulationError):
            make_backend("gpu")

    def test_serial_rejects_extra_workers(self):
        with pytest.raises(SimulationError):
            make_backend("serial", 4)

    def test_network_validates_backend(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        with pytest.raises(SimulationError):
            Network(topo, parallel_backend="fibers")
        with pytest.raises(SimulationError):
            Network(topo, parallel_backend="serial", parallel_workers=2)
        net = Network(topo, parallel_backend="threads", parallel_workers=2)
        assert net.parallel.kind == "threads"
        assert net.parallel.workers == 2


def _replicated_csr(components=6, demands_per=9, links_per=3):
    """``components`` identical single-component CSRs over disjoint links.

    Identical structure means every component produces the same share
    sequence, so the combined fill is saturated with *exact* cross-
    component ties — the regime where the progressive tail's tie
    handling must stay batch-exact for bucketed fills to reproduce it.
    """
    indices, indptr, weights = [], [0], []
    for c in range(components):
        base = c * links_per
        for j in range(demands_per):
            links = sorted({base + j % links_per, base + (j + 1) % links_per})
            indices.extend(links)
            indptr.append(indptr[-1] + len(links))
            weights.append(1.0 + (j % 3))
    capacities = np.full(components * links_per, 100e6)
    roots = [j // demands_per for j in range(components * demands_per)]
    return (
        np.asarray(indices, dtype=np.int64),
        np.asarray(indptr, dtype=np.intp),
        np.asarray(weights, dtype=np.float64),
        capacities,
        roots,
    )


class TestPartitionInvariance:
    """Bucketed fills reproduce the combined fill bit for bit."""

    @pytest.mark.parametrize("max_buckets", [2, 3, 4, 7])
    def test_symmetric_tie_batches(self, max_buckets):
        indices, indptr, weights, capacities, roots = _replicated_csr()
        combined, _ = maxmin_allocate_indexed(indices, indptr, weights, capacities)
        rates = np.zeros(indptr.size - 1)
        for js in partition_demands(roots, indptr, max_buckets):
            ids = [indices[indptr[j] : indptr[j + 1]] for j in js.tolist()]
            sub_indptr = np.zeros(js.size + 1, dtype=np.intp)
            np.cumsum([c.size for c in ids], out=sub_indptr[1:])
            bucket_rates, _ = _fill_bucket_worker(
                np.concatenate(ids), sub_indptr, weights[js], capacities
            )
            rates[js] = bucket_rates
        np.testing.assert_array_equal(rates, combined)

    @pytest.mark.parametrize("workers", [2, 4, 7])
    def test_threads_fill_matches_serial(self, workers, monkeypatch):
        monkeypatch.setattr(parallel_module, "_MIN_FANOUT_NNZ", 8)
        indices, indptr, weights, capacities, roots = _replicated_csr(
            components=8, demands_per=12
        )
        serial, _ = maxmin_allocate_indexed(indices, indptr, weights, capacities)
        backend = ThreadsBackend(workers)
        parallel, _ = backend.fill(indices, indptr, weights, capacities, roots)
        np.testing.assert_array_equal(parallel, serial)
        assert backend.stats()["par_rounds"] == 1.0

    def test_below_threshold_uses_combined_fill(self):
        indices, indptr, weights, capacities, roots = _replicated_csr(
            components=2, demands_per=3
        )
        backend = ThreadsBackend(4)
        rates, _ = backend.fill(indices, indptr, weights, capacities, roots)
        serial, _ = maxmin_allocate_indexed(indices, indptr, weights, capacities)
        np.testing.assert_array_equal(rates, serial)
        assert backend.stats()["par_rounds"] == 0.0


def _config(**overrides):
    base = dict(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        scheduler="dard",
        arrival_rate_per_host=0.1,
        duration_s=5.0,
        flow_size_bytes=16 * MB,
        seed=5,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


STORM = (
    ("fail", 1.0, "agg_0_0", "core_0_0"),
    ("restore", 2.0, "agg_0_0", "core_0_0"),
    ("fail", 3.0, "agg_0_0", "core_0_0"),
    ("restore", 4.0, "agg_0_0", "core_0_0"),
)


def _fingerprint(result):
    return (
        tuple(
            (r.flow_id, r.src, r.dst, r.start_time, r.end_time, r.path_switches)
            for r in result.records
        ),
        result.dard_shift_log,
        result.control_bytes,
    )


def _run(config, backend, workers=None):
    params = {**config.network_params, "parallel_backend": backend}
    if workers is not None:
        params["parallel_workers"] = workers
    nets = []
    result = run_scenario(
        dataclasses.replace(config, network_params=params),
        instrument=nets.append,
    )
    return result, nets[0]


class TestScenarioBitIdentity:
    """Adversarial component shapes, all backends, worker counts 1/2/7."""

    @pytest.fixture(autouse=True)
    def _small_fanout(self, monkeypatch):
        # Lower the structural threshold so p=4 scenarios exercise the
        # fan-out + merge path instead of trivially bypassing it.
        monkeypatch.setattr(parallel_module, "_MIN_FANOUT_NNZ", 8)

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_storm_churn_threads(self, workers):
        config = _config(link_events=STORM)
        serial, _ = _run(config, "serial")
        threaded, net = _run(config, "threads", workers)
        assert _fingerprint(threaded) == _fingerprint(serial)
        if workers > 1:
            assert net.perf_stats()["par_rounds"] > 0

    def test_giant_incast_component(self):
        config = _config(pattern="incast", arrival_rate_per_host=0.15)
        serial, _ = _run(config, "serial")
        threaded, _ = _run(config, "threads", 4)
        assert _fingerprint(threaded) == _fingerprint(serial)

    def test_singleton_stride_steady_state(self):
        # Barrier arrivals dirty many singleton components in one
        # coalesced round — otherwise each round touches one component
        # and there is nothing to fan out.
        config = _config(
            scheduler="ecmp",
            arrival_rate_per_host=0.2,
            arrival="incast-barrier",
            arrival_params={"period_s": 0.5},
        )
        serial, _ = _run(config, "serial")
        threaded, net = _run(config, "threads", 4)
        assert _fingerprint(threaded) == _fingerprint(serial)
        assert net.perf_stats()["par_rounds"] > 0

    def test_processes_backend(self):
        config = _config(link_events=STORM[:2], duration_s=4.0)
        serial, _ = _run(config, "serial")
        processed, net = _run(config, "processes", 2)
        assert _fingerprint(processed) == _fingerprint(serial)
        assert net.perf_stats()["par_workers"] == 2.0

    def test_controlplane_chunking(self, monkeypatch):
        monkeypatch.setattr(registry_module, "MIN_CP_FANOUT_ROWS", 1)
        # Flows must live long enough to promote to elephants, or the
        # registry never registers a monitor row and nothing is chunked.
        config = _config(duration_s=10.0, flow_size_bytes=48 * MB, seed=7)
        serial, _ = _run(config, "serial")
        threaded, net = _run(config, "threads", 2)
        assert _fingerprint(threaded) == _fingerprint(serial)
        assert net.perf_stats()["par_cp_rounds"] > 0


class TestSerialBackendIsInert:
    def test_stats_shape(self):
        backend = SerialBackend()
        stats = backend.stats()
        assert stats["par_workers"] == 1.0
        assert all(v == 0.0 for k, v in stats.items() if k != "par_workers")

    def test_run_tasks_inline_in_order(self):
        backend = SerialBackend()
        assert backend.run_tasks(lambda x: x * x, [(2,), (3,), (4,)]) == [4, 9, 16]

    def test_backends_tuple(self):
        assert PARALLEL_BACKENDS == ("serial", "threads", "processes")
