"""DARD: the paper's primary contribution.

Every end host runs a daemon (§3.1) with three components:

* an **elephant flow detector** — a TCP connection that has lasted 10 s is
  an elephant;
* **on-demand monitors** — one per (source ToR, destination ToR) pair with
  live elephants, created when the first such elephant appears and released
  when the last finishes; each polls the relevant switches every second and
  assembles the replies into per-path BoNF states (§2.4);
* a **selfish flow scheduler** — every 5 s plus a uniform random 1-5 s
  (desynchronization is what keeps the game stable in practice), runs
  Algorithm 1: shift one elephant flow from the path with the smallest BoNF
  to the path with the largest, iff the estimated gain exceeds δ (10 Mbps).

Re-routing is expressed through the addressing subsystem: the daemon
re-encapsulates the flow with the address pair encoding the new path, and
the static switch tables do the rest.
"""

from repro.core.bonf import PathState
from repro.core.daemon import HostDaemon
from repro.core.monitor import PairPaths, PathMonitor, switches_to_query
from repro.core.registry import MonitorRegistry
from repro.core.overhead import (
    OverheadModel,
    centralized_rate_bytes_per_s,
    dard_probe_ceiling_bytes_per_s,
    overhead_model,
)
from repro.core.scheduler import DardScheduler

__all__ = [
    "DardScheduler",
    "HostDaemon",
    "MonitorRegistry",
    "OverheadModel",
    "PairPaths",
    "PathMonitor",
    "PathState",
    "centralized_rate_bytes_per_s",
    "dard_probe_ceiling_bytes_per_s",
    "overhead_model",
    "switches_to_query",
]
