"""One function per table/figure in the paper's evaluation (§4).

Every function runs the underlying scenarios at a *scaled-down* default
(documented per function; the paper's full sizes are quoted in
EXPERIMENTS.md) and returns an :class:`ExperimentOutput` holding the same
rows/series the paper reports plus a rendered text view.

Scale notes applying throughout:

* link bandwidth defaults to 100 Mbps (the paper's DeterLab testbed rate)
  rather than ns-2's 1 Gbps, so 128 MB transfers last >= 10 s and actually
  become elephants under moderate load — the same contention regime the
  paper studies at ~10x smaller simulation cost;
* fat-trees run at p=4/p=8 (paper: 4 testbed; 8/16/32 ns-2), Clos at
  D=4/D=8 (paper: 4/8/16), and the 3-tier at 4 cores / 2 pods with the
  paper's exact 2.5:1 access and 1.5:1 aggregation oversubscription ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.common.units import MB, MBPS
from repro.experiments.metrics import (
    cdf_points,
    improvement,
    mean,
    summarize_fct,
    summarize_path_switches,
)
from repro.experiments.report import render_cdf, render_table
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario

PATTERNS = ("random", "staggered", "stride")
ALL_SCHEDULERS = ("ecmp", "vlb", "hedera", "dard")

TESTBED_FATTREE = {"p": 4, "link_bandwidth_bps": 100 * MBPS}
SIM_FATTREE = {"p": 8, "link_bandwidth_bps": 100 * MBPS}
SIM_CLOS = {"d_i": 8, "d_a": 8, "hosts_per_tor": 2, "link_bandwidth_bps": 100 * MBPS}
SIM_THREETIER = {
    "num_cores": 4,
    "num_pods": 2,
    "aggs_per_pod": 2,
    "access_per_pod": 6,
    "hosts_per_access": 5,
    "link_bandwidth_bps": 100 * MBPS,
}

DEFAULT_FLOW_SIZE = 128 * MB
DEFAULT_RATE = 0.06
DEFAULT_DURATION = 90.0


@dataclass
class ExperimentOutput:
    """Structured result of one reproduced table/figure."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    series_unit: str = ""
    notes: str = ""

    def render(self) -> str:
        """Text rendering: title, rows table, CDF quantiles, notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(render_table(self.rows))
        if self.series:
            parts.append(render_cdf(self.series, unit=self.series_unit))
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)


def _scenario(
    scheduler: str,
    topology: str,
    topology_params: dict,
    pattern: str,
    rate: float,
    duration_s: float,
    seed: int,
    scheduler_params: dict = None,
    network_params: dict = None,
) -> ScenarioResult:
    return run_scenario(
        ScenarioConfig(
            topology=topology,
            topology_params=dict(topology_params),
            pattern=pattern,
            scheduler=scheduler,
            scheduler_params=dict(scheduler_params or {}),
            network_params=dict(network_params or {}),
            arrival_rate_per_host=rate,
            duration_s=duration_s,
            flow_size_bytes=DEFAULT_FLOW_SIZE,
            seed=seed,
        )
    )


# ---------------------------------------------------------------------------
# Figure 4: improvement of DARD over ECMP vs flow generating rate (testbed)
# ---------------------------------------------------------------------------

def fig4_improvement(
    rates: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.10),
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """File transfer improvement vs flow generating rate, three patterns.

    Paper: p=4 fat-tree DeterLab testbed, rates up to one flow/s per pair.
    Expected shape: stride improves at every rate; random/staggered start
    near zero (path diversity unneeded), rise as cross-pod flows contend,
    then fall as host-switch links become the bottleneck.
    """
    rows = []
    for pattern in PATTERNS:
        for rate in rates:
            ecmp = _scenario("ecmp", "fattree", TESTBED_FATTREE, pattern, rate, duration_s, seed)
            dard = _scenario("dard", "fattree", TESTBED_FATTREE, pattern, rate, duration_s, seed)
            rows.append(
                {
                    "pattern": pattern,
                    "rate_per_host": rate,
                    "ecmp_mean_s": ecmp.mean_fct,
                    "dard_mean_s": dard.mean_fct,
                    "improvement": improvement(ecmp.mean_fct, dard.mean_fct),
                }
            )
    return ExperimentOutput(
        "fig4",
        "DARD's file transfer improvement over ECMP vs flow generating rate "
        "(p=4 fat-tree testbed)",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 5: FCT CDF under stride on the testbed (DARD / ECMP / pVLB)
# ---------------------------------------------------------------------------

def fig5_testbed_cdf(
    rate: float = 0.08,
    duration_s: float = 120.0,
    seed: int = 0,
) -> ExperimentOutput:
    """CDF of file transfer time, p=4 fat-tree, stride.

    Expected shape: DARD's curve is steeper — it improves the mean by
    improving fairness, pulling both the fastest and slowest flows toward
    the average.
    """
    rows = []
    series = {}
    for scheduler in ("dard", "ecmp", "vlb"):
        result = _scenario(
            "vlb" if scheduler == "vlb" else scheduler,
            "fattree", TESTBED_FATTREE, "stride", rate, duration_s, seed,
        )
        series[scheduler] = cdf_points(result.fcts)
        summary = summarize_fct(result.fcts)
        rows.append(
            {
                "scheduler": scheduler,
                "mean_s": summary.mean_s,
                "median_s": summary.median_s,
                "p90_s": summary.p90_s,
                "max_s": summary.max_s,
            }
        )
    return ExperimentOutput(
        "fig5",
        "File transfer time CDF, p=4 fat-tree, stride (testbed)",
        rows=rows,
        series=series,
        series_unit="seconds (FCT at cumulative fraction)",
    )


# ---------------------------------------------------------------------------
# Figure 6: path switch count CDF on the testbed, three patterns
# ---------------------------------------------------------------------------

def fig6_path_switches(
    rate: float = 0.08,
    duration_s: float = 120.0,
    seed: int = 0,
) -> ExperimentOutput:
    """CDF of DARD path-switch counts, p=4 fat-tree, three patterns.

    Expected shape: staggered flows almost never switch (bottlenecks sit on
    host links); stride flows switch at most a handful of times, far fewer
    than the 4 available paths — DARD introduces little path oscillation.
    """
    rows = []
    series = {}
    for pattern in PATTERNS:
        result = _scenario("dard", "fattree", TESTBED_FATTREE, pattern, rate, duration_s, seed)
        switches = result.path_switches
        series[pattern] = cdf_points([float(s) for s in switches])
        summary = summarize_path_switches(switches)
        rows.append(
            {
                "pattern": pattern,
                "mean": summary.mean,
                "p90": summary.p90,
                "max": summary.max,
                "never_switched": summary.fraction_zero,
            }
        )
    return ExperimentOutput(
        "fig6",
        "DARD path switch times CDF, p=4 fat-tree (testbed)",
        rows=rows,
        series=series,
        series_unit="path switches per flow",
    )


# ---------------------------------------------------------------------------
# Figures 7/9/11: FCT CDFs with all four schedulers on the three topologies
# ---------------------------------------------------------------------------

def _four_scheduler_cdf(
    experiment_id: str,
    title: str,
    topology: str,
    topology_params: dict,
    rate: float,
    duration_s: float,
    seed: int,
    patterns: Sequence[str] = PATTERNS,
) -> ExperimentOutput:
    rows = []
    series = {}
    for pattern in patterns:
        for scheduler in ALL_SCHEDULERS:
            result = _scenario(
                scheduler, topology, topology_params, pattern, rate, duration_s, seed
            )
            series[f"{pattern}/{scheduler}"] = cdf_points(result.fcts)
            rows.append(
                {
                    "pattern": pattern,
                    "scheduler": scheduler,
                    "mean_fct_s": result.mean_fct,
                    "flows": len(result.records),
                }
            )
    return ExperimentOutput(
        experiment_id,
        title,
        rows=rows,
        series=series,
        series_unit="seconds (FCT at cumulative fraction)",
    )


def fig7_fattree_cdf(
    rate: float = DEFAULT_RATE,
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """FCT CDFs, fat-tree, all schedulers x all patterns (paper p=32; here p=8).

    Expected shape: under stride, Hedera and DARD beat ECMP and pVLB with
    Hedera ahead by <10%; under staggered, DARD wins outright (Hedera's
    per-destination assignment cannot help intra-pod traffic); random sits
    in between.
    """
    return _four_scheduler_cdf(
        "fig7",
        "File transfer time CDF on fat-tree (scaled p=8; paper p=32)",
        "fattree",
        SIM_FATTREE,
        rate,
        duration_s,
        seed,
    )


def fig9_clos_cdf(
    rate: float = DEFAULT_RATE,
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """FCT CDFs on a Clos network (paper D_I=D_A=16; here D=8)."""
    return _four_scheduler_cdf(
        "fig9",
        "File transfer time CDF on Clos network (scaled D=8; paper D=16)",
        "clos",
        SIM_CLOS,
        rate,
        duration_s,
        seed,
    )


def fig11_threetier_cdf(
    rate: float = 0.04,
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """FCT CDFs on the oversubscribed 3-tier topology.

    Expected shape (paper §4.3.2): with oversubscription the bottlenecks
    move around — under staggered DARD beats even the centralized
    scheduler; under stride DARD beats random scheduling with a small gap
    to centralized.
    """
    return _four_scheduler_cdf(
        "fig11",
        "File transfer time CDF on 8-core 3-tier (scaled 4-core; oversub 2.5:1/1.5:1)",
        "threetier",
        SIM_THREETIER,
        rate,
        duration_s,
        seed,
    )


# ---------------------------------------------------------------------------
# Figures 8/10/12 + Tables 5/7: DARD path-switch stability
# ---------------------------------------------------------------------------

def _switch_stats(
    experiment_id: str,
    title: str,
    topology: str,
    sizes: Dict[str, dict],
    rate: float,
    duration_s: float,
    seed: int,
) -> ExperimentOutput:
    rows = []
    series = {}
    for size_label, topology_params in sizes.items():
        for pattern in PATTERNS:
            result = _scenario(
                "dard", topology, topology_params, pattern, rate, duration_s, seed
            )
            summary = summarize_path_switches(result.path_switches)
            series[f"{size_label}/{pattern}"] = cdf_points(
                [float(s) for s in result.path_switches]
            )
            rows.append(
                {
                    "size": size_label,
                    "pattern": pattern,
                    "mean": summary.mean,
                    "p90": summary.p90,
                    "max": summary.max,
                    "never_switched": summary.fraction_zero,
                }
            )
    return ExperimentOutput(
        experiment_id,
        title,
        rows=rows,
        series=series,
        series_unit="path switches per flow",
    )


def fig8_tab5_fattree_switches(
    rate: float = DEFAULT_RATE,
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """Path-switch CDFs and 90th/max stats on fat-trees (Fig 8 + Table 5).

    Expected: 90th percentile <= a handful, max well below the number of
    available paths — flows finish before exploring all paths.
    """
    sizes = {
        "p=4": TESTBED_FATTREE,
        "p=8": SIM_FATTREE,
    }
    return _switch_stats(
        "fig8_tab5",
        "DARD path switch times on fat-trees (paper p=8/16/32; here p=4/8)",
        "fattree",
        sizes,
        rate,
        duration_s,
        seed,
    )


def fig10_tab7_clos_switches(
    rate: float = DEFAULT_RATE,
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """Path-switch stats on Clos networks (Fig 10 + Table 7)."""
    sizes = {
        "D=4": {"d_i": 4, "d_a": 4, "hosts_per_tor": 2, "link_bandwidth_bps": 100 * MBPS},
        "D=8": SIM_CLOS,
    }
    return _switch_stats(
        "fig10_tab7",
        "DARD path switch times on Clos networks (paper D=4/8/16; here D=4/8)",
        "clos",
        sizes,
        rate,
        duration_s,
        seed,
    )


def fig12_threetier_switches(
    rate: float = 0.04,
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """Path-switch stats on the 3-tier topology (Fig 12).

    Expected: 90% of flows shift paths no more than twice even with
    oversubscription > 1.
    """
    return _switch_stats(
        "fig12",
        "DARD path switch times on the oversubscribed 3-tier topology",
        "threetier",
        {"4-core": SIM_THREETIER},
        rate,
        duration_s,
        seed,
    )


# ---------------------------------------------------------------------------
# Tables 4/6: average FCT across sizes, patterns, schedulers
# ---------------------------------------------------------------------------

def _avg_fct_table(
    experiment_id: str,
    title: str,
    topology: str,
    sizes: Dict[str, dict],
    rate: float,
    duration_s: float,
    seed: int,
) -> ExperimentOutput:
    rows = []
    for size_label, topology_params in sizes.items():
        for pattern in PATTERNS:
            row: Dict[str, object] = {"size": size_label, "pattern": pattern}
            for scheduler in ALL_SCHEDULERS:
                result = _scenario(
                    scheduler, topology, topology_params, pattern, rate, duration_s, seed
                )
                row[f"{scheduler}_s"] = result.mean_fct
            rows.append(row)
    return ExperimentOutput(experiment_id, title, rows=rows)


def tab4_fattree_fct(
    rate: float = DEFAULT_RATE,
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """Average file transfer time on fat-trees (Table 4; paper p=8/16/32).

    Expected: DARD < ECMP ~= pVLB everywhere; DARD ~ Hedera under stride
    (DARD even wins on the small fat-tree); DARD < Hedera under staggered.
    """
    sizes = {"p=4": TESTBED_FATTREE, "p=8": SIM_FATTREE}
    return _avg_fct_table(
        "tab4",
        "Average file transfer time (s) on fat-trees",
        "fattree",
        sizes,
        rate,
        duration_s,
        seed,
    )


def tab6_clos_fct(
    rate: float = DEFAULT_RATE,
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """Average file transfer time on Clos networks (Table 6)."""
    sizes = {
        "D=4": {"d_i": 4, "d_a": 4, "hosts_per_tor": 2, "link_bandwidth_bps": 100 * MBPS},
        "D=8": SIM_CLOS,
    }
    return _avg_fct_table(
        "tab6",
        "Average file transfer time (s) on Clos networks",
        "clos",
        sizes,
        rate,
        duration_s,
        seed,
    )


# ---------------------------------------------------------------------------
# Figures 13/14: DARD vs TeXCP
# ---------------------------------------------------------------------------

def fig13_fig14_texcp(
    rate: float = 0.08,
    duration_s: float = 120.0,
    seed: int = 0,
) -> ExperimentOutput:
    """DARD vs TeXCP: FCT CDF (Fig 13) and retransmission-rate CDF (Fig 14).

    Expected: both achieve similar bisection bandwidth, but TeXCP's
    packet-level striping reorders packets and retransmits (up to tens of
    percent), so DARD's goodput — and hence FCT — is slightly better while
    DARD's retransmission rate stays near zero.
    """
    rows = []
    series = {}
    for scheduler in ("dard", "texcp"):
        result = _scenario(
            scheduler, "fattree", TESTBED_FATTREE, "stride", rate, duration_s, seed
        )
        series[f"fct/{scheduler}"] = cdf_points(result.fcts)
        series[f"retx/{scheduler}"] = cdf_points(result.retx_rates)
        summary = summarize_fct(result.fcts)
        rows.append(
            {
                "scheduler": scheduler,
                "mean_fct_s": summary.mean_s,
                "mean_retx_rate": mean(result.retx_rates),
                "max_retx_rate": max(result.retx_rates) if result.retx_rates else 0.0,
            }
        )
    return ExperimentOutput(
        "fig13_fig14",
        "DARD vs TeXCP on p=4 fat-tree, stride: FCT and TCP retransmission rate",
        rows=rows,
        series=series,
        series_unit="seconds for fct/*, fraction for retx/*",
    )


# ---------------------------------------------------------------------------
# Figure 15: control-plane overhead, DARD vs centralized scheduling
# ---------------------------------------------------------------------------

def fig15_overhead(
    rates: Sequence[float] = (0.01, 0.02, 0.04, 0.06, 0.08),
    duration_s: float = DEFAULT_DURATION,
    seed: int = 0,
) -> ExperimentOutput:
    """Control message bandwidth vs peak number of elephant flows (p=8).

    Expected shape: DARD's probe traffic grows with the number of
    source-destination pairs but is *bounded by topology size* (all-pairs
    probing is the ceiling), while the centralized scheduler's
    report/update traffic is proportional to flow count; their curves
    cross as load grows and DARD flattens out.
    """
    rows = []
    for scheduler in ("dard", "hedera"):
        for rate in rates:
            result = _scenario(
                scheduler, "fattree", SIM_FATTREE, "random", rate, duration_s, seed
            )
            rows.append(
                {
                    "scheduler": scheduler,
                    "rate_per_host": rate,
                    "peak_elephants": result.peak_elephants,
                    "control_kb_per_s": result.control_bytes_per_second / 1e3,
                    "messages": result.control_messages,
                }
            )
    return ExperimentOutput(
        "fig15",
        "Control message bandwidth vs peak elephant flows (p=8 fat-tree)",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------

def ablation_delta(
    deltas_mbps: Sequence[float] = (0.0, 1.0, 10.0, 50.0),
    rate: float = 0.08,
    duration_s: float = 120.0,
    seed: int = 0,
) -> ExperimentOutput:
    """δ threshold sweep: performance vs stability trade-off (§2.5).

    δ=0 maximizes shifting (any BoNF gain triggers a move); larger δ damps
    oscillation at some performance cost.
    """
    rows = []
    for delta in deltas_mbps:
        result = _scenario(
            "dard", "fattree", TESTBED_FATTREE, "stride", rate, duration_s, seed,
            scheduler_params={"delta_bps": delta * MBPS},
        )
        switches = summarize_path_switches(result.path_switches)
        rows.append(
            {
                "delta_mbps": delta,
                "mean_fct_s": result.mean_fct,
                "mean_switches": switches.mean,
                "max_switches": switches.max,
                "shifts_total": result.dard_shifts,
            }
        )
    return ExperimentOutput(
        "ablation_delta",
        "DARD δ threshold sweep (p=4 fat-tree, stride)",
        rows=rows,
    )


def ablation_synchronization(
    rate: float = 0.08,
    duration_s: float = 120.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Randomized vs synchronized scheduling intervals (§4.2).

    The paper attributes DARD's low path oscillation to the random
    [1 s, 5 s] added to each host's scheduling interval; removing it makes
    hosts react to the same stale state simultaneously.
    """
    rows = []
    for synchronized in (False, True):
        result = _scenario(
            "dard", "fattree", TESTBED_FATTREE, "stride", rate, duration_s, seed,
            scheduler_params={"synchronized": synchronized},
        )
        switches = summarize_path_switches(result.path_switches)
        rows.append(
            {
                "mode": "synchronized" if synchronized else "randomized",
                "mean_fct_s": result.mean_fct,
                "mean_switches": switches.mean,
                "max_switches": switches.max,
                "shifts_total": result.dard_shifts,
            }
        )
    return ExperimentOutput(
        "ablation_sync",
        "Randomized vs synchronized DARD scheduling intervals",
        rows=rows,
    )


def ablation_query_interval(
    intervals_s: Sequence[float] = (0.5, 1.0, 2.0, 5.0),
    rate: float = 0.08,
    duration_s: float = 120.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Monitor query interval sweep: state staleness vs probe overhead."""
    rows = []
    for interval in intervals_s:
        result = _scenario(
            "dard", "fattree", TESTBED_FATTREE, "stride", rate, duration_s, seed,
            scheduler_params={"query_interval_s": interval},
        )
        rows.append(
            {
                "query_interval_s": interval,
                "mean_fct_s": result.mean_fct,
                "control_kb_per_s": result.control_bytes_per_second / 1e3,
            }
        )
    return ExperimentOutput(
        "ablation_query",
        "DARD monitor query interval sweep",
        rows=rows,
    )


def ablation_elephant_threshold(
    thresholds_s: Sequence[float] = (5.0, 10.0, 20.0),
    rate: float = 0.08,
    duration_s: float = 120.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Elephant promotion age sweep (the paper fixes 10 s).

    Lower thresholds let DARD act on flows sooner (better FCT, more control
    traffic); higher thresholds leave short-lived congestion unmanaged.
    """
    rows = []
    for threshold in thresholds_s:
        result = _scenario(
            "dard", "fattree", TESTBED_FATTREE, "stride", rate, duration_s, seed,
            network_params={"elephant_age_s": threshold},
        )
        rows.append(
            {
                "elephant_age_s": threshold,
                "mean_fct_s": result.mean_fct,
                "shifts_total": result.dard_shifts,
                "control_kb_per_s": result.control_bytes_per_second / 1e3,
            }
        )
    return ExperimentOutput(
        "ablation_elephant",
        "Elephant detection threshold sweep",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Extensions (beyond the paper's evaluation)
# ---------------------------------------------------------------------------

def ext_flowlet_texcp(
    rate: float = 0.08,
    duration_s: float = 120.0,
    seed: int = 0,
) -> ExperimentOutput:
    """The paper's future-work hypothesis (§4.3.3), tested: scheduling
    TeXCP at flowlet granularity should eliminate the reordering
    retransmissions that packet granularity suffers and recover the lost
    goodput."""
    rows = []
    for scheduler in ("texcp", "texcp-flowlet", "dard"):
        result = _scenario(
            scheduler, "fattree", TESTBED_FATTREE, "stride", rate, duration_s, seed
        )
        rows.append(
            {
                "scheduler": scheduler,
                "mean_fct_s": result.mean_fct,
                "mean_retx_rate": mean(result.retx_rates),
            }
        )
    return ExperimentOutput(
        "ext_flowlet",
        "TeXCP at packet vs flowlet granularity vs DARD (paper future work)",
        rows=rows,
    )


def ext_centralized_variants(
    rate: float = 0.08,
    duration_s: float = 90.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Hedera's two placement algorithms (Simulated Annealing vs Global
    First Fit) against DARD, across all three patterns."""
    rows = []
    for pattern in PATTERNS:
        row: Dict[str, object] = {"pattern": pattern}
        for scheduler in ("ecmp", "hedera", "gff", "dard"):
            result = _scenario(
                scheduler, "fattree", TESTBED_FATTREE, pattern, rate, duration_s, seed
            )
            row[f"{scheduler}_s"] = result.mean_fct
        rows.append(row)
    return ExperimentOutput(
        "ext_centralized",
        "Centralized variants (SA vs Global First Fit) vs DARD, p=4 fat-tree",
        rows=rows,
    )


def ext_failure_recovery(
    rate: float = 0.08,
    duration_s: float = 120.0,
    fail_at_s: float = 30.0,
    restore_at_s: float = 90.0,
    seed: int = 0,
) -> ExperimentOutput:
    """Failure injection: a core uplink dies mid-experiment and later
    heals. Compares how each scheduler's mean FCT degrades relative to its
    own failure-free run — DARD routes around the failure using nothing
    but the BoNF state it already monitors."""
    events = (
        ("fail", fail_at_s, "agg_0_0", "core_0_0"),
        ("restore", restore_at_s, "agg_0_0", "core_0_0"),
    )
    rows = []
    for scheduler in ("ecmp", "vlb", "hedera", "dard"):
        healthy = _scenario(
            scheduler, "fattree", TESTBED_FATTREE, "stride", rate, duration_s, seed
        )
        degraded = run_scenario(
            ScenarioConfig(
                topology="fattree",
                topology_params=dict(TESTBED_FATTREE),
                pattern="stride",
                scheduler=scheduler,
                arrival_rate_per_host=rate,
                duration_s=duration_s,
                flow_size_bytes=DEFAULT_FLOW_SIZE,
                seed=seed,
                link_events=events,
            )
        )
        rows.append(
            {
                "scheduler": scheduler,
                "healthy_fct_s": healthy.mean_fct,
                "failure_fct_s": degraded.mean_fct,
                "degradation": degraded.mean_fct / healthy.mean_fct - 1.0,
                "stalled_flows": sum(
                    1 for r in degraded.records if r.fct > 2 * healthy.mean_fct
                ),
            }
        )
    return ExperimentOutput(
        "ext_failures",
        "Mean FCT degradation under a mid-run core-uplink failure",
        rows=rows,
    )


def theory_convergence(
    flow_counts: Sequence[int] = (2, 4, 8, 16, 32),
    trials: int = 20,
    seed: int = 0,
    duration_s: float = None,  # accepted for CLI uniformity; unused
) -> ExperimentOutput:
    """Quantify Theorem 2 and the price-of-anarchy claim (Appendix B).

    Plays asynchronous best-response dynamics on random games over p=4
    fat-tree route sets: steps to Nash vs number of flows, plus the
    Nash-vs-optimum min-BoNF ratio where the optimum is brute-forceable.
    """
    from repro.gametheory import convergence_study

    rows = []
    for row in convergence_study(flow_counts=flow_counts, trials=trials, seed=seed):
        rows.append(
            {
                "flows": row.num_flows,
                "mean_steps": row.mean_steps,
                "max_steps": row.max_steps,
                "mean_poa": row.mean_poa if row.mean_poa is not None else "-",
                "worst_poa": row.worst_poa if row.worst_poa is not None else "-",
            }
        )
    return ExperimentOutput(
        "theory_convergence",
        "Best-response dynamics: steps to Nash and price of anarchy",
        rows=rows,
        notes="PoA = min-BoNF(reached Nash) / min-BoNF(global optimum); "
        "'-' where the optimum is too large to brute force.",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentOutput]] = {
    "fig4": fig4_improvement,
    "fig5": fig5_testbed_cdf,
    "fig6": fig6_path_switches,
    "fig7": fig7_fattree_cdf,
    "fig8_tab5": fig8_tab5_fattree_switches,
    "fig9": fig9_clos_cdf,
    "fig10_tab7": fig10_tab7_clos_switches,
    "fig11": fig11_threetier_cdf,
    "fig12": fig12_threetier_switches,
    "tab4": tab4_fattree_fct,
    "tab6": tab6_clos_fct,
    "fig13_fig14": fig13_fig14_texcp,
    "fig15": fig15_overhead,
    "ablation_delta": ablation_delta,
    "ablation_sync": ablation_synchronization,
    "ablation_query": ablation_query_interval,
    "ablation_elephant": ablation_elephant_threshold,
    "ext_flowlet": ext_flowlet_texcp,
    "ext_centralized": ext_centralized_variants,
    "ext_failures": ext_failure_recovery,
    "theory_convergence": theory_convergence,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentOutput:
    """Run one reproduced experiment by id (see :data:`EXPERIMENTS`)."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](**kwargs)
