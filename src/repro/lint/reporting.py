"""dardlint output: human text and machine JSON.

The JSON document is the CI artifact format; its schema is part of the
tool's contract and covered by tests:

.. code-block:: json

    {
      "tool": "dardlint",
      "schema_version": 2,
      "ok": false,
      "files_scanned": 97,
      "files_skipped": 3,
      "rules": [{"code": "DET001", "name": "...", "description": "..."}],
      "counts": {"DET001": 2},
      "findings": [
        {"path": "src/repro/x.py", "line": 10, "col": 5,
         "code": "DET001", "message": "..."}
      ]
    }

Schema version 2 added the interprocedural rule family (RACE001-003,
OWN001, DRD001) to ``rules`` and the ``files_skipped`` count — files
reachable from the linted paths but outside the configured ``include``
scopes, previously silently absent from the document.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.engine import Finding, all_rules

__all__ = ["render_json", "render_text", "to_document"]

SCHEMA_VERSION = 2


def render_text(
    findings: Sequence[Finding], files_scanned: int, files_skipped: int = 0
) -> str:
    """clang-style ``path:line:col: CODE message`` lines plus a summary."""
    lines = [finding.render() for finding in findings]
    noun = "file" if files_scanned == 1 else "files"
    skipped = f", {files_skipped} out-of-scope skipped" if files_skipped else ""
    if findings:
        lines.append(
            f"dardlint: {len(findings)} finding(s) in {files_scanned} {noun}{skipped}"
        )
    else:
        lines.append(f"dardlint: clean ({files_scanned} {noun} scanned{skipped})")
    return "\n".join(lines)


def to_document(
    findings: Sequence[Finding], files_scanned: int, files_skipped: int = 0
) -> dict:
    """The JSON-schema document as a plain dict."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    rules: List[dict] = [
        {"code": cls.code, "name": cls.name, "description": cls.description}
        for cls in all_rules()
    ]
    return {
        "tool": "dardlint",
        "schema_version": SCHEMA_VERSION,
        "ok": not findings,
        "files_scanned": files_scanned,
        "files_skipped": files_skipped,
        "rules": rules,
        "counts": counts,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in findings
        ],
    }


def render_json(
    findings: Sequence[Finding], files_scanned: int, files_skipped: int = 0
) -> str:
    """The JSON-schema document serialized with stable key order."""
    return json.dumps(
        to_document(findings, files_scanned, files_skipped), indent=2, sort_keys=True
    )
