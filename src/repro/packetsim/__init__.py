"""Packet-level micro-simulator for cross-validating the fluid model.

The main simulator (:mod:`repro.simulator`) is a fluid approximation of
the paper's ns-2 setup; this package is the ground truth it is validated
against on small scenarios: store-and-forward FIFO queues with
serialization and propagation delay per link, and TCP Reno-style senders
(slow start, congestion avoidance, triple-duplicate-ACK fast retransmit,
coarse RTO) moving real packet sequences.

It is deliberately small — single-digit flows, megabyte transfers — and
exists to answer two questions the benchmarks rely on:

* do fluid flow completion times track packet-level ones? (validation
  bench: within tens of percent on every scenario checked), and
* does striping one TCP flow across unequal-delay paths really cause
  duplicate-ACK retransmissions? (the mechanism behind the TeXCP
  comparison, Figs. 13-14).
"""

from repro.packetsim.simulator import PacketFlowResult, PacketSimulation
from repro.packetsim.tcp import TcpParams

__all__ = ["PacketFlowResult", "PacketSimulation", "TcpParams"]
