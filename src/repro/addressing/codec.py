"""Path <-> (source address, destination address) codec (paper §2.3).

Encoding: pick the source host's address on the chain climbing the path's
uphill segment and the destination host's address on the chain descending
the downhill segment — both under the path's core. Decoding mirrors the
switches' downhill-then-uphill lookup logic; the switch fabric in
:mod:`repro.switches` independently re-derives the same path hop by hop,
which the test suite uses to cross-validate this codec.
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import AddressingError, RoutingError
from repro.topology.multirooted import MultiRootedTopology, SwitchPath
from repro.addressing.hierarchy import HierarchicalAddressing


class PathCodec:
    """Encode a chosen path into an address pair, and back."""

    def __init__(self, addressing: HierarchicalAddressing) -> None:
        self.addressing = addressing
        self.topology: MultiRootedTopology = addressing.topology

    def encode(self, src_host: str, dst_host: str, path: SwitchPath) -> Tuple[int, int]:
        """Address pair that makes the static tables forward along ``path``.

        ``path`` is a ToR-to-ToR switch path as produced by
        :meth:`MultiRootedTopology.equal_cost_paths`.
        """
        topo = self.topology
        src_tor = topo.tor_of(src_host)
        dst_tor = topo.tor_of(dst_host)
        if not path or path[0] != src_tor or path[-1] != dst_tor:
            raise AddressingError(
                f"path {path!r} does not connect {src_host!r} (ToR {src_tor!r}) "
                f"to {dst_host!r} (ToR {dst_tor!r})"
            )
        if len(path) == 1:
            chain = topo.chains_to_tor(src_tor)[0]
            dst_chain = topo.chains_to_tor(dst_tor)[0]
            return (
                self.addressing.address_of(src_host, chain),
                self.addressing.address_of(dst_host, dst_chain),
            )
        if len(path) == 3:
            tor_s, agg, tor_d = path
            cores_above = sorted(topo.up_neighbors(agg))
            if not cores_above:
                raise AddressingError(f"aggregation switch {agg!r} has no core above it")
            core = cores_above[0]
            src_chain = (core, agg, tor_s)
            dst_chain = (core, agg, tor_d)
        elif len(path) == 5:
            tor_s, agg_up, core, agg_down, tor_d = path
            src_chain = (core, agg_up, tor_s)
            dst_chain = (core, agg_down, tor_d)
        else:
            raise AddressingError(f"unsupported path length {len(path)}: {path!r}")
        return (
            self.addressing.address_of(src_host, src_chain),
            self.addressing.address_of(dst_host, dst_chain),
        )

    def decode(self, src_addr: int, dst_addr: int) -> SwitchPath:
        """The switch path an address pair routes along.

        Mirrors the forwarding rule: at each switch the destination address
        is tried in the downhill table first; otherwise the source address
        climbs the uphill table. Raises :class:`RoutingError` for address
        pairs drawn from different cores' trees (no valid turning point).
        """
        src_host, (src_core, src_agg, src_tor) = self.addressing.owner_of(src_addr)
        dst_host, (dst_core, dst_agg, dst_tor) = self.addressing.owner_of(dst_addr)
        if src_host == dst_host:
            raise RoutingError(f"source and destination are the same host {src_host!r}")
        if src_tor == dst_tor:
            return (src_tor,)
        if src_agg == dst_agg:
            return (src_tor, src_agg, dst_tor)
        if src_core != dst_core:
            raise RoutingError(
                f"address pair spans different trees ({src_core!r} vs {dst_core!r}); "
                "no switch can turn the packet downhill"
            )
        return (src_tor, src_agg, src_core, dst_agg, dst_tor)

    def endpoints(self, src_addr: int, dst_addr: int) -> Tuple[str, str]:
        """The (source host, destination host) an address pair connects."""
        src_host, _ = self.addressing.owner_of(src_addr)
        dst_host, _ = self.addressing.owner_of(dst_addr)
        return src_host, dst_host
