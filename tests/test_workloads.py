"""Tests for traffic patterns and the arrival process."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.simulator import EventEngine
from repro.workloads import (
    ArrivalProcess,
    RandomPattern,
    StaggeredPattern,
    StridePattern,
    WorkloadSpec,
    make_pattern,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestRandomPattern:
    def test_never_self(self, fattree4, rng):
        pattern = RandomPattern(fattree4)
        for host in pattern.hosts:
            for _ in range(10):
                assert pattern.pick_dst(host, rng) != host

    def test_covers_many_destinations(self, fattree4, rng):
        pattern = RandomPattern(fattree4)
        dsts = {pattern.pick_dst("h_0_0_0", rng) for _ in range(300)}
        assert len(dsts) == 15  # every other host eventually drawn


class TestStaggeredPattern:
    def test_bucket_proportions(self, fattree4, rng):
        pattern = StaggeredPattern(fattree4, tor_p=0.5, pod_p=0.3)
        src = "h_0_0_0"
        same_tor = same_pod = other = 0
        n = 4000
        for _ in range(n):
            dst = pattern.pick_dst(src, rng)
            if fattree4.tor_of(dst) == "tor_0_0":
                same_tor += 1
            elif fattree4.pod_of(dst) == 0:
                same_pod += 1
            else:
                other += 1
        assert same_tor / n == pytest.approx(0.5, abs=0.05)
        assert same_pod / n == pytest.approx(0.3, abs=0.05)
        assert other / n == pytest.approx(0.2, abs=0.05)

    def test_invalid_probabilities(self, fattree4):
        with pytest.raises(ConfigurationError):
            StaggeredPattern(fattree4, tor_p=0.8, pod_p=0.5)
        with pytest.raises(ConfigurationError):
            StaggeredPattern(fattree4, tor_p=-0.1, pod_p=0.3)

    def test_fallback_when_rack_is_solitary(self, rng):
        """hosts_per_tor=1 leaves the same-ToR bucket empty; draws must
        fall through rather than fail."""
        from repro.topology import ClosNetwork

        topo = ClosNetwork(d_i=4, d_a=4, hosts_per_tor=1)
        pattern = StaggeredPattern(topo, tor_p=0.9, pod_p=0.05)
        src = topo.hosts()[0]
        for _ in range(50):
            assert pattern.pick_dst(src, rng) != src


class TestStridePattern:
    def test_deterministic_mapping(self, fattree4, rng):
        pattern = StridePattern(fattree4, step=4)
        a = pattern.pick_dst("h_0_0_0", rng)
        b = pattern.pick_dst("h_0_0_0", rng)
        assert a == b

    def test_auto_step_crosses_pods(self, fattree4, rng):
        pattern = StridePattern(fattree4)
        for host in pattern.hosts:
            dst = pattern.pick_dst(host, rng)
            assert fattree4.pod_of(dst) != fattree4.pod_of(host), (host, dst)

    def test_stride_is_permutation(self, fattree4, rng):
        pattern = StridePattern(fattree4)
        dsts = [pattern.pick_dst(h, rng) for h in pattern.hosts]
        assert sorted(dsts) == sorted(pattern.hosts)

    def test_invalid_step(self, fattree4):
        with pytest.raises(ConfigurationError):
            StridePattern(fattree4, step=0)
        with pytest.raises(ConfigurationError):
            StridePattern(fattree4, step=16)


class TestMakePattern:
    def test_by_name(self, fattree4):
        assert isinstance(make_pattern("random", fattree4), RandomPattern)
        assert isinstance(make_pattern("staggered", fattree4), StaggeredPattern)
        assert isinstance(make_pattern("stride", fattree4), StridePattern)

    def test_kwargs_forwarded(self, fattree4):
        pattern = make_pattern("staggered", fattree4, tor_p=0.2, pod_p=0.2)
        assert pattern.tor_p == 0.2

    def test_unknown_pattern(self, fattree4):
        with pytest.raises(ConfigurationError):
            make_pattern("bimodal", fattree4)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival_rate_per_host=0, duration_s=10)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival_rate_per_host=1, duration_s=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival_rate_per_host=1, duration_s=10, flow_size_bytes=0)

    def test_default_flow_size_is_128mb(self):
        assert WorkloadSpec(arrival_rate_per_host=1, duration_s=10).flow_size_bytes == 128_000_000


class TestArrivalProcess:
    def test_generates_roughly_poisson_count(self, fattree4, rng):
        engine = EventEngine()
        pattern = StridePattern(fattree4)
        spec = WorkloadSpec(arrival_rate_per_host=0.5, duration_s=100.0)
        flows = []
        process = ArrivalProcess(
            engine, pattern, spec, lambda s, d, b: flows.append((s, d, b)), rng
        )
        process.start()
        engine.run_until_idle()
        expected = 16 * 0.5 * 100
        assert 0.8 * expected < len(flows) < 1.2 * expected
        assert process.flows_generated == len(flows)

    def test_no_arrivals_after_duration(self, fattree4, rng):
        engine = EventEngine()
        pattern = StridePattern(fattree4)
        spec = WorkloadSpec(arrival_rate_per_host=1.0, duration_s=10.0)
        times = []
        process = ArrivalProcess(engine, pattern, spec, lambda s, d, b: times.append(engine.now), rng)
        process.start()
        engine.run_until_idle()
        assert max(times) <= 10.0

    def test_flow_sizes_passed_through(self, fattree4, rng):
        engine = EventEngine()
        pattern = StridePattern(fattree4)
        spec = WorkloadSpec(arrival_rate_per_host=1.0, duration_s=5.0, flow_size_bytes=42.0)
        sizes = set()
        ArrivalProcess(engine, pattern, spec, lambda s, d, b: sizes.add(b), rng).start()
        engine.run_until_idle()
        assert sizes == {42.0}

    def test_max_flows_cap(self, fattree4, rng):
        engine = EventEngine()
        pattern = StridePattern(fattree4)
        spec = WorkloadSpec(arrival_rate_per_host=5.0, duration_s=50.0)
        flows = []
        process = ArrivalProcess(
            engine, pattern, spec, lambda s, d, b: flows.append(1), rng, max_flows=7
        )
        process.start()
        engine.run_until_idle()
        assert len(flows) == 7
