"""Reordering-induced retransmission model for packet-level load balancing.

The paper's TeXCP comparison (§4.3.3, Figs. 13-14) turns on one mechanism:
splitting a single TCP flow across paths with *different latencies* delivers
packets out of order; three duplicate ACKs look like loss, so TCP
retransmits and halves its window, cutting goodput even when bisection
bandwidth is fully utilized (".. some of the packets are retransmitted and
thus its goodput is not as high as [DARD's]").

Our fluid simulator has no packets, so the effect is modelled analytically.
Each path's one-way delay is its propagation delay plus an M/M/1-style
queueing estimate ``q = prop * util / (1 - util)`` per link (capped). For a
flow striped over components with rates ``r_i`` and delays ``d_i``, the
chance that consecutive packets straddle paths ``i`` and ``j`` is
``p_i * p_j`` (``p_i = r_i / r``), and the effective delay gap between those
paths is

    gap_ij = |d_i - d_j| + (q_i + q_j) / 2

The second term models stochastic queue fluctuation: in an M/M/1 queue the
delay's standard deviation equals its mean, so even two paths with equal
*average* delay reorder packets when their queues are non-empty — this is
why TeXCP's retransmissions persist after it has balanced utilization.
The retransmitted fraction is then

    f = min(f_max, beta * sum_{i<j} p_i p_j * gap_ij / rtt_base)

``beta`` is a single calibration constant chosen so a 4-way even split over
moderately loaded 0.1 ms-per-hop paths loses on the order of 10-25% of
packets — the middle of the paper's measured 0-50% band (Fig. 14).

Single-component flows have zero reordering retransmission by construction;
their only retransmission cost is the per-path-switch window loss applied
by the network.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.simulator.flows import FlowComponent

#: Calibration constant (see module docstring).
BETA = 0.8

#: Retransmission fraction ceiling; beyond ~50% TCP would collapse entirely
#: and the paper's measurements never exceed this.
MAX_RETX_FRACTION = 0.5

#: Queueing-delay cap, as a multiple of a link's propagation delay.
QUEUE_DELAY_CAP_FACTOR = 10.0


def component_delay(
    component: FlowComponent,
    link_delays: Dict[Tuple[str, str], float],
    link_utils: Dict[Tuple[str, str], float],
) -> Tuple[float, float]:
    """(propagation, queueing) one-way delay estimate for a path."""
    prop_total = 0.0
    queue_total = 0.0
    for link in component.links():
        prop = link_delays[link]
        util = min(link_utils.get(link, 0.0), 0.99)
        queue = prop * min(QUEUE_DELAY_CAP_FACTOR, util / (1.0 - util))
        prop_total += prop
        queue_total += queue
    return prop_total, queue_total


def _spread_fraction(
    rates: Sequence[float],
    total_rate: float,
    totals: List[float],
    queues: List[float],
    beta: float,
) -> float:
    """Shared tail of both entry points: pairwise spread -> retx fraction."""
    rtt_base = 2.0 * min(totals)
    if rtt_base <= 0:
        rtt_base = 1e-6
    spread_term = 0.0
    for i in range(len(totals)):
        p_i = rates[i] / total_rate
        if p_i <= 0:
            continue
        for j in range(i + 1, len(totals)):
            p_j = rates[j] / total_rate
            if p_j <= 0:
                continue
            gap = abs(totals[i] - totals[j]) + 0.5 * (queues[i] + queues[j])
            spread_term += p_i * p_j * gap / rtt_base
    return min(MAX_RETX_FRACTION, beta * spread_term)


def reordering_retx_fraction_indexed(
    rates: Sequence[float],
    component_link_ids: Sequence[np.ndarray],
    link_delays: np.ndarray,
    link_utils: np.ndarray,
    beta: float = BETA,
) -> float:
    """Array-backed fast path of :func:`reordering_retx_fraction`.

    Takes the per-component link-id arrays a network caches at
    start/reroute time plus its dense per-link delay and utilization
    arrays; per-path delay estimates become vectorized gathers instead of
    per-link dict lookups.
    """
    if len(component_link_ids) < 2:
        return 0.0
    total_rate = sum(rates)
    if total_rate <= 0:
        return 0.0
    totals: List[float] = []
    queues: List[float] = []
    for ids in component_link_ids:
        prop = link_delays[ids]
        util = np.minimum(link_utils[ids], 0.99)
        queue = prop * np.minimum(QUEUE_DELAY_CAP_FACTOR, util / (1.0 - util))
        prop_total = float(prop.sum())
        queue_total = float(queue.sum())
        totals.append(prop_total + queue_total)
        queues.append(queue_total)
    return _spread_fraction(rates, total_rate, totals, queues, beta)


def reordering_retx_fraction(
    components: Sequence[FlowComponent],
    rates: Sequence[float],
    link_delays: Dict[Tuple[str, str], float],
    link_utils: Dict[Tuple[str, str], float],
    beta: float = BETA,
) -> float:
    """Fraction of goodput retransmitted due to cross-path reordering."""
    if len(components) < 2:
        return 0.0
    total_rate = sum(rates)
    if total_rate <= 0:
        return 0.0
    delays: List[Tuple[float, float]] = [
        component_delay(c, link_delays, link_utils) for c in components
    ]
    totals = [p + q for p, q in delays]
    queues = [q for _, q in delays]
    return _spread_fraction(rates, total_rate, totals, queues, beta)
