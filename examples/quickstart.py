#!/usr/bin/env python
"""Quickstart: DARD vs ECMP on the paper's testbed topology.

Builds the p=4 fat-tree the paper ran on DeterLab (100 Mbps links), drives
the stride traffic pattern (every flow crosses pods — the worst case for
static hashing), and prints the file-transfer-time improvement DARD's
selfish flow scheduling delivers over ECMP.

Run:  python examples/quickstart.py
"""

from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, improvement, run_scenario
from repro.experiments.metrics import summarize_fct, summarize_path_switches


def main() -> None:
    base = dict(
        topology="fattree",
        topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
        pattern="stride",
        arrival_rate_per_host=0.08,  # flows per second per host
        duration_s=120.0,
        flow_size_bytes=128 * MB,    # the paper's elephant: a 128 MB FTP
        seed=42,
    )

    print("running ECMP (static per-flow hashing)...")
    ecmp = run_scenario(ScenarioConfig(scheduler="ecmp", **base))
    print("running DARD (distributed adaptive routing)...")
    dard = run_scenario(ScenarioConfig(scheduler="dard", **base))

    print()
    print(f"  flows completed : {len(ecmp.records)} (identical workload)")
    print(f"  ECMP  FCT       : {summarize_fct(ecmp.fcts)}")
    print(f"  DARD  FCT       : {summarize_fct(dard.fcts)}")
    gain = improvement(ecmp.mean_fct, dard.mean_fct)
    print(f"  improvement     : {gain:.1%}  (paper reports ~10-20% under stride)")
    print(f"  DARD stability  : {summarize_path_switches(dard.path_switches)}")
    print(f"  DARD control    : {dard.control_bytes / 1e3:.0f} KB of probe traffic "
          f"({dard.control_bytes_per_second:.0f} B/s)")


if __name__ == "__main__":
    main()
