"""Tests for the congestion game, Theorem 1, and Theorem 2 dynamics."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import GBPS, MB, MBPS
from repro.gametheory import (
    CongestionGame,
    GameFlow,
    check_theorem1_bound,
    compare_state_vectors,
    game_from_network,
    run_best_response_dynamics,
)
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


def two_link_game(delta=1.0):
    """Two parallel links, capacity 10 each; flows choose either."""
    caps = {"l1": 10.0, "l2": 10.0}
    flows = [GameFlow(i, (("l1",), ("l2",))) for i in range(4)]
    return CongestionGame(caps, flows, delta_bps=delta)


class TestConstruction:
    def test_route_must_use_known_links(self):
        with pytest.raises(ConfigurationError):
            CongestionGame({"l1": 1.0}, [GameFlow(0, (("ghost",),))], 1.0)

    def test_flow_needs_routes(self):
        with pytest.raises(ConfigurationError):
            GameFlow(0, ())

    def test_empty_route_rejected(self):
        with pytest.raises(ConfigurationError):
            GameFlow(0, ((),))

    def test_delta_positive(self):
        with pytest.raises(ConfigurationError):
            two_link_game(delta=0.0)

    def test_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            CongestionGame({"l1": 0.0}, [GameFlow(0, (("l1",),))], 1.0)

    def test_strategy_validation(self):
        game = two_link_game()
        with pytest.raises(ConfigurationError):
            game.validate_strategy((0, 0))
        with pytest.raises(ConfigurationError):
            game.validate_strategy((0, 0, 0, 5))


class TestGameMechanics:
    def test_link_counts(self):
        game = two_link_game()
        counts = game.link_counts((0, 0, 1, 1))
        assert counts == {"l1": 2, "l2": 2}

    def test_bonf_values(self):
        game = two_link_game()
        assert game.link_bonf("l1", 2) == 5.0
        assert game.link_bonf("l1", 0) == float("inf")

    def test_flow_bonf_is_bottleneck(self):
        caps = {"a": 10.0, "b": 100.0}
        game = CongestionGame(caps, [GameFlow(0, (("a", "b"),))], 1.0)
        assert game.flow_bonf((0,), 0) == 10.0

    def test_min_bonf(self):
        game = two_link_game()
        assert game.min_bonf((0, 0, 0, 0)) == 10.0 / 4
        assert game.min_bonf((0, 0, 1, 1)) == 5.0

    def test_state_vector_buckets(self):
        game = two_link_game(delta=1.0)
        # All four flows on l1: BoNF(l1)=2.5 -> bucket 2; l2 unused.
        assert game.state_vector((0, 0, 0, 0)) == (0, 0, 1)
        # Balanced: both links BoNF 5 -> bucket 5.
        assert game.state_vector((0, 0, 1, 1)) == (0, 0, 0, 0, 0, 2)

    def test_compare_state_vectors(self):
        assert compare_state_vectors((0, 1), (1, 0)) < 0
        assert compare_state_vectors((1, 0), (0, 1)) > 0
        assert compare_state_vectors((1, 0), (1,)) == 0  # trailing zeros


class TestBestResponse:
    def test_improving_move_found(self):
        game = two_link_game()
        move = game.best_response((0, 0, 0, 0), 0)
        assert move == 1  # moving to the empty link is a big win

    def test_no_move_at_balance(self):
        game = two_link_game()
        assert game.best_response((0, 0, 1, 1), 0) is None

    def test_delta_gates_small_improvements(self):
        # 3 vs 1 split: mover gains 10/2 - 10/3 = 1.67 < delta 2 -> stay.
        game = two_link_game(delta=2.0)
        assert game.best_response((0, 0, 0, 1), 0) is None
        # With delta 1 the same move is allowed.
        game2 = two_link_game(delta=1.0)
        assert game2.best_response((0, 0, 0, 1), 0) == 1

    def test_is_nash(self):
        game = two_link_game()
        assert game.is_nash((0, 0, 1, 1))
        assert not game.is_nash((0, 0, 0, 0))


class TestTheorem2Dynamics:
    def test_converges_to_nash(self):
        game = two_link_game()
        result = run_best_response_dynamics(game)
        assert result.converged
        assert game.is_nash(result.final)

    def test_every_step_improves_the_mover(self):
        game = two_link_game()
        result = run_best_response_dynamics(game)
        for step in result.steps:
            assert step.bonf_after > step.bonf_before

    def test_every_step_decreases_state_vector(self):
        game = two_link_game()
        result = run_best_response_dynamics(game)
        assert result.steps, "dynamics should have moved at least once"
        for step in result.steps:
            assert step.sv_decreased

    def test_randomized_order_also_converges(self):
        game = two_link_game()
        result = run_best_response_dynamics(game, rng=np.random.default_rng(3))
        assert result.converged
        assert game.is_nash(result.final)

    def test_max_steps_guard(self):
        game = two_link_game()
        with pytest.raises(SimulationError):
            run_best_response_dynamics(game, max_steps=0)

    def test_global_optimum_is_nash(self):
        """Appendix B: the lexicographically smallest strategy is a Nash
        equilibrium too."""
        game = two_link_game()
        optimum = game.global_optimum()
        assert game.is_nash(optimum)
        assert game.min_bonf(optimum) == 5.0

    def test_converged_min_bonf_matches_optimum_on_parallel_links(self):
        game = two_link_game()
        result = run_best_response_dynamics(game)
        assert game.min_bonf(result.final) == game.min_bonf(game.global_optimum())


class TestTheorem1:
    def test_bound_holds_simple(self):
        caps = {("a", "b"): 100.0, ("b", "c"): 50.0}
        demands = [((("a", "b"), ("b", "c")), 1.0), ((("a", "b"),), 1.0)]
        report = check_theorem1_bound(demands, caps)
        assert report.holds

    def test_bound_holds_on_fattree_snapshot(self, fattree4):
        net = Network(fattree4)
        topo = net.topology
        rng = np.random.default_rng(0)
        hosts = sorted(topo.hosts())
        demands = []
        for _ in range(20):
            src, dst = rng.choice(hosts, size=2, replace=False)
            paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
            path = paths[int(rng.integers(len(paths)))]
            full = topo.host_path(src, dst, path)
            demands.append((tuple(zip(full, full[1:])), 1.0))
        report = check_theorem1_bound(demands, net.capacities)
        assert report.holds

    def test_needs_demands(self):
        with pytest.raises(SimulationError):
            check_theorem1_bound([], {})


class TestNetworkBridge:
    def test_snapshot_matches_live_elephants(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        net = Network(topo)
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        flow = net.start_flow(
            "h_0_0_0", "h_1_0_0", 500 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", paths[2]))],
        )
        net.engine.run_until(10.5)
        game, strategy = game_from_network(net, delta_bps=10 * MBPS)
        assert len(game.flows) == 1
        assert game.flows[0].flow_id == flow.flow_id
        assert strategy == (2,)

    def test_non_elephants_excluded(self):
        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        net = Network(topo)
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        net.start_flow(
            "h_0_0_0", "h_1_0_0", 500 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", paths[0]))],
        )
        net.engine.run_until(5.0)  # before promotion
        game, strategy = game_from_network(net, delta_bps=10 * MBPS)
        assert game.flows == [] and strategy == ()

    def test_dard_endpoint_is_nash_of_snapshot(self):
        """After DARD converges, the snapshot game should be at (δ-)Nash."""
        from repro.core import DardScheduler
        from repro.addressing import HierarchicalAddressing, PathCodec
        from repro.scheduling import SchedulerContext

        topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
        net = Network(topo)
        ctx = SchedulerContext(
            network=net,
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(11),
        )
        scheduler = DardScheduler()
        scheduler.attach(ctx)
        pairs = [("h_0_0_0", "h_1_0_0"), ("h_0_0_1", "h_1_0_1"),
                 ("h_0_1_0", "h_2_0_0"), ("h_2_0_1", "h_3_0_0")]
        for src, dst in pairs:
            scheduler.place(src, dst, 2000 * MB)
        net.engine.run_until(90.0)
        game, strategy = game_from_network(net, delta_bps=scheduler.delta_bps)
        assert len(game.flows) == 4
        assert game.is_nash(strategy)
