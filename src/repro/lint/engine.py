"""dardlint core: rule registry, config, suppressions, and the lint driver.

The engine is deliberately small: a :class:`Rule` is a class with a
``code``, a ``description``, a default module ``scope``, and a
``check(ctx)`` generator over :class:`Finding`; the driver parses each
file once, hands the shared :class:`ModuleContext` to every rule whose
scope covers the file's dotted module name, and filters the results
through per-line ``# dardlint: disable=CODE`` suppressions.

Scopes and suppressions exist because dardlint's rules encode *semantic*
contracts (determinism, hot-path discipline, mutation ownership — see
DESIGN.md "Static guarantees"), and semantic contracts have legitimate,
documented exceptions: wall-clock telemetry that never feeds simulation
state, a fuzzer that records crashes as findings. A suppression is the
in-tree record that a human audited the site; the rationale belongs in
the trailing comment next to it.

Configuration lives in ``pyproject.toml`` under ``[tool.dardlint]``:

* ``include`` / ``exclude`` — dotted module prefixes linted / skipped;
* ``[tool.dardlint.scopes]`` — per-rule scope overrides (module-prefix
  lists), replacing the rule's built-in default scope;
* ``[tool.dardlint.exempt]`` — per-rule module-prefix exemptions *added*
  to the rule's built-in exemptions;
* ``disable`` — rule codes switched off entirely.

``tomllib`` is only available on Python 3.11+; on older interpreters the
engine falls back to the built-in defaults, which are kept identical to
the committed pyproject section so behavior does not depend on the
interpreter version.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "all_rules",
    "load_config",
    "module_name_for",
    "register",
    "run_lint",
]

#: Matches a suppression comment anywhere in a physical line. Codes may be
#: followed by free-form rationale text: ``# dardlint: disable=DET002
#: (wall-clock telemetry only)``.
_SUPPRESS_RE = re.compile(r"#\s*dardlint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

_CODE_RE = re.compile(r"^[A-Z]{3,4}[0-9]{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Clang-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class ModuleContext:
    """Everything a rule needs about one parsed source file."""

    def __init__(self, path: Path, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._suppressions = _scan_suppressions(self.lines)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        """Whether a per-line disable comment covers this finding."""
        codes = self._suppressions.get(finding.line)
        if codes is not None and (finding.code in codes or "ALL" in codes):
            return True
        # A comment-only line suppresses the statement directly below it.
        above = finding.line - 1
        if 1 <= above <= len(self.lines):
            text = self.lines[above - 1].lstrip()
            if text.startswith("#"):
                codes = self._suppressions.get(above)
                if codes is not None and (finding.code in codes or "ALL" in codes):
                    return True
        return False


def _scan_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Per-line suppressed rule codes from ``# dardlint: disable=`` comments."""
    out: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
        if codes:
            out[number] = codes
    return out


class Rule:
    """Base class: subclass, set the class attributes, implement ``check``.

    ``scope`` is the tuple of dotted module prefixes the rule applies to
    (``"repro.simulator"`` covers the package and everything under it);
    ``exempt`` lists module prefixes carved out of that scope (e.g. the
    one module allowed to touch global RNG state). Both are overridable
    from pyproject.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    scope: Tuple[str, ...] = ("repro",)
    exempt: Tuple[str, ...] = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module (suppressions filtered later)."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule code {cls.code!r} must look like ABC123")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    if not cls.description:
        raise ValueError(f"rule {cls.code} needs a description")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by code (import-order free)."""
    # Importing the rules package triggers registration of every module in
    # repro/lint/rules/ (see its __init__).
    from repro.lint import rules as _rules  # noqa: F401

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


# -- configuration -------------------------------------------------------------


@dataclass
class LintConfig:
    """Resolved lint configuration (defaults merged with pyproject)."""

    include: Tuple[str, ...] = ("repro",)
    exclude: Tuple[str, ...] = ()
    scopes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    exempt: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    disable: Tuple[str, ...] = ()

    def rule_scope(self, rule: Type[Rule]) -> Tuple[str, ...]:
        """Effective module-prefix scope: pyproject override or the rule's."""
        return self.scopes.get(rule.code, rule.scope)

    def rule_exempt(self, rule: Type[Rule]) -> Tuple[str, ...]:
        """Effective exemptions: the rule's own plus pyproject additions."""
        return rule.exempt + self.exempt.get(rule.code, ())


def _module_matches(module: str, prefixes: Iterable[str]) -> bool:
    for prefix in prefixes:
        if prefix in ("", "*"):
            return True
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


def _load_toml(path: Path) -> Optional[dict]:
    try:
        import tomllib  # Python 3.11+
    except ImportError:  # pragma: no cover - version-dependent
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except (OSError, ValueError):
        return None


def _find_pyproject(start: Path) -> Optional[Path]:
    probe = start if start.is_dir() else start.parent
    for directory in (probe, *probe.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Build the configuration, honoring ``[tool.dardlint]`` when readable.

    ``start`` anchors the upward pyproject search (defaults to the current
    directory). Missing file, missing section, or an interpreter without a
    TOML parser all fall back to the built-in defaults.
    """
    config = LintConfig()
    pyproject = _find_pyproject(Path(start) if start is not None else Path.cwd())
    if pyproject is None:
        return config
    document = _load_toml(pyproject)
    if not document:
        return config
    section = document.get("tool", {}).get("dardlint")
    if not isinstance(section, dict):
        return config
    if "include" in section:
        config.include = tuple(section["include"])
    if "exclude" in section:
        config.exclude = tuple(section["exclude"])
    if "disable" in section:
        config.disable = tuple(str(c).upper() for c in section["disable"])
    for key, out in (("scopes", config.scopes), ("exempt", config.exempt)):
        table = section.get(key)
        if isinstance(table, dict):
            for code, prefixes in sorted(table.items()):
                out[str(code).upper()] = tuple(prefixes)
    return config


# -- driver --------------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, by walking up through ``__init__.py``.

    A file outside any package lints under its bare stem — fixture trees
    in tests get real ``repro.*`` names by shipping ``__init__.py``
    markers, without being importable from the repository root.
    """
    path = path.resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else path.stem


def _iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def run_lint(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns ``(sorted findings, files scanned)``.

    Unreadable or syntactically invalid files surface as ``DRD000``
    findings rather than crashing the run — a lint gate must never be
    dodged by an unparseable file.
    """
    if config is None:
        config = load_config(Path(paths[0]) if paths else None)
    rule_classes = [
        cls for cls in (all_rules() if rules is None else list(rules))
        if cls.code not in config.disable
    ]
    findings: List[Finding] = []
    files_scanned = 0
    for file_path in _iter_python_files(paths):
        module = module_name_for(file_path)
        if not _module_matches(module, config.include):
            continue
        if _module_matches(module, config.exclude):
            continue
        files_scanned += 1
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, SyntaxError, ValueError) as error:
            findings.append(
                Finding(str(file_path), 1, 1, "DRD000", f"could not parse: {error}")
            )
            continue
        ctx = ModuleContext(file_path, module, source, tree)
        for cls in rule_classes:
            if not _module_matches(module, config.rule_scope(cls)):
                continue
            if _module_matches(module, config.rule_exempt(cls)):
                continue
            for finding in cls().check(ctx):
                if not ctx.suppressed(finding):
                    findings.append(finding)
    findings.sort()
    return findings, files_scanned
