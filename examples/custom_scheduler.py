#!/usr/bin/env python
"""Extending the library: write and evaluate your own scheduler.

The whole evaluation stack — workloads, metrics, paired comparison,
failure injection — works with any :class:`repro.scheduling.Scheduler`
subclass. This example implements **Least-Loaded Placement**: each new
flow is placed on the equal-cost path whose bottleneck currently carries
the fewest flows (a greedy, placement-only policy: no rerouting, no
probes, no control traffic), then races it against ECMP and DARD.

The comparison is instructive in both directions: the greedy placer can
even beat DARD at this scale because the simulator hands it *instant,
free* global link state at every admission — exactly the information
that is expensive to get in a real fabric (it is what Hedera's reports
and DARD's probes approximate, with latency). DARD only reacts after the
10 s elephant detection delay, yet needs nothing but its own probes.
Deploy cost, not simulation FCT, is where these policies really differ —
the kind of trade-off this harness lets you quantify before building
anything.

Run:  python examples/custom_scheduler.py
"""

from typing import List

import numpy as np

from repro.addressing import HierarchicalAddressing, PathCodec
from repro.common.units import MB, MBPS
from repro.experiments.report import render_table
from repro.scheduling import Scheduler, SchedulerContext
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree
from repro.workloads import ArrivalProcess, StridePattern, WorkloadSpec


class LeastLoadedScheduler(Scheduler):
    """Greedy placement on the path with the fewest flows at admission.

    A real implementation would query switch counters like DARD's
    monitors do; inside the simulator the network's link state *is* that
    counter interface.
    """

    name = "least-loaded"

    def choose_components(self, src: str, dst: str) -> List[FlowComponent]:
        network = self.ctx.network
        best_path = None
        best_key = None
        for path in self.alive_paths(src, dst):
            full = self.ctx.topology.host_path(src, dst, path)
            loads = [
                network.link_state(u, v).total_flows
                for u, v in zip(full, full[1:])
            ]
            key = (max(loads), sum(loads))  # bottleneck first, ties by total
            if best_key is None or key < best_key:
                best_key = key
                best_path = path
        return [self.component_for(src, dst, best_path)]


def run_one(scheduler_cls_or_name, seed=21):
    from repro.experiments.runner import make_scheduler

    topo = FatTree(p=4, link_bandwidth_bps=100 * MBPS)
    network = Network(topo)
    if isinstance(scheduler_cls_or_name, str):
        scheduler = make_scheduler(scheduler_cls_or_name)
    else:
        scheduler = scheduler_cls_or_name()
    scheduler.attach(
        SchedulerContext(
            network=network,
            codec=PathCodec(HierarchicalAddressing(topo)),
            rng=np.random.default_rng(0),
        )
    )
    process = ArrivalProcess(
        engine=network.engine,
        pattern=StridePattern(topo),
        spec=WorkloadSpec(arrival_rate_per_host=0.08, duration_s=90.0,
                          flow_size_bytes=128 * MB),
        sink=scheduler.place,
        rng=np.random.default_rng(seed),
    )
    process.start()
    network.engine.run_until(90.0)
    while network.flows and network.engine.now < 600.0:
        network.engine.run_until(network.engine.now + 5.0)
    fcts = [r.fct for r in network.records]
    return sum(fcts) / len(fcts), len(fcts)


def main() -> None:
    rows = []
    for contender in ["ecmp", LeastLoadedScheduler, "dard"]:
        name = contender if isinstance(contender, str) else contender.name
        mean_fct, flows = run_one(contender)
        rows.append({"scheduler": name, "flows": flows, "mean_fct_s": mean_fct})
        print(f"  {name:13s} mean FCT {mean_fct:6.2f}s")
    print()
    print(render_table(rows))
    ecmp = rows[0]["mean_fct_s"]
    print("\nvs ECMP: " + ", ".join(
        f"{row['scheduler']} {1 - row['mean_fct_s'] / ecmp:+.1%}" for row in rows[1:]
    ))


if __name__ == "__main__":
    main()
