"""IP-in-IP encapsulation: the host data path (paper §2.3, §3.1).

Applications open connections between location-independent **IDs**; they
never see locators. The encapsulation module on the source host resolves
the destination ID through the DNS-like :class:`IdMapper`, wraps each
packet with the (source locator, destination locator) pair encoding the
flow's *current* path, and the destination host unwraps it before handing
it to upper layers. Shifting a flow to a different path is a pure
re-encapsulation — the inner packet, and hence the application, never
notices (the paper uses Linux IP-in-IP tunneling for exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import AddressingError, RoutingError
from repro.topology.multirooted import SwitchPath
from repro.addressing.codec import PathCodec
from repro.addressing.idmap import IdMapper


@dataclass(frozen=True)
class Packet:
    """An application-level packet, addressed by IDs."""

    src_id: int
    dst_id: int
    payload: bytes = b""


@dataclass(frozen=True)
class EncapsulatedPacket:
    """A packet wrapped with the locator pair that pins its path."""

    outer_src: int
    outer_dst: int
    inner: Packet


class EncapsulationModule:
    """Per-host encapsulation/decapsulation, path table included.

    One instance runs on every host. It keeps the host's current
    path choice per destination (what the DARD daemon updates when it
    shifts a flow) and translates between the application's ID world and
    the fabric's locator world.
    """

    def __init__(self, host: str, codec: PathCodec, id_mapper: IdMapper) -> None:
        self.host = host
        self.codec = codec
        self.id_mapper = id_mapper
        self.my_id = id_mapper.id_of(host)
        #: destination host -> chosen switch path (set by the scheduler).
        self._path_choice: Dict[str, SwitchPath] = {}

    # -- control plane: the DARD daemon sets paths here --------------------------

    def set_path(self, dst_host: str, path: SwitchPath) -> Tuple[int, int]:
        """Pin the path used toward ``dst_host``; returns the locator pair.

        Raises :class:`AddressingError` if the path cannot be encoded from
        this host (wrong ToRs, unknown hosts).
        """
        pair = self.codec.encode(self.host, dst_host, path)
        self._path_choice[dst_host] = tuple(path)
        return pair

    def current_path(self, dst_host: str) -> SwitchPath:
        """The switch path currently pinned toward ``dst_host``."""
        try:
            return self._path_choice[dst_host]
        except KeyError:
            raise AddressingError(
                f"no path pinned from {self.host!r} to {dst_host!r}"
            ) from None

    # -- data plane ----------------------------------------------------------------

    def encapsulate(self, packet: Packet) -> EncapsulatedPacket:
        """Wrap an outgoing packet with the current locator pair."""
        if packet.src_id != self.my_id:
            raise AddressingError(
                f"host {self.host!r} cannot send packets with source ID {packet.src_id}"
            )
        dst_host = self.id_mapper.host_of(packet.dst_id)
        path = self.current_path(dst_host)
        outer_src, outer_dst = self.codec.encode(self.host, dst_host, path)
        return EncapsulatedPacket(outer_src=outer_src, outer_dst=outer_dst, inner=packet)

    def decapsulate(self, wrapped: EncapsulatedPacket) -> Packet:
        """Unwrap an arriving packet, checking it was really for us."""
        owner, _ = self.codec.addressing.owner_of(wrapped.outer_dst)
        if owner != self.host:
            raise RoutingError(
                f"packet for {owner!r} arrived at {self.host!r}: misdelivery"
            )
        if self.id_mapper.host_of(wrapped.inner.dst_id) != self.host:
            raise RoutingError(
                f"inner destination ID {wrapped.inner.dst_id} is not {self.host!r}"
            )
        return wrapped.inner
