"""Reproducible parameter sweeps over scenario configurations.

A sweep takes a base :class:`ScenarioConfig` and a grid of overrides and
runs the cartesian product, one scenario per combination. Override keys
are config field names; dotted keys reach into the nested parameter dicts
(e.g. ``"topology_params.p"``).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario


def _apply_override(config: ScenarioConfig, key: str, value) -> ScenarioConfig:
    if "." in key:
        field_name, sub_key = key.split(".", 1)
        if "." in sub_key:
            raise ConfigurationError(f"override {key!r} nests too deep")
        current = getattr(config, field_name, None)
        if not isinstance(current, dict):
            raise ConfigurationError(f"{field_name!r} is not a parameter dict")
        updated = dict(current)
        updated[sub_key] = value
        return dataclasses.replace(config, **{field_name: updated})
    if not hasattr(config, key):
        raise ConfigurationError(f"unknown config field {key!r}")
    return dataclasses.replace(config, **{key: value})


def sweep(
    base: ScenarioConfig,
    grid: Dict[str, Sequence],
) -> List[Tuple[Dict[str, object], ScenarioResult]]:
    """Run every combination of the grid; returns (overrides, result) pairs.

    Combinations run in deterministic order (grid keys sorted, values in
    given order), each from the base seed — results are fully reproducible.
    """
    if not grid:
        return [({}, run_scenario(base))]
    keys = sorted(grid)
    results = []
    for values in itertools.product(*(grid[k] for k in keys)):
        overrides = dict(zip(keys, values))
        config = base
        for key, value in overrides.items():
            config = _apply_override(config, key, value)
        results.append((overrides, run_scenario(config)))
    return results


def sweep_rows(
    base: ScenarioConfig,
    grid: Dict[str, Sequence],
    extra_columns: Iterable[str] = (),
) -> List[Dict[str, object]]:
    """Sweep and flatten into report-ready rows (mean FCT and friends)."""
    rows = []
    for overrides, result in sweep(base, grid):
        row: Dict[str, object] = dict(overrides)
        row["mean_fct_s"] = result.mean_fct
        row["flows"] = len(result.records)
        row["control_bytes"] = result.control_bytes
        row["peak_elephants"] = result.peak_elephants
        for column in extra_columns:
            row[column] = getattr(result, column)
        rows.append(row)
    return rows
