"""Paired per-flow comparison of two scenario results.

Because the runner guarantees byte-identical workloads across schedulers
(same seed ⇒ same flows), two results can be compared *flow by flow*
rather than only by aggregate means — the statistically sound way to ask
"which scheduler is better", robust to heavy-tailed FCT distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.experiments.runner import ScenarioResult


@dataclass(frozen=True)
class PairedComparison:
    """Flow-by-flow comparison of scheduler A vs scheduler B."""

    flows: int
    #: per-flow FCT(A) - FCT(B); positive entries favour B.
    fct_deltas_s: Tuple[float, ...]
    mean_fct_a: float
    mean_fct_b: float

    @property
    def mean_delta_s(self) -> float:
        return float(np.mean(self.fct_deltas_s))

    @property
    def b_win_fraction(self) -> float:
        """Fraction of flows B finished strictly faster."""
        arr = np.asarray(self.fct_deltas_s)
        return float((arr > 0).mean())

    @property
    def paired_improvement(self) -> float:
        """Mean per-flow relative improvement of B over A."""
        return self.mean_delta_s / self.mean_fct_a if self.mean_fct_a else 0.0

    def summary(self) -> str:
        """One-line human-readable comparison."""
        return (
            f"n={self.flows} mean FCT {self.mean_fct_a:.2f}s vs {self.mean_fct_b:.2f}s; "
            f"B faster on {self.b_win_fraction:.0%} of flows; "
            f"paired improvement {self.paired_improvement:.1%}"
        )


def paired_comparison(a: ScenarioResult, b: ScenarioResult) -> PairedComparison:
    """Pair up the two runs' flows and compare FCTs.

    Flows are matched on (start time, src, dst, size); both runs must
    contain exactly the same workload — which they do when produced by
    :func:`repro.experiments.runner.run_scenario` with the same seed and
    workload parameters.
    """

    def keyed(result: ScenarioResult) -> Dict[tuple, List[float]]:
        table: Dict[tuple, List[float]] = {}
        for record in result.records:
            key = (round(record.start_time, 9), record.src, record.dst, record.size_bytes)
            table.setdefault(key, []).append(record.fct)
        for fcts in table.values():
            fcts.sort()
        return table

    table_a = keyed(a)
    table_b = keyed(b)
    if set(table_a) != set(table_b):
        raise ConfigurationError(
            "results carry different workloads; run both scenarios from the "
            "same seed and workload parameters"
        )
    deltas: List[float] = []
    for key, fcts_a in table_a.items():
        fcts_b = table_b[key]
        if len(fcts_a) != len(fcts_b):
            raise ConfigurationError(f"duplicate-flow mismatch for {key}")
        deltas.extend(x - y for x, y in zip(fcts_a, fcts_b))
    return PairedComparison(
        flows=len(deltas),
        fct_deltas_s=tuple(deltas),
        mean_fct_a=a.mean_fct,
        mean_fct_b=b.mean_fct,
    )
