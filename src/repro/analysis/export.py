"""Export results for external tooling (pandas, gnuplot, spreadsheets)."""

from __future__ import annotations

import csv
import dataclasses
import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.simulator.flows import FlowRecord

PathLike = Union[str, Path]


def records_to_csv(records: Sequence[FlowRecord], path: PathLike) -> int:
    """Write per-flow records to CSV; returns the number of rows written."""
    fieldnames = [
        "flow_id", "src", "dst", "size_bytes", "start_time", "end_time",
        "fct", "path_switches", "path_revisits", "retransmitted_bytes",
        "retx_rate", "was_elephant",
    ]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            row = dataclasses.asdict(record)
            row["fct"] = record.fct
            row["retx_rate"] = record.retx_rate
            writer.writerow(row)
    return len(records)


def rows_to_csv(rows: List[Dict[str, object]], path: PathLike) -> int:
    """Write report-style dict rows (e.g. an ExperimentOutput's) to CSV."""
    if not rows:
        Path(path).write_text("")
        return 0
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def _jsonable(value):
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return None
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def results_to_json(payload, path: PathLike) -> None:
    """Serialize an ExperimentOutput / ScenarioResult / plain dict to JSON.

    Dataclasses are expanded; NaN/inf become null so the output stays
    strictly standard JSON.
    """
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        payload = dataclasses.asdict(payload)
    with open(path, "w") as handle:
        json.dump(_jsonable(payload), handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
