"""API001 good fixture: the write lives in an allowed refill owner."""


class FakeNetwork:
    """Minimal shape for the rule: only the attribute name matters."""

    def _refill_dirty(self, zero_ids):
        """One of the two audited writers of the persistent load array."""
        self._load_array[zero_ids] = 0.0
