#!/usr/bin/env python
"""The paper's core evaluation in miniature: four schedulers, three traffic
patterns, one fat-tree (paper §4.3, Table 4).

Prints average file transfer time for ECMP, periodic VLB, Hedera-style
centralized scheduling, and DARD under random / staggered / stride traffic,
plus each scheduler's control-plane cost. Expected shape (paper §4):

* stride: DARD ~ Hedera, both well ahead of ECMP/pVLB;
* staggered: bottlenecks sit at host links; DARD >= Hedera (per-destination
  centralized assignment cannot separate intra-pod flows);
* random: in between.

Run:  python examples/datacenter_comparison.py  (takes a minute or two)
"""

from repro.common.units import MB, MBPS
from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.report import render_table

SCHEDULERS = ("ecmp", "vlb", "hedera", "dard")
PATTERNS = ("random", "staggered", "stride")


def main() -> None:
    rows = []
    for pattern in PATTERNS:
        row = {"pattern": pattern}
        for scheduler in SCHEDULERS:
            result = run_scenario(
                ScenarioConfig(
                    topology="fattree",
                    topology_params={"p": 4, "link_bandwidth_bps": 100 * MBPS},
                    pattern=pattern,
                    scheduler=scheduler,
                    arrival_rate_per_host=0.08,
                    duration_s=90.0,
                    flow_size_bytes=128 * MB,
                    seed=11,
                )
            )
            row[f"{scheduler}_fct_s"] = result.mean_fct
            print(f"  {pattern:9s} {scheduler:7s} mean FCT {result.mean_fct:6.2f}s "
                  f"control {result.control_bytes / 1e3:7.1f} KB")
        rows.append(row)
    print("\naverage file transfer time (s) — the paper's Table 4 shape:\n")
    print(render_table(rows))


if __name__ == "__main__":
    main()
