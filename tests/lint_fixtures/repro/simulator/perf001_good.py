"""PERF001 good fixture: dense integer ids inside the hot function."""


class FakeNetwork:
    """Minimal shape for the rule: only the method name matters."""

    def _refill_full(self):
        """One vectorized store over interned link ids."""
        self.loads[self.link_ids] = 0.0
