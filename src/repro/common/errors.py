"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause while still
being able to distinguish subsystem failures.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A topology was constructed with invalid parameters or is malformed."""


class AddressingError(ReproError):
    """Prefix allocation or address/path encoding failed."""


class RoutingError(ReproError):
    """A packet could not be forwarded (no matching table entry, loop, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid values."""
