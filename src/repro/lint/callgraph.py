"""Call graph + taint/escape ownership analysis (dardlint's program layer).

Where the per-module rules pattern-match one AST at a time, this module
builds a *program* view over every linted file: a name-based call graph,
a per-function write inventory over the registered shared state
(:mod:`repro.lint.ownership`), a local taint pass (aliases of registered
attributes), and an escape pass (registered arrays passed to callees
that mutate their parameters). The parallelism rule family
(``rules/parallelism.py``) consumes the resulting
:class:`OwnershipAnalysis`; ``dard lint --parallel-safety-report``
serializes its component-purity verdicts.

Resolution is deliberately conservative-but-simple, matching the
codebase's idioms (extending the spirit of ``scopes.py``):

* ``name(...)`` resolves to a module-level function — same module first,
  then any module in the program (imported helpers);
* ``self.name(...)`` resolves to a method of the enclosing class, then
  any same-named method in the program (duck-typed receivers);
* ``obj.name(...)`` resolves to every same-named method or module-level
  function in the program;
* calls through variables, class constructors, and stdlib/numpy names
  resolve to nothing (their effects on registered state are covered by
  the direct write forms: subscript stores, mutating methods,
  ``ufunc.at``, ``out=`` keywords, and tainted aliases);
* nested ``def``/``lambda`` bodies are attributed to their enclosing
  function (a closure defined inside component-scoped code is analyzed
  as if it ran there — an over-approximation in the safe direction).

Traversal from the :data:`~repro.lint.ownership.COMPONENT_SCOPED` roots
stops at :data:`~repro.lint.ownership.BOUNDARIES`; everything else
reachable is the *component closure* that RACE001/RACE003 police.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import Finding, ModuleContext, _module_matches
from repro.lint.ownership import (
    BOUNDARIES,
    COMPONENT_SCOPED,
    MERGE_POINTS,
    OWNERSHIP,
    SHARED_MUTATOR_METHODS,
    SharedState,
    state_by_attr,
)

__all__ = [
    "CallSite",
    "FunctionInfo",
    "OwnershipAnalysis",
    "WriteSite",
    "parallel_safety_document",
]

#: In-place mutating method names on containers and ndarrays. A call
#: ``<registered>.m(...)`` with ``m`` here counts as a write.
_MUTATING_METHODS = frozenset(
    {
        # ndarray
        "fill", "put", "sort", "resize", "partition", "itemset",
        # list
        "append", "extend", "insert", "remove", "clear", "pop", "reverse",
        # set / dict
        "add", "discard", "update", "setdefault", "popitem",
    }
)

#: Value expressions that *create* a container/array — the OWN001
#: trigger: rebinding a registered attribute to a freshly created
#: structure outside its owner module.
_CREATION_NODES = (
    ast.Call,
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@dataclass
class WriteSite:
    """One mutation of a registered shared-state attribute."""

    attr: str
    node: ast.AST
    how: str
    creates: bool = False


@dataclass
class CallSite:
    """One call expression, classified by receiver shape.

    ``receiver`` is the attribute name the call's receiver was read from
    (``self._components.attach(...)`` → ``"_components"``, including
    through a local alias ``comps = self._components``); it narrows
    name-based method resolution to the classes actually constructed
    into that attribute.
    """

    kind: str  # "bare" | "self" | "method"
    name: str
    node: ast.Call
    receiver: Optional[str] = None


@dataclass
class FunctionInfo:
    """Per-function facts: writes, reads of dirty state, calls, escapes.

    ``name == "<module>"`` is the pseudo-function holding a module's
    top-level statements (class bodies included); it never participates
    in the call graph but is checked by the module-granularity rules.
    """

    module: str
    path: str
    cls: Optional[str]
    name: str
    writes: List[WriteSite] = field(default_factory=list)
    dirty_reads: List[Tuple[str, ast.AST]] = field(default_factory=list)
    mutator_calls: List[CallSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    params: Tuple[str, ...] = ()
    mutated_params: Set[int] = field(default_factory=set)
    aliases: Dict[str, str] = field(default_factory=dict)
    receiver_aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        if self.cls is not None:
            return f"{self.module}.{self.cls}.{self.name}"
        return f"{self.module}.{self.name}"

    @property
    def key(self) -> Tuple[str, Optional[str], str]:
        return (self.module, self.cls, self.name)


def _finding(fn: FunctionInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=fn.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


def _walk_skipping_functions(node: ast.AST):
    """Walk a tree, not descending into function bodies (module scan)."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            stack.append(child)


class _FunctionScanner:
    """Extracts one function's write/read/call facts in two walks."""

    def __init__(self, registered: Dict[str, SharedState]) -> None:
        self._registered = registered
        self._dirty_attrs = {
            attr for attr, state in registered.items() if state.category == "dirty"
        }

    def scan(
        self, info: FunctionInfo, nodes: Iterable[ast.AST]
    ) -> None:
        nodes = list(nodes)
        params = {name: i for i, name in enumerate(info.params)}
        # Pass 1: local aliases (flow-insensitive). Registered-attribute
        # aliases feed the write taint; any-attribute aliases feed
        # receiver-based method resolution.
        for node in nodes:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
            ):
                info.receiver_aliases[node.targets[0].id] = node.value.attr
                if node.value.attr in self._registered:
                    info.aliases[node.targets[0].id] = node.value.attr
        # Pass 2: writes, dirty reads, calls, parameter mutations.
        for node in nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._scan_assign(info, node, params)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._record_target(info, node, target, params, "delete")
            elif isinstance(node, ast.Call):
                self._scan_call(info, node, params)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if node.attr in self._dirty_attrs:
                    info.dirty_reads.append((node.attr, node))

    # -- assignment / deletion targets ------------------------------------

    def _scan_assign(self, info: FunctionInfo, node: ast.AST, params: Dict[str, int]) -> None:
        if isinstance(node, ast.Assign):
            targets: List[ast.AST] = list(node.targets)
            how = "rebind"
            value: Optional[ast.AST] = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            how = "rebind"
            value = node.value
        else:  # AugAssign
            targets = [node.target]
            how = "augment"
            value = None
        creates = isinstance(value, _CREATION_NODES)
        for target in targets:
            self._record_target(info, node, target, params, how, creates)

    def _record_target(
        self,
        info: FunctionInfo,
        stmt: ast.AST,
        target: ast.AST,
        params: Dict[str, int],
        how: str,
        creates: bool = False,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(info, stmt, element, params, how, creates)
            return
        if isinstance(target, ast.Starred):
            self._record_target(info, stmt, target.value, params, how, creates)
            return
        if isinstance(target, ast.Attribute):
            if how != "delete" and target.attr in self._registered:
                info.writes.append(
                    WriteSite(target.attr, stmt, how, creates and how == "rebind")
                )
            return
        if isinstance(target, ast.Subscript):
            attr = self._base_attr(target.value, info)
            if attr is not None:
                info.writes.append(WriteSite(attr, stmt, "store"))
            elif isinstance(target.value, ast.Name) and target.value.id in params:
                info.mutated_params.add(params[target.value.id])

    # -- calls -------------------------------------------------------------

    def _scan_call(self, info: FunctionInfo, node: ast.Call, params: Dict[str, int]) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            info.calls.append(CallSite("bare", func.id, node))
        elif isinstance(func, ast.Attribute):
            method = func.attr
            base = func.value
            if method == "at" and isinstance(base, ast.Attribute) and node.args:
                # np.<ufunc>.at(target, ...) — unbuffered in-place scatter.
                self._record_arg_write(info, node, node.args[0], params, "ufunc.at")
            elif method in _MUTATING_METHODS:
                attr = self._base_attr(base, info)
                if attr is not None:
                    info.writes.append(WriteSite(attr, node, f"method:{method}"))
                elif isinstance(base, ast.Name) and base.id in params:
                    info.mutated_params.add(params[base.id])
            if isinstance(base, ast.Name) and base.id == "self":
                site = CallSite("self", method, node)
            else:
                receiver: Optional[str] = None
                if isinstance(base, ast.Attribute):
                    receiver = base.attr
                elif isinstance(base, ast.Name):
                    receiver = info.receiver_aliases.get(base.id)
                site = CallSite("method", method, node, receiver)
            if method in SHARED_MUTATOR_METHODS:
                info.mutator_calls.append(site)
            info.calls.append(site)
        for keyword in node.keywords:
            if keyword.arg == "out":
                self._record_arg_write(info, node, keyword.value, params, "out=")

    def _record_arg_write(
        self,
        info: FunctionInfo,
        node: ast.Call,
        arg: ast.AST,
        params: Dict[str, int],
        how: str,
    ) -> None:
        attr = self._base_attr(arg, info)
        if attr is not None:
            info.writes.append(WriteSite(attr, node, how))
        elif isinstance(arg, ast.Name) and arg.id in params:
            info.mutated_params.add(params[arg.id])

    def _base_attr(self, node: ast.AST, info: FunctionInfo) -> Optional[str]:
        """Registered attribute named by an expression (direct or alias)."""
        if isinstance(node, ast.Attribute) and node.attr in self._registered:
            return node.attr
        if isinstance(node, ast.Name):
            return info.aliases.get(node.id)
        return None


class OwnershipAnalysis:
    """The whole-program ownership & race analysis over parsed modules.

    Built once per lint run (cached on the driver's program context) and
    shared by every parallelism rule; single-module fallbacks construct
    it over one context (unit tests, direct ``check()`` calls).
    """

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self._registered = state_by_attr()
        self.functions: List[FunctionInfo] = []
        self._collect(contexts)
        self._index()
        self._propagate_escapes()
        self.closure: Dict[Tuple[str, Optional[str], str], Tuple[str, str]] = {}
        self._compute_closure()
        #: code -> path -> findings (pre-suppression; the rules yield them
        #: per module and the engine applies suppressions as usual).
        self.findings: Dict[str, Dict[str, List[Finding]]] = {
            code: {} for code in ("RACE001", "RACE002", "RACE003", "OWN001")
        }
        self._violation_counts: Dict[Tuple[str, Optional[str], str], int] = {}
        self._check()

    # -- construction ------------------------------------------------------

    def _collect(self, contexts: Sequence[ModuleContext]) -> None:
        scanner = _FunctionScanner(self._registered)
        #: attribute name -> class names constructed into it anywhere in
        #: the program (``self._components = FlowLinkComponents(...)``);
        #: used to narrow name-based method resolution.
        self._attr_classes: Dict[str, Set[str]] = {}
        for ctx in contexts:
            self._bind_attr_classes(ctx.tree)
            path = str(ctx.path)
            module_info = FunctionInfo(ctx.module, path, None, "<module>")
            scanner.scan(module_info, _walk_skipping_functions(ctx.tree))
            self.functions.append(module_info)
            for node in ast.iter_child_nodes(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(scanner, ctx, None, node)
                elif isinstance(node, ast.ClassDef):
                    for item in ast.iter_child_nodes(node):
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            self._add_function(scanner, ctx, node.name, item)

    def _add_function(
        self,
        scanner: _FunctionScanner,
        ctx: ModuleContext,
        cls: Optional[str],
        node: ast.AST,
    ) -> None:
        args = node.args
        params = tuple(
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )
        info = FunctionInfo(ctx.module, str(ctx.path), cls, node.name, params=params)
        scanner.scan(info, ast.walk(node))
        self.functions.append(info)

    def _index(self) -> None:
        self._by_key: Dict[Tuple[str, Optional[str], str], FunctionInfo] = {}
        self._module_funcs: Dict[Tuple[str, str], FunctionInfo] = {}
        self._funcs_by_name: Dict[str, List[FunctionInfo]] = {}
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}
        for fn in self.functions:
            if fn.name == "<module>":
                continue
            self._by_key.setdefault(fn.key, fn)
            if fn.cls is None:
                self._module_funcs.setdefault((fn.module, fn.name), fn)
                self._funcs_by_name.setdefault(fn.name, []).append(fn)
            else:
                self._methods_by_name.setdefault(fn.name, []).append(fn)

    #: typing wrappers to ignore when mining class names from annotations.
    _TYPING_NAMES = frozenset(
        {
            "Optional", "Union", "List", "Dict", "Tuple", "Set", "FrozenSet",
            "Sequence", "Iterable", "Iterator", "Mapping", "MutableMapping",
            "Callable", "Any", "Type", "Deque", "Literal", "ClassVar", "Final",
            "None",
        }
    )

    def _bind_attr_classes(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value, annotation = node.targets[0], node.value, None
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            else:
                continue
            if not isinstance(target, ast.Attribute):
                continue
            names: Set[str] = set()
            # Constructor calls anywhere in the value (covers conditional
            # expressions like ``Cls(n) if flag else None``).
            if value is not None:
                for call in ast.walk(value):
                    if not isinstance(call, ast.Call):
                        continue
                    func = call.func
                    if isinstance(func, ast.Name):
                        names.add(func.id)
                    elif isinstance(func, ast.Attribute):
                        names.add(func.attr)
            if annotation is not None:
                for ref in ast.walk(annotation):
                    if isinstance(ref, ast.Name):
                        names.add(ref.id)
                    elif isinstance(ref, ast.Attribute):
                        names.add(ref.attr)
            for name in sorted(names):
                if name[:1].isupper() and name not in self._TYPING_NAMES:
                    self._attr_classes.setdefault(target.attr, set()).add(name)

    def resolve(self, fn: FunctionInfo, call: CallSite) -> List[FunctionInfo]:
        """Possible callees of one call site (empty when external)."""
        if call.kind == "bare":
            local = self._module_funcs.get((fn.module, call.name))
            if local is not None:
                return [local]
            return list(self._funcs_by_name.get(call.name, ()))
        if call.kind == "self":
            own = self._by_key.get((fn.module, fn.cls, call.name))
            if own is not None:
                return [own]
            return list(self._methods_by_name.get(call.name, ()))
        methods = list(self._methods_by_name.get(call.name, ()))
        if call.receiver is not None:
            classes = self._attr_classes.get(call.receiver)
            if classes:
                narrowed = [m for m in methods if m.cls in classes]
                # Empty narrowing (inherited or external method) falls
                # back to every candidate — over-approximate, not blind.
                if narrowed:
                    return narrowed
        return methods + list(self._funcs_by_name.get(call.name, ()))

    def _propagate_escapes(self) -> None:
        """Attribute callee parameter mutations back to caller arguments."""
        for fn in self.functions:
            if fn.name == "<module>":
                continue
            for call in fn.calls:
                for callee in self.resolve(fn, call):
                    if not callee.mutated_params:
                        continue
                    # Method calls bind the receiver to param 0 (self).
                    offset = 1 if call.kind in ("self", "method") and callee.cls else 0
                    for index in sorted(callee.mutated_params):
                        arg_index = index - offset
                        if arg_index < 0 or arg_index >= len(call.node.args):
                            continue
                        arg = call.node.args[arg_index]
                        attr: Optional[str] = None
                        if (
                            isinstance(arg, ast.Attribute)
                            and arg.attr in self._registered
                        ):
                            attr = arg.attr
                        elif isinstance(arg, ast.Name):
                            attr = fn.aliases.get(arg.id)
                        if attr is not None:
                            fn.writes.append(
                                WriteSite(attr, call.node, f"escape:{callee.name}")
                            )

    def _compute_closure(self) -> None:
        queue: List[FunctionInfo] = []
        for fn in self.functions:
            if fn.name in COMPONENT_SCOPED:
                self.closure[fn.key] = (fn.name, "component-scoped root")
                queue.append(fn)
        while queue:
            fn = queue.pop()
            root, _ = self.closure[fn.key]
            for call in fn.calls:
                for callee in self.resolve(fn, call):
                    if callee.name in BOUNDARIES:
                        continue
                    if callee.key not in self.closure:
                        self.closure[callee.key] = (root, f"via {fn.qualname}")
                        queue.append(callee)

    # -- rule checks -------------------------------------------------------

    def _emit(self, fn: FunctionInfo, node: ast.AST, code: str, message: str) -> None:
        per_path = self.findings[code].setdefault(fn.path, [])
        per_path.append(_finding(fn, node, code, message))
        if fn.key in self.closure:
            self._violation_counts[fn.key] = self._violation_counts.get(fn.key, 0) + 1

    def _check(self) -> None:
        for fn in self.functions:
            in_closure = fn.key in self.closure
            if in_closure:
                root, how = self.closure[fn.key]
                origin = (
                    f"component-scoped via {root}"
                    if how == "component-scoped root"
                    else f"reached from {root} {how}"
                )
                for write in fn.writes:
                    state = self._registered[write.attr]
                    if fn.name not in state.writers:
                        self._emit(
                            fn,
                            write.node,
                            "RACE001",
                            f"{fn.name} writes {write.attr} ({write.how}, owned "
                            f"by {state.owner_class}) inside a component round "
                            f"({origin}); declared writers: "
                            f"{', '.join(sorted(state.writers))}",
                        )
                if fn.name not in MERGE_POINTS:
                    for call in fn.mutator_calls:
                        self._emit(
                            fn,
                            call.node,
                            "RACE003",
                            f"{fn.name} calls shared-structure mutator "
                            f"{call.name}() inside a component round ({origin}); "
                            "per-component code must not touch global "
                            "registry/engine/partition structures",
                        )
            if fn.name not in MERGE_POINTS:
                for attr, node in fn.dirty_reads:
                    state = self._registered[attr]
                    if _module_matches(fn.module, state.owner_modules):
                        continue
                    self._emit(
                        fn,
                        node,
                        "RACE002",
                        f"read of dirty cross-component state {attr} (owned by "
                        f"{state.owner_class}) outside its owner and the "
                        f"declared merge points {', '.join(MERGE_POINTS)}",
                    )
            for write in fn.writes:
                if not write.creates:
                    continue
                state = self._registered[write.attr]
                if _module_matches(fn.module, state.owner_modules):
                    continue
                if fn.name in state.writers:
                    continue
                self._emit(
                    fn,
                    write.node,
                    "OWN001",
                    f"shared-state attribute {write.attr} created outside its "
                    f"owner module ({', '.join(state.owner_modules)}); register "
                    "new shared state in repro.lint.ownership or create it in "
                    "the owner",
                )

    # -- consumers ---------------------------------------------------------

    def findings_for(self, path: str, code: str) -> List[Finding]:
        """Findings of one rule code anchored in one file."""
        return list(self.findings.get(code, {}).get(path, ()))

    def closure_functions(self) -> List[FunctionInfo]:
        """Every function in the component closure, stable order."""
        return [fn for fn in self.functions if fn.key in self.closure]

    def proven_pure(self) -> List[str]:
        """Qualnames of closure functions with zero violations (sorted).

        Purity is judged *pre-suppression*: a suppressed RACE finding
        still disqualifies the function from the certificate.
        """
        return sorted(
            fn.qualname
            for fn in self.closure_functions()
            if self._violation_counts.get(fn.key, 0) == 0
        )


def parallel_safety_document(analysis: OwnershipAnalysis) -> dict:
    """The ``--parallel-safety-report`` JSON certificate as a dict.

    CI uploads this artifact and diffs ``proven_pure`` against the
    committed ``tests/goldens/parallel_safety_baseline.json`` so
    regressions in component purity fail the build.
    """
    from repro.lint.reporting import SCHEMA_VERSION

    functions = []
    for fn in sorted(analysis.closure_functions(), key=lambda f: f.qualname):
        root, how = analysis.closure[fn.key]
        violations = analysis._violation_counts.get(fn.key, 0)
        functions.append(
            {
                "function": fn.qualname,
                "module": fn.module,
                "root": root,
                "reached": how,
                "violations": violations,
                "pure": violations == 0,
            }
        )
    proven = analysis.proven_pure()
    return {
        "tool": "dardlint",
        "report": "parallel-safety",
        "schema_version": SCHEMA_VERSION,
        "component_scoped": list(COMPONENT_SCOPED),
        "merge_points": list(MERGE_POINTS),
        "boundaries": list(BOUNDARIES),
        "shared_mutators": list(SHARED_MUTATOR_METHODS),
        "shared_state": [
            {
                "name": state.name,
                "attr": state.attr,
                "owner_class": state.owner_class,
                "owner_modules": list(state.owner_modules),
                "writers": sorted(state.writers),
                "category": state.category,
                "runtime_guarded": state.runtime_guarded,
            }
            for state in OWNERSHIP
        ],
        "functions": functions,
        "proven_pure": proven,
        "ok": all(entry["pure"] for entry in functions),
    }
