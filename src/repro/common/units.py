"""Unit helpers.

Internally the simulator uses **bits per second** for rates, **bytes** for
flow sizes, and **seconds** for time. These helpers exist so call sites read
naturally (``10 * MBPS``, ``128 * MB``) and conversions are explicit.
"""

#: One kilobit per second, in bits/s.
KBPS = 1_000.0

#: One megabit per second, in bits/s.
MBPS = 1_000_000.0

#: One gigabit per second, in bits/s.
GBPS = 1_000_000_000.0

#: One megabyte, in bytes (decimal, as used for file sizes in the paper).
MB = 1_000_000


def mbps(rate_bps: float) -> float:
    """Convert a rate in bits/s to megabits/s (for reporting)."""
    return rate_bps / MBPS


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8.0


def bits(num_bytes: float) -> float:
    """Alias of :func:`bytes_to_bits` for terse call sites."""
    return bytes_to_bits(num_bytes)


def seconds_to_transfer(num_bytes: float, rate_bps: float) -> float:
    """Time in seconds to move ``num_bytes`` at a constant ``rate_bps``.

    Raises :class:`ValueError` for a non-positive rate — a flow with zero
    allocated bandwidth never finishes and the caller must handle that case
    explicitly rather than receive ``inf`` by accident.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return bytes_to_bits(num_bytes) / rate_bps
