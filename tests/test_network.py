"""Tests for the Network: flow lifecycle, fair sharing, reroutes, state queries."""

import pytest

from repro.common.errors import SimulationError
from repro.common.units import MB, MBPS
from repro.simulator import FlowComponent, Network
from repro.topology import FatTree


@pytest.fixture
def net():
    return Network(FatTree(p=4, link_bandwidth_bps=100 * MBPS))


def component(net, src, dst, index=0):
    topo = net.topology
    path = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))[index]
    return FlowComponent(topo.host_path(src, dst, path))


class TestFlowLifecycle:
    def test_single_flow_exact_fct(self, net):
        net.start_flow("h_0_0_0", "h_1_0_0", 10 * MB, [component(net, "h_0_0_0", "h_1_0_0")])
        net.engine.run_until_idle()
        assert len(net.records) == 1
        # 10 MB = 80 Mbit at 100 Mbps -> 0.8 s.
        assert net.records[0].fct == pytest.approx(0.8)

    def test_two_flows_one_bottleneck_share_fairly(self, net):
        src = "h_0_0_0"
        for dst in ("h_1_0_0", "h_2_0_0"):
            net.start_flow(src, dst, 10 * MB, [component(net, src, dst)])
        net.engine.run_until_idle()
        # Both bottlenecked on src's access link at 50 Mbps -> 1.6 s.
        assert [r.fct for r in net.records] == pytest.approx([1.6, 1.6])

    def test_rate_rises_when_competitor_finishes(self, net):
        src = "h_0_0_0"
        net.start_flow(src, "h_1_0_0", 10 * MB, [component(net, src, "h_1_0_0")])
        net.start_flow(src, "h_2_0_0", 20 * MB, [component(net, src, "h_2_0_0")])
        net.engine.run_until_idle()
        by_dst = {r.dst: r for r in net.records}
        assert by_dst["h_1_0_0"].fct == pytest.approx(1.6)
        # Second flow: 10 MB at 50 Mbps (1.6 s) + 10 MB at 100 Mbps (0.8 s).
        assert by_dst["h_2_0_0"].fct == pytest.approx(2.4)

    def test_staggered_arrival(self, net):
        src = "h_0_0_0"
        net.start_flow(src, "h_1_0_0", 10 * MB, [component(net, src, "h_1_0_0")])
        net.engine.schedule_at(
            0.4,
            lambda: net.start_flow(src, "h_2_0_0", 10 * MB, [component(net, src, "h_2_0_0")]),
        )
        net.engine.run_until_idle()
        by_dst = {r.dst: r for r in net.records}
        # First: 5 MB alone (0.4 s) + 5 MB shared at 50 Mbps (0.8 s) = 1.2 s.
        assert by_dst["h_1_0_0"].fct == pytest.approx(1.2)

    def test_flow_size_must_be_positive(self, net):
        with pytest.raises(SimulationError):
            net.start_flow("h_0_0_0", "h_1_0_0", 0, [component(net, "h_0_0_0", "h_1_0_0")])

    def test_record_fields(self, net):
        net.start_flow("h_0_0_0", "h_1_0_0", 10 * MB, [component(net, "h_0_0_0", "h_1_0_0")])
        net.engine.run_until_idle()
        record = net.records[0]
        assert record.src == "h_0_0_0"
        assert record.dst == "h_1_0_0"
        assert record.start_time == 0.0
        assert record.path_switches == 0
        assert not record.was_elephant  # finished long before 10 s


class TestElephantPromotion:
    def test_long_flow_promoted_at_threshold(self, net):
        # 128 MB at <= 100 Mbps takes > 10.24 s -> becomes an elephant.
        promoted = []
        net.elephant_listeners.append(lambda f: promoted.append(net.engine.now))
        net.start_flow("h_0_0_0", "h_1_0_0", 128 * MB, [component(net, "h_0_0_0", "h_1_0_0")])
        net.engine.run_until_idle()
        assert promoted == [10.0]
        assert net.records[0].was_elephant
        assert net.peak_elephants == 1

    def test_short_flow_never_promoted(self, net):
        net.start_flow("h_0_0_0", "h_1_0_0", 10 * MB, [component(net, "h_0_0_0", "h_1_0_0")])
        net.engine.run_until_idle()
        assert net.peak_elephants == 0

    def test_custom_threshold(self):
        net = Network(
            FatTree(p=4, link_bandwidth_bps=100 * MBPS), elephant_age_s=2.0
        )
        topo = net.topology
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        net.start_flow(
            "h_0_0_0", "h_1_0_0", 40 * MB,
            [FlowComponent(topo.host_path("h_0_0_0", "h_1_0_0", path))],
        )
        net.engine.run_until_idle()
        assert net.records[0].was_elephant  # 3.2 s > 2 s threshold


class TestLinkStateQueries:
    def test_elephant_count_per_link(self, net):
        net.start_flow("h_0_0_0", "h_1_0_0", 256 * MB, [component(net, "h_0_0_0", "h_1_0_0")])
        net.engine.run_until(11.0)
        state = net.link_state("h_0_0_0", "tor_0_0")
        assert state.total_flows == 1
        assert state.elephant_flows == 1
        assert state.bonf == pytest.approx(100 * MBPS)

    def test_empty_link_has_infinite_bonf(self, net):
        state = net.link_state("core_0_0", "agg_0_0")
        assert state.elephant_flows == 0
        assert state.bonf == float("inf")

    def test_unknown_link_rejected(self, net):
        with pytest.raises(SimulationError):
            net.link_state("h_0_0_0", "core_0_0")

    def test_path_state_skips_host_links(self, net):
        # Two elephants share the host access link but ride disjoint
        # switch paths (indices 0 and 2 use different aggregation switches).
        src = "h_0_0_0"
        net.start_flow(src, "h_1_0_0", 256 * MB, [component(net, src, "h_1_0_0", 0)])
        net.start_flow(src, "h_2_0_0", 256 * MB, [component(net, src, "h_2_0_0", 2)])
        net.engine.run_until(11.0)
        topo = net.topology
        path = topo.equal_cost_paths("tor_0_0", "tor_1_0")[0]
        full = (src,) + path + ("h_1_0_0",)
        state = net.path_state(full)
        # Only one elephant rides this switch path; the shared host link
        # (2 elephants) is excluded per the paper (§2.2).
        assert net.link_state(src, "tor_0_0").elephant_flows == 2
        assert state.elephant_flows == 1

    def test_path_state_needs_switch_links(self, net):
        with pytest.raises(SimulationError):
            net.path_state(("h_0_0_0", "tor_0_0"))


class TestReroute:
    def test_reroute_changes_path_and_counts(self, net):
        src, dst = "h_0_0_0", "h_1_0_0"
        flow = net.start_flow(src, dst, 50 * MB, [component(net, src, dst, 0)])
        net.engine.run_until(1.0)
        net.reroute_flow(flow, [component(net, src, dst, 3)])
        net.engine.run_until_idle()
        record = net.records[0]
        assert record.path_switches == 1
        assert record.retransmitted_bytes > 0  # window retransmission cost

    def test_reroute_without_penalty(self, net):
        src, dst = "h_0_0_0", "h_1_0_0"
        flow = net.start_flow(src, dst, 50 * MB, [component(net, src, dst, 0)])
        net.engine.run_until(1.0)
        net.reroute_flow(
            flow, [component(net, src, dst, 3)], count_switch=False, retx_penalty=False
        )
        net.engine.run_until_idle()
        record = net.records[0]
        assert record.path_switches == 0
        assert record.retransmitted_bytes == 0

    def test_reroute_updates_link_counts(self, net):
        src, dst = "h_0_0_0", "h_1_0_0"
        flow = net.start_flow(src, dst, 500 * MB, [component(net, src, dst, 0)])
        net.engine.run_until(11.0)  # promoted
        old_links = flow.components[0].links()
        net.reroute_flow(flow, [component(net, src, dst, 3)])
        new_links = flow.components[0].links()
        changed = set(old_links) - set(new_links)
        assert changed
        for u, v in changed:
            assert net.link_state(u, v).total_flows == 0

    def test_reroute_finished_flow_rejected(self, net):
        src, dst = "h_0_0_0", "h_1_0_0"
        flow = net.start_flow(src, dst, 1 * MB, [component(net, src, dst)])
        net.engine.run_until_idle()
        with pytest.raises(SimulationError):
            net.reroute_flow(flow, [component(net, src, dst, 1)])

    def test_component_validation(self, net):
        src, dst = "h_0_0_0", "h_1_0_0"
        bad = FlowComponent((src, "tor_0_0", "h_0_0_1"))
        with pytest.raises(SimulationError):
            net.start_flow(src, dst, 1 * MB, [bad])


class TestMultiComponentFlows:
    def test_striped_flow_aggregates_rate(self, net):
        """A two-path striped flow can beat a single path's capacity only
        when the host link allows; here the host link caps it at 100 Mbps,
        same as single path, but reordering charges retransmissions."""
        src, dst = "h_0_0_0", "h_1_0_0"
        topo = net.topology
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        components = [
            FlowComponent(topo.host_path(src, dst, paths[0]), weight=0.5),
            FlowComponent(topo.host_path(src, dst, paths[1]), weight=0.5),
        ]
        flow = net.start_flow(src, dst, 10 * MB, components)
        net.engine.run_until(0.1)
        assert flow.rate_bps == pytest.approx(100 * MBPS, rel=1e-6)

    def test_multi_component_counts_flow_once_per_link(self, net):
        src, dst = "h_0_0_0", "h_1_0_0"
        topo = net.topology
        paths = topo.equal_cost_paths("tor_0_0", "tor_1_0")
        components = [
            FlowComponent(topo.host_path(src, dst, p), weight=0.25) for p in paths
        ]
        net.start_flow(src, dst, 500 * MB, components)
        net.engine.run_until(11.0)
        # The shared host link sees ONE flow, not four.
        assert net.link_state(src, "tor_0_0").total_flows == 1
