"""Figure 5: file-transfer-time CDF on the testbed, stride traffic.

Paper shape: DARD improves the average by improving fairness — its curve
is steeper, with both tails pulled toward the mean; ECMP and pVLB are
close to each other.
"""

from repro.experiments.figures import fig5_testbed_cdf
from conftest import run_once


def test_fig5_testbed_cdf(benchmark, save_output):
    output = run_once(benchmark, fig5_testbed_cdf, duration_s=90.0)
    save_output(output)
    stats = {row["scheduler"]: row for row in output.rows}
    # DARD's mean beats ECMP's.
    assert stats["dard"]["mean_s"] < stats["ecmp"]["mean_s"]
    # Fairness: DARD's worst-case flow is no worse than ECMP's.
    assert stats["dard"]["max_s"] <= stats["ecmp"]["max_s"] * 1.05
    # Full CDFs are carried for plotting.
    assert all(len(points) > 10 for points in output.series.values())
