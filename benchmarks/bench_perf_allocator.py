"""Allocator microbenchmark: integer-indexed CSR core vs string-keyed baseline.

Measures steady-state reallocation throughput (demands/sec) at p=4/8/16
fat-tree scale. The baseline is ``maxmin_allocate_reference`` — the
pre-LinkIndex implementation preserved verbatim — fed string-keyed demands,
re-interning links on every call exactly as the old ``Network._reallocate``
did. The fast path is ``maxmin_allocate_indexed`` fed the CSR arrays a
network caches per flow, which is what every post-index reallocation pays.

Output rows land in ``benchmarks/results/perf_allocator.txt`` and the raw
numbers in ``benchmarks/results/BENCH_perf_allocator.json`` so the perf
trajectory is tracked across PRs. The acceptance gate asserts >= 3x
throughput at p=16.
"""

import json
import pathlib
import random
import time

import numpy as np

from repro.common.units import MBPS
from repro.experiments.figures import ExperimentOutput
from repro.simulator.linkindex import LinkIndex
from repro.simulator.maxmin import (
    maxmin_allocate_indexed,
    maxmin_allocate_reference,
)
from repro.topology import FatTree

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: rounds per measurement, scaled down as the topology grows.
ROUNDS = {4: 30, 8: 10, 16: 4}

#: demands per host — keeps the demand count proportional to fabric size.
FLOWS_PER_HOST = 2.0


def _build_case(p, seed=7):
    """One reproducible workload: a fat-tree and a batch of path demands."""
    topo = FatTree(p=p, link_bandwidth_bps=100 * MBPS)
    rng = random.Random(seed)
    hosts = sorted(topo.hosts())
    capacities = {}
    for link in topo.links():
        bw = topo.link(link.u, link.v).bandwidth_bps
        capacities[(link.u, link.v)] = bw
        capacities[(link.v, link.u)] = bw
    demands = []
    for _ in range(int(len(hosts) * FLOWS_PER_HOST)):
        src, dst = rng.sample(hosts, 2)
        paths = topo.equal_cost_paths(topo.tor_of(src), topo.tor_of(dst))
        path = topo.host_path(src, dst, rng.choice(paths))
        demands.append((tuple(zip(path, path[1:])), 1.0))
    return topo, demands, capacities


def _index_demands(topo, demands):
    """What Network does once per flow: intern paths to CSR arrays."""
    index = LinkIndex.from_topology(topo)
    component_ids = [index.index_links(links) for links, _ in demands]
    lengths = np.fromiter((ids.size for ids in component_ids), dtype=np.intp)
    indptr = np.zeros(len(component_ids) + 1, dtype=np.intp)
    np.cumsum(lengths, out=indptr[1:])
    indices = np.concatenate(component_ids)
    weights = np.asarray([w for _, w in demands], dtype=float)
    return indices, indptr, weights, index.capacities


def _throughput(fn, n_demands, rounds):
    """Demands allocated per second over ``rounds`` timed calls."""
    fn()  # warm-up (first-touch allocations, caches)
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    elapsed = time.perf_counter() - start
    return n_demands * rounds / elapsed, elapsed / rounds


def _measure(p):
    topo, demands, capacities = _build_case(p)
    rounds = ROUNDS[p]
    baseline_tput, baseline_call = _throughput(
        lambda: maxmin_allocate_reference(demands, capacities), len(demands), rounds
    )
    indices, indptr, weights, caps = _index_demands(topo, demands)
    indexed_tput, indexed_call = _throughput(
        lambda: maxmin_allocate_indexed(indices, indptr, weights, caps),
        len(demands),
        rounds,
    )
    # Sanity: both paths agree on the allocation they are being timed on.
    ref_rates = maxmin_allocate_reference(demands, capacities)
    new_rates, _ = maxmin_allocate_indexed(indices, indptr, weights, caps)
    assert np.allclose(new_rates, ref_rates, rtol=1e-9, atol=1e-6)
    return {
        "p": p,
        "hosts": len(topo.hosts()),
        "demands": len(demands),
        "baseline_demands_per_s": baseline_tput,
        "indexed_demands_per_s": indexed_tput,
        "baseline_call_s": baseline_call,
        "indexed_call_s": indexed_call,
        "speedup": indexed_tput / baseline_tput,
    }


def _run_all():
    rows = [_measure(p) for p in (4, 8, 16)]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_perf_allocator.json").write_text(
        json.dumps({"experiment": "perf_allocator", "rows": rows}, indent=2) + "\n"
    )
    return ExperimentOutput(
        "perf_allocator",
        "max-min allocator throughput: indexed CSR core vs string-keyed baseline",
        rows=[
            {
                "p": r["p"],
                "demands": r["demands"],
                "baseline_dem_per_s": round(r["baseline_demands_per_s"]),
                "indexed_dem_per_s": round(r["indexed_demands_per_s"]),
                "speedup": round(r["speedup"], 2),
            }
            for r in rows
        ],
        notes="baseline re-interns (str, str) links per call; indexed reuses "
        "per-flow CSR arrays as Network._reallocate does",
    )


def test_perf_allocator(benchmark, save_output):
    output = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_output(output)
    by_p = {row["p"]: row for row in output.rows}
    assert by_p[16]["speedup"] >= 3.0, by_p[16]
