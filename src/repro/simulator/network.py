"""The live network: topology + flows + fair-share dynamics + events.

``Network`` owns all mutable simulation state. Schedulers interact with it
through four surfaces:

* **flow placement** — :meth:`start_flow` with the components they chose;
* **re-routing** — :meth:`reroute_flow` (DARD's address-pair swap, VLB's
  periodic re-pick, Hedera's table update all reduce to this);
* **notifications** — ``on_flow_started`` / ``on_elephant_promoted`` /
  ``on_flow_completed`` listener hooks;
* **state queries** — :meth:`link_state`, the OpenFlow aggregate-statistics
  API DARD's monitors poll (bandwidth and elephant count per egress port).

Rate dynamics: after any membership change the weighted max-min allocation
is recomputed once (changes at the same instant are coalesced through a
zero-delay event) and the next completion event is rescheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.logging import get_logger
from repro.topology.multirooted import MultiRootedTopology
from repro.simulator.engine import EventEngine, EventHandle
from repro.simulator.flows import (
    ELEPHANT_AGE_S,
    PATH_SWITCH_RETX_BYTES,
    Flow,
    FlowComponent,
    FlowRecord,
)
from repro.simulator.maxmin import LinkId, maxmin_allocate
from repro.simulator.reordering import reordering_retx_fraction

_BYTES_EPSILON = 1.0  # flows within one byte of done are done

Listener = Callable[[Flow], None]

logger = get_logger("simulator.network")


@dataclass(frozen=True)
class LinkState:
    """What a switch reports for one egress port (paper §2.4).

    ``bonf`` is the link Bandwidth over the Number of elephant Flows;
    infinite when the link carries no elephants ("if a link has no flow,
    its BoNF is infinity", §2.2) and zero when the link is down — a dead
    link must look maximally congested, never attractive.
    """

    bandwidth_bps: float
    elephant_flows: int
    total_flows: int

    @property
    def bonf(self) -> float:
        if self.bandwidth_bps <= 0:
            return 0.0
        if self.elephant_flows == 0:
            return float("inf")
        return self.bandwidth_bps / self.elephant_flows


class Network:
    """Discrete-event fluid network simulation over a multi-rooted topology."""

    def __init__(
        self,
        topology: MultiRootedTopology,
        engine: Optional[EventEngine] = None,
        elephant_age_s: float = ELEPHANT_AGE_S,
        path_switch_retx_bytes: float = PATH_SWITCH_RETX_BYTES,
        model_reordering: bool = True,
    ) -> None:
        self.topology = topology
        self.engine = engine if engine is not None else EventEngine()
        self.elephant_age_s = elephant_age_s
        self.path_switch_retx_bytes = path_switch_retx_bytes
        self.model_reordering = model_reordering

        self.capacities: Dict[LinkId, float] = {}
        self.link_delays: Dict[LinkId, float] = {}
        for u, v in topology.directed_links():
            link = topology.link(u, v)
            self.capacities[(u, v)] = link.bandwidth_bps
            self.link_delays[(u, v)] = link.delay_s

        self.flows: Dict[int, Flow] = {}
        self.records: List[FlowRecord] = []
        self._next_flow_id = 0
        self._last_settle = 0.0
        self._realloc_pending = False
        self._completion_handle: Optional[EventHandle] = None
        self._link_elephants: Dict[LinkId, int] = {}
        self._link_total: Dict[LinkId, int] = {}
        self._link_utils: Dict[LinkId, float] = {}

        self.flow_started_listeners: List[Listener] = []
        self.elephant_listeners: List[Listener] = []
        self.flow_completed_listeners: List[Listener] = []

        #: highest number of simultaneously live elephants seen (Fig. 15's
        #: "peak number of elephant flows" axis).
        self.peak_elephants = 0
        self._current_elephants = 0

        #: cables currently down (both directions); see :meth:`fail_link`.
        self.failed_links: set = set()
        self.link_failed_listeners: List[Callable[[str, str], None]] = []
        self.link_restored_listeners: List[Callable[[str, str], None]] = []

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    # -- flow lifecycle -------------------------------------------------------

    def start_flow(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        components: Sequence[FlowComponent],
    ) -> Flow:
        """Begin a transfer using the scheduler-chosen path component(s)."""
        if size_bytes <= 0:
            raise SimulationError(f"flow size must be positive, got {size_bytes}")
        self._settle()
        flow = Flow(
            flow_id=self._next_flow_id,
            src=src,
            dst=dst,
            size_bytes=float(size_bytes),
            start_time=self.now,
            components=list(components),
        )
        self._next_flow_id += 1
        self._validate_components(flow)
        flow.component_rates = [0.0] * len(flow.components)
        if len(flow.components) == 1:
            flow.path_history.append(flow.components[0].path)
        self.flows[flow.flow_id] = flow
        self._adjust_link_counts(flow, +1)
        self.engine.schedule_in(
            self.elephant_age_s, lambda fid=flow.flow_id: self._promote_elephant(fid)
        )
        for listener in self.flow_started_listeners:
            listener(flow)
        self._request_realloc()
        return flow

    def reroute_flow(
        self,
        flow: Flow,
        components: Sequence[FlowComponent],
        count_switch: bool = True,
        retx_penalty: bool = True,
    ) -> None:
        """Replace a flow's path component(s).

        ``count_switch`` increments the paper's path-switch statistic;
        ``retx_penalty`` charges one congestion window of retransmission
        (disabled for control actions that are pure weight adjustments on
        unchanged paths, e.g. TeXCP rebalancing).
        """
        if not flow.active:
            raise SimulationError(f"cannot reroute finished flow {flow.flow_id}")
        self._settle()
        self._adjust_link_counts(flow, -1)
        flow.components = list(components)
        self._validate_components(flow)
        flow.component_rates = [0.0] * len(flow.components)
        self._adjust_link_counts(flow, +1)
        if count_switch:
            flow.path_switches += 1
            if len(flow.components) == 1:
                flow.path_history.append(flow.components[0].path)
        if retx_penalty and self.path_switch_retx_bytes > 0:
            penalty = min(self.path_switch_retx_bytes, flow.remaining_bytes)
            flow.retransmitted_bytes += penalty
            flow.remaining_bytes += penalty
        self._request_realloc()

    def active_flows(self) -> List[Flow]:
        """All currently live flows."""
        return list(self.flows.values())

    def active_elephants(self) -> List[Flow]:
        """Live flows already promoted to elephant status."""
        return [f for f in self.flows.values() if f.is_elephant]

    # -- failure injection -------------------------------------------------------

    def link_is_up(self, u: str, v: str) -> bool:
        """Whether the directed link ``u -> v`` is currently usable."""
        if (u, v) not in self.capacities:
            raise SimulationError(f"no such directed link {(u, v)}")
        return (u, v) not in self.failed_links

    def path_alive(self, path: Sequence[str]) -> bool:
        """Whether every hop of a node path is up."""
        return all(self.link_is_up(a, b) for a, b in zip(path, path[1:]))

    def fail_link(self, u: str, v: str) -> None:
        """Take the cable between ``u`` and ``v`` down (both directions).

        Flows whose every component crosses the dead cable stall at zero
        rate until some scheduler moves them — exactly what a silent
        physical failure does to traffic pinned by static tables.
        """
        for key in ((u, v), (v, u)):
            if key not in self.capacities:
                raise SimulationError(f"no such directed link {key}")
        if (u, v) in self.failed_links:
            return
        self._settle()
        logger.info("t=%.2f link %s <-> %s failed", self.now, u, v)
        self.failed_links.add((u, v))
        self.failed_links.add((v, u))
        # Reallocate synchronously: a dead cable must carry nothing from
        # this instant, not from the next event-loop turn.
        self._reallocate()
        for listener in self.link_failed_listeners:
            listener(u, v)

    def restore_link(self, u: str, v: str) -> None:
        """Bring a failed cable back into service."""
        if (u, v) not in self.failed_links:
            return
        self._settle()
        logger.info("t=%.2f link %s <-> %s restored", self.now, u, v)
        self.failed_links.discard((u, v))
        self.failed_links.discard((v, u))
        self._reallocate()
        for listener in self.link_restored_listeners:
            listener(u, v)

    # -- switch state query API (what DARD monitors poll) ----------------------

    def link_state(self, u: str, v: str) -> LinkState:
        """State of the directed link (egress port) ``u -> v``.

        A failed link reports zero bandwidth, which monitors fold into a
        zero BoNF — failure detection needs no extra machinery beyond the
        state DARD already polls.
        """
        key = (u, v)
        if key not in self.capacities:
            raise SimulationError(f"no such directed link {key}")
        bandwidth = 0.0 if key in self.failed_links else self.capacities[key]
        return LinkState(
            bandwidth_bps=bandwidth,
            elephant_flows=self._link_elephants.get(key, 0),
            total_flows=self._link_total.get(key, 0),
        )

    def path_state(self, path: Sequence[str], skip_host_links: bool = True) -> LinkState:
        """The most-congested-link state along a node path (paper §2.5).

        ``skip_host_links`` drops the first/last host-switch hop — a flow
        cannot route around those, so DARD excludes them from BoNF (§2.2).
        """
        links = list(zip(path, path[1:]))
        if skip_host_links:
            links = [
                (u, v)
                for u, v in links
                if self.topology.node(u).kind.is_switch and self.topology.node(v).kind.is_switch
            ]
        if not links:
            raise SimulationError(f"path {path!r} has no switch-switch links")
        return min(
            (self.link_state(u, v) for u, v in links),
            key=lambda state: state.bonf,
        )

    def utilization(self, u: str, v: str) -> float:
        """Most recent allocated utilization of the directed link ``u -> v``."""
        return self._link_utils.get((u, v), 0.0)

    # -- self-checks --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the simulation's global invariants; raises on violation.

        Intended for debugging user extensions (custom schedulers,
        handwritten event sequences): call at any quiescent point. Checks

        * link flow-counters match a from-scratch recount,
        * no link is allocated beyond capacity,
        * failed links carry no allocated rate,
        * per-flow byte accounting is sane.
        """
        expected_total: Dict[LinkId, int] = {}
        expected_eleph: Dict[LinkId, int] = {}
        load: Dict[LinkId, float] = {}
        for flow in self.flows.values():
            seen = set()
            for component, rate in zip(flow.components, flow.component_rates):
                for link in component.links():
                    load[link] = load.get(link, 0.0) + rate
                    if link in seen:
                        continue
                    seen.add(link)
                    expected_total[link] = expected_total.get(link, 0) + 1
                    if flow.is_elephant:
                        expected_eleph[link] = expected_eleph.get(link, 0) + 1
        for link, count in self._link_total.items():
            if count != expected_total.get(link, 0):
                raise SimulationError(
                    f"link {link} total-flow counter {count} != recount "
                    f"{expected_total.get(link, 0)}"
                )
        for link, count in self._link_elephants.items():
            if count != expected_eleph.get(link, 0):
                raise SimulationError(
                    f"link {link} elephant counter {count} != recount "
                    f"{expected_eleph.get(link, 0)}"
                )
        for link, total in load.items():
            if total > self.capacities[link] * (1 + 1e-6):
                raise SimulationError(
                    f"link {link} allocated {total} over capacity {self.capacities[link]}"
                )
            if link in self.failed_links and total > 0:
                raise SimulationError(f"failed link {link} carries rate {total}")
        for flow in self.flows.values():
            if flow.remaining_bytes < 0:
                raise SimulationError(f"flow {flow.flow_id} has negative remaining bytes")
            if flow.remaining_bytes > flow.size_bytes + flow.retransmitted_bytes + 1.0:
                raise SimulationError(
                    f"flow {flow.flow_id} remaining {flow.remaining_bytes} exceeds "
                    f"size+retx {flow.size_bytes + flow.retransmitted_bytes}"
                )

    # -- internals --------------------------------------------------------------

    def _validate_components(self, flow: Flow) -> None:
        for component in flow.components:
            if component.path[0] != flow.src or component.path[-1] != flow.dst:
                raise SimulationError(
                    f"component path {component.path!r} does not connect "
                    f"{flow.src!r} to {flow.dst!r}"
                )
            for link in component.links():
                if link not in self.capacities:
                    raise SimulationError(f"component uses unknown link {link}")

    def _adjust_link_counts(self, flow: Flow, delta: int) -> None:
        seen: set = set()
        for component in flow.components:
            for link in component.links():
                if link in seen:
                    continue
                seen.add(link)
                self._link_total[link] = self._link_total.get(link, 0) + delta
                if flow.is_elephant:
                    self._link_elephants[link] = self._link_elephants.get(link, 0) + delta

    def _promote_elephant(self, flow_id: int) -> None:
        flow = self.flows.get(flow_id)
        if flow is None or flow.is_elephant:
            return
        # Temporarily remove, flip, re-add so elephant counters stay exact.
        self._adjust_link_counts(flow, -1)
        flow.is_elephant = True
        self._adjust_link_counts(flow, +1)
        self._current_elephants += 1
        self.peak_elephants = max(self.peak_elephants, self._current_elephants)
        for listener in self.elephant_listeners:
            listener(flow)

    def _settle(self) -> None:
        """Advance byte counters from the last settle point to now."""
        dt = self.now - self._last_settle
        if dt < 0:
            raise SimulationError("time went backwards")
        if dt > 0:
            for flow in self.flows.values():
                delivered_bits = flow.rate_bps * dt
                if delivered_bits <= 0:
                    continue
                delivered_bytes = delivered_bits / 8.0
                wasted = delivered_bytes * flow.reorder_retx_fraction
                flow.remaining_bytes = max(0.0, flow.remaining_bytes - (delivered_bytes - wasted))
                flow.retransmitted_bytes += wasted
        self._last_settle = self.now

    def _request_realloc(self) -> None:
        if self._realloc_pending:
            return
        self._realloc_pending = True
        self.engine.schedule_in(0.0, self._reallocate)

    def _reallocate(self) -> None:
        self._realloc_pending = False
        self._settle()
        flows = list(self.flows.values())
        demands = []
        owners: List[Tuple[Flow, int]] = []
        for flow in flows:
            for idx, component in enumerate(flow.components):
                links = component.links()
                if self.failed_links and any(l in self.failed_links for l in links):
                    continue  # dead component: carries nothing until rerouted
                demands.append((links, component.weight))
                owners.append((flow, idx))
        rates = maxmin_allocate(demands, self.capacities) if demands else []
        for flow in flows:
            flow.component_rates = [0.0] * len(flow.components)
        load: Dict[LinkId, float] = {}
        for (flow, idx), rate, (links, _) in zip(owners, rates, demands):
            flow.component_rates[idx] = rate
            for link in links:
                load[link] = load.get(link, 0.0) + rate
        self._link_utils = {
            link: total / self.capacities[link] for link, total in load.items()
        }
        if self.model_reordering:
            for flow in flows:
                if len(flow.components) > 1:
                    flow.reorder_retx_fraction = reordering_retx_fraction(
                        flow.components,
                        flow.component_rates,
                        self.link_delays,
                        self._link_utils,
                    )
                else:
                    flow.reorder_retx_fraction = 0.0
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None
        soonest = float("inf")
        for flow in self.flows.values():
            goodput_bps = flow.rate_bps * (1.0 - flow.reorder_retx_fraction)
            if goodput_bps <= 0:
                continue
            eta = (flow.remaining_bytes * 8.0) / goodput_bps
            soonest = min(soonest, eta)
        if soonest < float("inf"):
            self._completion_handle = self.engine.schedule_in(
                max(soonest, 0.0), self._on_completion_event
            )

    def _on_completion_event(self) -> None:
        self._completion_handle = None
        self._settle()
        finished = [f for f in self.flows.values() if f.remaining_bytes <= _BYTES_EPSILON]
        if not finished:
            # Rates changed under us; just reschedule.
            self._schedule_next_completion()
            return
        for flow in finished:
            flow.end_time = self.now
            self._adjust_link_counts(flow, -1)
            if flow.is_elephant:
                self._current_elephants -= 1
            del self.flows[flow.flow_id]
            self.records.append(
                FlowRecord(
                    flow_id=flow.flow_id,
                    src=flow.src,
                    dst=flow.dst,
                    size_bytes=flow.size_bytes,
                    start_time=flow.start_time,
                    end_time=flow.end_time,
                    path_switches=flow.path_switches,
                    path_revisits=flow.path_revisits(),
                    retransmitted_bytes=flow.retransmitted_bytes,
                    was_elephant=flow.is_elephant,
                )
            )
            for listener in self.flow_completed_listeners:
                listener(flow)
        self._request_realloc()
